#!/usr/bin/env python3
"""The ISP-Anon oscillation case studies (Sections IV-E and IV-F).

* IV-E  Continuous customer route flapping: a customer's direct session
  drops about once a minute; every PoP fails over to a different
  3-AS-hop alternate through the NAP. The event rate hides in the
  Figure 8 "grass", but Stemming ranks it first.
* IV-F  Persistent fast MED oscillation: one prefix (4.5.0.0/16)
  dominating the ISP's IBGP traffic, detected even over sub-second
  windows, and animated with the Figure 3 color semantics.

Writes an SVG animation frame with the flapping edge highlighted.

Run:
    python examples/isp_oscillation.py
"""

from pathlib import Path

from repro import IspAnonSite, Stemmer, animate_stream, render_svg, scenarios
from repro.net.prefix import parse_address
from repro.stemming.encode import format_stem
from repro.tamp.animate import EdgeState

OUT_DIR = Path(__file__).resolve().parent / "output"


def customer_flap_study() -> None:
    print("=== IV-E: continuous customer route flapping ===")
    isp = IspAnonSite(n_reflectors=8, n_prefixes=800)
    print(
        f"  core: {isp.n_reflectors} route reflectors,"
        f" {isp.rex.route_count()} routes at the collector"
    )
    incident = scenarios.customer_flap(isp, flap_count=15, period=60.0)
    print(
        f"  {len(incident.stream)} events over"
        f" {incident.stream.timerange / 60:.0f} minutes"
        f" ({len(incident.stream) / 15:.0f} events per flap)"
    )
    component = Stemmer().strongest_component(incident.stream)
    print(f"  strongest component: {component.describe()}")
    print(f"  stem: {format_stem(component.stem)}")
    alternates = {
        str(e.attributes.as_path)
        for e in incident.stream
        if not e.is_withdrawal
    }
    print(f"  distinct paths announced during failovers: {len(alternates)}")
    for path in sorted(alternates)[:5]:
        print(f"    {path}")


def med_oscillation_study() -> None:
    print()
    print("=== IV-F: persistent fast MED oscillation ===")
    lab = scenarios.build_med_oscillation_lab()
    incident = scenarios.med_oscillation(lab, flap_count=200, period=0.02)
    print(
        f"  {len(incident.stream)} events on"
        f" {len(incident.stream.prefixes())} prefix in"
        f" {incident.stream.timerange:.1f} s"
    )
    # The paper's claim: strongest component even at short timescales.
    for window in (0.2, 1.0, incident.stream.timerange):
        start = incident.stream.start_time
        slice_ = incident.stream.between(start, start + window)
        component = Stemmer().strongest_component(slice_)
        found = (
            component is not None
            and str(next(iter(component.prefixes))) == "4.5.0.0/16"
        )
        print(
            f"  window {window:6.1f} s: {len(slice_):5d} events ->"
            f" oscillation ranked first: {found}"
        )
    # Animate with the selected edge tracked (the Figure 3 side plot).
    edge = (("nh", parse_address("10.3.4.5")), ("as", 2))
    animation = animate_stream(
        incident.stream, play_duration=30.0, fps=25, track_edges=[edge]
    )
    flapping_frames = sum(
        1
        for frame in animation.frames
        if frame.state_of(edge) is EdgeState.FLAPPING
    )
    print(
        f"  animation: {animation.frame_count} frames,"
        f" {flapping_frames} show the core2 edge flapping (yellow)"
    )
    series = animation.series[edge]
    print(
        f"  selected-edge plot: {len(series.samples)} samples,"
        f" impulse train: {series.is_impulse_train()}"
    )
    OUT_DIR.mkdir(exist_ok=True)
    mid = animation.frames[len(animation.frames) // 2]
    svg = render_svg(
        animation.tamp.graph,
        edge_states={edge: "flapping"},
        title="IV-F: MED oscillation on 4.5.0.0/16",
        clock_text=mid.clock_text(),
    )
    path = OUT_DIR / "iv_f_med_oscillation_frame.svg"
    path.write_text(svg)
    print(f"  animation frame written to {path}")
    # And the full animation as one SMIL SVG (open it in a browser).
    from repro.tamp.svg_animation import render_svg_animation

    playable = scenarios.med_oscillation(flap_count=40, period=0.02)
    small = animate_stream(playable.stream, play_duration=10.0, fps=5)
    animated_path = OUT_DIR / "iv_f_med_oscillation_animated.svg"
    animated_path.write_text(
        render_svg_animation(small, title="IV-F: MED oscillation (animated)")
    )
    print(f"  playable animation written to {animated_path}")


if __name__ == "__main__":
    customer_flap_study()
    med_oscillation_study()
