#!/usr/bin/env python3
"""Analyzing BGP archive data: the RouteViews / MRT workflow.

The paper's tools ran on live IBGP feeds; the public equivalent is MRT
archives. This example exercises the full loop offline:

1. simulate an incident and export it as a standards-compliant MRT
   updates file (what you would otherwise download from
   archive.routeviews.org),
2. export the pre-incident tables as a TABLE_DUMP_V2 RIB snapshot,
3. load both back as a stranger would — RIB into a collector for the
   TAMP picture, updates into an event stream for Stemming,
4. diagnose and track the incident across detector reports.

Run:
    python examples/routeviews_mrt.py
"""

from pathlib import Path

from repro import BerkeleySite, diagnose, scenarios
from repro.mrt.loader import dump_rib, dump_updates, load_rib, load_updates
from repro.net.prefix import format_address
from repro.stemming.detector import StreamingDetector
from repro.stemming.tracker import IncidentTracker
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat
from repro.tamp.render import render_ascii
from repro.tamp.tree import TampTree

OUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)

    # --- 1+2: produce the archive files ------------------------------
    print("simulating a route leak and exporting MRT archives...")
    site = BerkeleySite(n_prefixes=600)
    rib_path = OUT_DIR / "rib.snapshot.mrt"
    records = dump_rib(site.rex, rib_path)
    print(f"  RIB snapshot: {records} MRT records -> {rib_path}")
    incident = scenarios.route_leak(site, cycles=1)
    updates_path = OUT_DIR / "updates.incident.mrt"
    written = dump_updates(incident.stream, updates_path)
    print(f"  updates file: {written} MRT records -> {updates_path}")

    # --- 3: load them back, cold -------------------------------------
    print("\nloading the archives back (as a downstream user would)...")
    rex = load_rib(rib_path)
    print(
        f"  RIB: {rex.route_count()} routes, {rex.prefix_count()} prefixes,"
        f" {len(rex.peers())} peers"
    )
    stream = load_updates(updates_path)
    print(f"  updates: {len(stream)} events over {stream.timerange:.0f}s")

    # The TAMP picture of the snapshot.
    trees = [
        TampTree.from_routes(
            format_address(peer),
            rex.rib(peer).routes(),
            include_prefix_leaves=False,
        )
        for peer in rex.peers()
    ]
    picture = prune_flat(TampGraph.merge(trees, site_name="snapshot"))
    print("\npre-incident routing structure (from the RIB file):")
    print(render_ascii(picture))

    # --- 4: diagnose and track ----------------------------------------
    report = diagnose(stream)
    print(f"\ndiagnosis: {report.headline}")

    detector = StreamingDetector(windows=(120.0, 3600.0))
    tracker = IncidentTracker(resolve_after=600.0, min_strength=5)
    # Replay the stream in chunks, as a live deployment would see it.
    start, end = stream.start_time, stream.end_time
    step = max(1.0, (end - start) / 4)
    cursor = start
    while cursor < end:
        detector.ingest(stream.between(cursor, cursor + step))
        changes = tracker.observe(detector.report(at=cursor + step))
        for change in changes:
            print(f"  t={cursor + step - start:6.0f}s  {change.describe()}")
        cursor += step
    print("\nfinal incident board:")
    print(tracker.summary())


if __name__ == "__main__":
    main()
