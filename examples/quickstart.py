#!/usr/bin/env python3
"""Quickstart: detect and visualize a routing anomaly in five steps.

Builds the simulated U.C. Berkeley vantage point, injects the paper's
Figure 7 route-leak incident, runs the full diagnosis pipeline
(event-rate context + Stemming decomposition + TAMP picture), and writes
an SVG of the site's routing.

Run:
    python examples/quickstart.py
"""

from pathlib import Path

from repro import BerkeleySite, diagnose, prune_flat, render_svg, scenarios
from repro.analysis.case_studies import site_tamp_graph

OUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    # 1. Build the vantage point: four BGP edge routers behind CalREN,
    #    observed by a passive REX-style collector. The full table is
    #    already injected and converged.
    print("building Berkeley site (12,600 prefixes scaled to 1,200)...")
    site = BerkeleySite(n_prefixes=1_200)
    print(
        f"  collector sees {site.rex.prefix_count()} prefixes,"
        f" {site.rex.route_count()} routes,"
        f" {site.rex.nexthop_count()} nexthops"
    )

    # 2. Inject the incident: CalREN's peers leak routes; commodity
    #    prefixes move to a 6-AS-hop path, twice. Berkeley's own
    #    community-keyed policies react exactly as the paper describes.
    print("injecting the Figure 7 route leak (2 cycles)...")
    incident = scenarios.route_leak(site, cycles=2)
    print(f"  {len(incident.stream)} BGP events captured")

    # 3. Diagnose: one call runs event-rate binning, the Stemming
    #    decomposition, and an ASCII TAMP rendering of the strongest
    #    component.
    report = diagnose(incident.stream)
    print()
    print(report.to_text())

    # 4. Check against ground truth (the simulator knows what it did).
    top = report.stemming.strongest
    hit = top is not None and top.prefixes <= frozenset(
        incident.affected_prefixes
    )
    print()
    print(f"strongest component matches injected incident: {hit}")

    # 5. Render the site's routing as the Figure 2 style picture.
    OUT_DIR.mkdir(exist_ok=True)
    graph = prune_flat(site_tamp_graph(site))
    svg_path = OUT_DIR / "berkeley_picture.svg"
    svg_path.write_text(render_svg(graph, title="Berkeley BGP"))
    print(f"TAMP picture written to {svg_path}")


if __name__ == "__main__":
    main()
