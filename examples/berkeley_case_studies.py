#!/usr/bin/env python3
"""The four Berkeley case studies of Section IV, end to end.

Reproduces, on the simulated Berkeley site:

* IV-A  Load Balancing Unbalanced — the 78%/5% rate-limiter skew,
  visible in the TAMP picture;
* IV-B  Backdoor routes — hidden at the default prune threshold,
  exposed by hierarchical pruning (Figure 5);
* IV-C  BGP community mis-tagging — the 32%/68% split of the
  2152:65297-tagged subset (Figure 6);
* IV-D  Peer leaking routes — the 6-AS-hop leak and the silent
  community-filter interaction (Figure 7), detected by Stemming and
  correlated back to configuration lines (Section III-D.1).

Writes SVG pictures for each study into examples/output/.

Run:
    python examples/berkeley_case_studies.py
"""

from pathlib import Path

from repro import BerkeleySite, Stemmer, prune_flat, prune_hierarchical, render_svg
from repro.analysis.case_studies import (
    run_backdoor_routes,
    run_community_mistag,
    run_load_balance_check,
    run_route_leak,
    site_tamp_graph,
)
from repro.config.compiler import compile_config
from repro.config.parser import parse_config
from repro.integrate.policy import correlate_policies
from repro.simulator.workloads import COMM_CENIC_LAAP
from repro.simulator import scenarios

OUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    print("building Berkeley site...")
    site = BerkeleySite(n_prefixes=1_200)

    # --- IV-A: the unbalanced load split -----------------------------
    result = run_load_balance_check(site)
    print(result.row())
    picture = prune_flat(site_tamp_graph(site))
    (OUT_DIR / "iv_a_load_split.svg").write_text(
        render_svg(picture, title="IV-A: rate-limiter split 78%/5%")
    )

    # --- IV-B: backdoor routes ----------------------------------------
    result = run_backdoor_routes(site)
    print(result.row())
    graph = site_tamp_graph(site)
    (OUT_DIR / "iv_b_backdoor_hierarchical.svg").write_text(
        render_svg(
            prune_hierarchical(graph, keep_depth=4),
            title="IV-B: backdoor exposed by hierarchical pruning",
        )
    )

    # --- IV-C: community mis-tagging ----------------------------------
    result = run_community_mistag(site)
    print(result.row())
    tagged_graph = site_tamp_graph(
        site,
        route_filter=lambda r: COMM_CENIC_LAAP in r.attributes.communities,
    )
    (OUT_DIR / "iv_c_community_subset.svg").write_text(
        render_svg(tagged_graph, title="IV-C: routes tagged 2152:65297")
    )

    # --- IV-D: the route leak, with policy correlation ----------------
    result = run_route_leak(site, cycles=2)
    print(result.row())
    incident = scenarios.route_leak(site, cycles=1)
    component = Stemmer().strongest_component(incident.stream)
    configs = [
        compile_config(parse_config(site._edge13_config())),
        compile_config(parse_config(site._edge200_config())),
    ]
    correlation = correlate_policies(component, configs)
    print()
    print("policy correlation (Section III-D.1):")
    print(correlation.summary())
    print()
    print(f"pictures written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
