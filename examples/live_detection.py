#!/usr/bin/env python3
"""Real-time detection with multi-timescale windows.

The operational scenario behind Figure 8: a collector ingests a live
event stream containing (a) background churn, (b) a big session-reset
spike, and (c) a low-grade persistent oscillation whose event rate sits
in the grass. A rate-threshold detector sees only the spike; the
windowed Stemming detector surfaces both — the oscillation through its
long window, exactly the Section III-B temporal-independence argument.

Run:
    python examples/live_detection.py
"""

from repro import RouteExplorer, StreamingDetector
from repro.collector.rates import bin_events
from repro.net.aspath import ASPath
from repro.simulator.synthetic import (
    ISP_ANON_PROFILE,
    background_churn_events,
    oscillation_events,
    populate_view,
    session_reset_events,
)
from repro.simulator.workloads import synthetic_prefixes
from repro.stemming.encode import format_stem

HOUR = 3600.0
DAY = 24 * HOUR


def build_stream():
    rex = RouteExplorer()
    populate_view(rex, 60_000, ISP_ANON_PROFILE)
    prefixes = synthetic_prefixes(1_000)
    grass = background_churn_events(
        prefixes, peer_count=20, start=0.0, duration=2 * DAY,
        events_per_second=0.01,
    )
    spike = session_reset_events(
        rex, peer_index=0, start=1.2 * DAY, convergence_seconds=300.0
    )
    oscillation = oscillation_events(
        prefixes[0],
        peer_indices=[3, 4],
        paths=[ASPath([1, 4545]), ASPath([2, 4545])],
        start=0.0,
        duration=2 * DAY,
        period=300.0,  # one cycle every five minutes: pure grass
    )
    return grass.merged_with(spike).merged_with(oscillation)


def main() -> None:
    stream = build_stream()
    print(f"stream: {len(stream)} events over {stream.timerange / DAY:.1f} days")

    # The naive rate detector.
    series = bin_events(stream, bin_seconds=HOUR)
    spikes = series.spikes(threshold_factor=10.0)
    print(
        f"rate detector (hourly bins): grass={series.grass_level():.0f},"
        f" peak={series.peak()[1]}, spikes found={len(spikes)}"
    )
    print("  -> the oscillation raises no spike (it IS the grass)")

    # The windowed Stemming detector.
    detector = StreamingDetector(windows=(10 * 60.0, 4 * HOUR, 2 * DAY))
    detector.ingest(stream)
    report = detector.report()
    print()
    print("windowed Stemming detector:")
    for window in sorted(report.by_window):
        result = report.by_window[window]
        top = result.strongest
        label = (
            f"{format_stem(top.stem)} ({len(top.prefixes)} prefixes,"
            f" {top.event_count} events)"
            if top
            else "nothing"
        )
        print(
            f"  window {window / HOUR:6.1f} h: {result.total_events:6d}"
            f" events, strongest: {label}"
        )
    persistent = report.persistent_anomalies()
    print()
    if persistent:
        print("persistent anomalies (dominate long windows only):")
        for component in persistent:
            print(f"  {component.describe()}")
    else:
        print("no persistent anomalies")


if __name__ == "__main__":
    main()
