"""Benchmark regression guard: fresh BENCH_*.json vs a committed baseline.

``record_row`` appends one machine-readable entry per benchmark row to
``bench_results/BENCH_<table>.json``, tagged with the run's scale. CI's
benchmark smoke (``REPRO_BENCH_SCALE=0.05``) therefore leaves the fresh
rows at the end of the checked-in file; this script compares them
against ``bench_results/baselines/<same name>`` and fails when any
row's ``measured_seconds`` regressed by more than the tolerance.

Matching is by row identity — every entry key except the measurements
themselves (``row``, ``workers`` and ``*_seconds`` other than the
paper's published number). When a file holds several runs of the same
row, the last one wins: appended files read oldest-first, so the last
entry is the freshest run.

Rows whose baseline is below the noise floor are skipped: a 0.02 s row
can double on scheduler jitter alone, and the guard exists to catch
real slowdowns in the build path, not timer noise. The baseline is a
measurement on specific hardware — refresh it (rerun the smoke scale
and copy the file into ``baselines/``) when the CI runner class
changes, rather than widening the tolerance.

Deliberately stdlib-only so it runs before/without the package install.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

#: Entry keys that describe the measurement, not the row's identity.
#: ``paper_seconds`` stays in the identity: it is the published
#: constant the row reproduces, not something we measured.
MEASUREMENT_KEYS = frozenset(
    {
        "row",
        "workers",
        "measured_seconds",
        "naive_seconds",
        "object_seconds",
        "per_event_seconds",
        "requests_per_s",
        "events_per_s",
        "requests_served",
        "renders",
        "bit_identical",
    }
)

DEFAULT_TOLERANCE = 0.25
DEFAULT_NOISE_FLOOR = 0.05


def row_identity(entry: dict) -> tuple:
    return tuple(
        sorted(
            (key, value)
            for key, value in entry.items()
            if key not in MEASUREMENT_KEYS
        )
    )


def latest_by_identity(
    entries: list, scale: Optional[float] = None
) -> dict:
    """Map row identity → the last (freshest) matching entry."""
    latest: dict = {}
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        if "measured_seconds" not in entry:
            continue
        if scale is not None and entry.get("scale") != scale:
            continue
        latest[row_identity(entry)] = entry
    return latest


def compare(
    fresh_entries: list,
    baseline_entries: list,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    scale: Optional[float] = None,
) -> tuple[list, list]:
    """(regressions, checked) over rows present in both files.

    Each regression/checked item is a dict with the row text, both
    timings and the ratio; regressions exceeded ``tolerance``.
    """
    fresh = latest_by_identity(fresh_entries, scale)
    baseline = latest_by_identity(baseline_entries, scale)
    regressions = []
    checked = []
    for identity, base_entry in sorted(baseline.items()):
        fresh_entry = fresh.get(identity)
        if fresh_entry is None:
            continue
        base_time = float(base_entry["measured_seconds"])
        fresh_time = float(fresh_entry["measured_seconds"])
        if base_time < noise_floor:
            continue
        report = {
            "row": fresh_entry.get("row", str(identity)),
            "baseline_seconds": base_time,
            "fresh_seconds": fresh_time,
            "ratio": fresh_time / base_time,
        }
        checked.append(report)
        if fresh_time > base_time * (1.0 + tolerance):
            regressions.append(report)
    return regressions, checked


def load_entries(path: Path) -> list:
    entries = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(entries, list):
        raise ValueError(f"{path}: expected a JSON list of row entries")
    return entries


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when fresh benchmark rows regress vs a baseline"
    )
    parser.add_argument("fresh", type=Path, help="freshly written BENCH json")
    parser.add_argument("baseline", type=Path, help="committed baseline json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--noise-floor",
        type=float,
        default=DEFAULT_NOISE_FLOOR,
        help="skip rows whose baseline is below this many seconds",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="only compare entries recorded at this REPRO_BENCH_SCALE",
    )
    args = parser.parse_args(argv)
    try:
        fresh_entries = load_entries(args.fresh)
        baseline_entries = load_entries(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"bench-guard error: {exc}", file=sys.stderr)
        return 2
    regressions, checked = compare(
        fresh_entries,
        baseline_entries,
        tolerance=args.tolerance,
        noise_floor=args.noise_floor,
        scale=args.scale,
    )
    if not checked:
        print(
            "bench-guard error: no comparable rows between"
            f" {args.fresh} and {args.baseline}"
            + (f" at scale {args.scale}" if args.scale is not None else ""),
            file=sys.stderr,
        )
        return 2
    for report in checked:
        marker = "REGRESSED" if report in regressions else "ok"
        print(
            f"{marker:>9}  x{report['ratio']:.2f}"
            f"  baseline={report['baseline_seconds']:.3f}s"
            f"  fresh={report['fresh_seconds']:.3f}s"
            f"  {report['row']}"
        )
    if regressions:
        print(
            f"bench-guard: {len(regressions)} of {len(checked)} rows"
            f" slower than baseline by more than"
            f" {args.tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"bench-guard: {len(checked)} rows within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
