"""Table I(b): execution times of TAMP and Stemming on ISP-Anon data.

Paper rows (C++ on a 3.06 GHz Pentium 4):

    TAMP picture            TAMP animation                 Stemming
    routes  time            events  timerange   time       events  timerange  time
    1500k   7 s             1k      226 s       1.0 s      214k    61.7 min   32.8 s
    750k    3.8 s           10k     621 s       1.6 s      346k    51.7 min   34.1 s
    150k    1.5 s           100k    2.3 h       9.4 s      791k    1.7 h      35.2 s
                            1000k   20.5 h      88.5 s

Note the paper's observation that timeranges for equal event counts are
much shorter at the ISP (chattier peerings) — the row parameters encode
exactly that, and the workload generator honours them.
"""

import pytest

from benchmarks.conftest import (
    ISP_ANON_PROFILE,
    record_row,
    scaled,
    stream_for,
    subset_rex,
)
from repro.stemming.stemmer import Stemmer
from repro.tamp.animate import animate_stream
from repro.tamp.graph import TampGraph
from repro.tamp.picture import picture_from_rex
from repro.tamp.prune import prune_flat

PICTURE_ROWS = [(1_500_000, 7.0), (750_000, 3.8), (150_000, 1.5)]
ANIMATION_ROWS = [
    (1_000, 226.0, 1.0),
    (10_000, 621.0, 1.6),
    (100_000, 2.3 * 3600.0, 9.4),
    (1_000_000, 20.5 * 3600.0, 88.5),
]
STEMMING_ROWS = [
    (214_000, 61.7 * 60.0, 32.8),
    (346_000, 51.7 * 60.0, 34.1),
    (791_000, 1.7 * 3600.0, 35.2),
]


def build_picture(rex) -> TampGraph:
    return prune_flat(picture_from_rex(rex, "ISP-Anon"))


@pytest.mark.parametrize("n_routes,paper_seconds", PICTURE_ROWS)
def test_tamp_picture(benchmark, isp_rex, n_routes, paper_seconds):
    n = scaled(n_routes)
    rex = subset_rex(isp_rex, n, ISP_ANON_PROFILE)
    assert rex.route_count() == n
    graph = benchmark.pedantic(
        build_picture, args=(rex,), rounds=1, iterations=1
    )
    assert graph.total_prefixes() > 0
    record_row(
        "table1b_picture",
        f"routes={n:>8}  paper={paper_seconds:>5.1f}s"
        f"  measured={benchmark.stats.stats.mean:>7.2f}s",
        data={
            "routes": n,
            "paper_seconds": paper_seconds,
            "measured_seconds": benchmark.stats.stats.mean,
        },
    )


@pytest.mark.parametrize("n_events,timerange,paper_seconds", ANIMATION_ROWS)
def test_tamp_animation(benchmark, isp_rex, n_events, timerange, paper_seconds):
    n = scaled(n_events)
    stream = stream_for(isp_rex, n, timerange, seed=51)
    baseline = list(isp_rex.all_routes())

    def load_baseline():
        # The paper times from "the current state of the system": table
        # rebuild is excluded, so the baseline loads in setup.
        from repro.tamp.incremental import IncrementalTamp

        tamp = IncrementalTamp("ISP-Anon")
        tamp.load_routes(baseline)
        return (stream,), {"tamp": tamp}

    animation = benchmark.pedantic(
        animate_stream, setup=load_baseline, rounds=1, iterations=1
    )
    assert animation.frame_count == 750
    record_row(
        "table1b_animation",
        f"events={n:>8}  timerange={timerange:>9.0f}s"
        f"  paper={paper_seconds:>5.1f}s"
        f"  measured={benchmark.stats.stats.mean:>7.2f}s",
        data={
            "events": n,
            "timerange_seconds": timerange,
            "paper_seconds": paper_seconds,
            "measured_seconds": benchmark.stats.stats.mean,
        },
    )


@pytest.mark.parametrize("n_events,timerange,paper_seconds", STEMMING_ROWS)
def test_stemming(benchmark, isp_rex, n_events, timerange, paper_seconds):
    n = scaled(n_events)
    stream = stream_for(isp_rex, n, timerange, seed=53)
    stemmer = Stemmer(max_components=8)
    result = benchmark.pedantic(
        stemmer.decompose, args=(stream,), rounds=1, iterations=1
    )
    assert result.components
    record_row(
        "table1b_stemming",
        f"events={n:>8}  timerange={timerange:>9.0f}s"
        f"  paper={paper_seconds:>5.1f}s"
        f"  measured={benchmark.stats.stats.mean:>7.2f}s"
        f"  components={len(result.components)}",
        data={
            "events": n,
            "timerange_seconds": timerange,
            "paper_seconds": paper_seconds,
            "measured_seconds": benchmark.stats.stats.mean,
            "components": len(result.components),
        },
    )


def test_isp_timeranges_shorter_than_berkeley(benchmark):
    """The paper's cross-table observation: for equal event counts the
    ISP timeranges are much shorter (BGP is chattier at an ISP). Encoded
    in the row parameters; asserted here so the tables stay consistent."""
    from benchmarks.test_table1_berkeley import (
        ANIMATION_ROWS as BERKELEY_ROWS,
    )

    def check():
        for (n_b, t_b, _), (n_i, t_i, _) in zip(
            BERKELEY_ROWS, ANIMATION_ROWS
        ):
            assert n_b == n_i
            assert t_i < t_b or n_b >= 1_000_000

    benchmark.pedantic(check, rounds=1, iterations=1)
