"""Serve-path benchmarks: the ≥10k req/s cached read path.

Three rows land in ``bench_results/BENCH_serve.json``:

* cached-picture read throughput — pipelined keep-alive clients
  hammering ``/picture.svg`` with ``If-None-Match``; every response
  after the warm-up is a precomputed 304 and the renderer never runs
  again (the tentpole target: ≥10k requests/s on one core at full
  scale);
* feed-while-serving — the cooperative loop pumping a sharded
  pipeline at full speed while a client polls the picture, showing
  event throughput holds (≥2,450 events/s at full scale, the
  BENCH_pipeline bar) with the read path attached;
* fan-in bit-identity — the 2-shard merged picture byte-equals the
  unsharded run (recorded as a flag, not a timing).
"""

import asyncio
import time

from benchmarks.conftest import SCALE, record_row, scaled
from repro.pipeline import MonitorConfig, SyntheticSource
from repro.serve import ServeApp, ShardSet, SnapshotHub, TransitionFeed

#: Concurrent keep-alive client connections for the read benchmark.
CLIENTS = 4

#: Conditional GETs written per burst before reading responses back.
PIPELINE_DEPTH = 100


def serve_config() -> MonitorConfig:
    return MonitorConfig(window=120.0, slide=60.0, batch_size=256)


def fed_shard_set(n_events: int, seed: int, shards: int) -> ShardSet:
    source = SyntheticSource(n_events, 1200.0, seed=seed)
    shard_set = ShardSet(
        SyntheticSource(n_events, 1200.0, seed=seed),
        serve_config(),
        shards=shards,
    )
    for event in source.events():
        shard_set.offer(event)
    shard_set.finish()
    return shard_set


async def pipelined_reads(
    port: int, etag: str, total: int
) -> int:
    """One connection issuing conditional GETs in pipelined bursts."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    request = (
        "GET /picture.svg HTTP/1.1\r\nHost: bench\r\n"
        f"If-None-Match: {etag}\r\n\r\n"
    ).encode("latin-1")
    done = 0
    hits = 0
    while done < total:
        burst = min(PIPELINE_DEPTH, total - done)
        writer.write(request * burst)
        await writer.drain()
        for _ in range(burst):
            head = await reader.readuntil(b"\r\n\r\n")
            if head.startswith(b"HTTP/1.1 304"):
                hits += 1
        done += burst
    writer.close()
    try:
        await writer.wait_closed()
    except OSError:
        pass
    return hits


def test_cached_picture_read_throughput(benchmark):
    """The tentpole number: cached 304s at wire speed, renderer idle."""
    n_requests = scaled(40_000)
    shard_set = fed_shard_set(scaled(8_000), seed=11, shards=2)
    hub = SnapshotHub(shard_set)
    app = ServeApp(hub, TransitionFeed())
    measured: dict[str, float] = {}

    async def drive() -> None:
        port = await app.start()
        snap = await hub.snapshot()  # warm: the one and only render
        per_client = n_requests // CLIENTS
        t0 = time.perf_counter()
        hits = await asyncio.gather(
            *(
                pipelined_reads(port, snap.etag, per_client)
                for _ in range(CLIENTS)
            )
        )
        measured["elapsed"] = time.perf_counter() - t0
        measured["requests"] = CLIENTS * per_client
        measured["hits"] = sum(hits)
        await app.close()

    benchmark.pedantic(lambda: asyncio.run(drive()), rounds=1, iterations=1)
    requests_per_s = measured["requests"] / measured["elapsed"]
    assert measured["hits"] == measured["requests"]  # all served 304
    assert hub.renders == 1  # render-once/serve-many held
    if SCALE >= 1.0:
        assert requests_per_s >= 10_000
    shard_set.close()
    record_row(
        "serve",
        f"cached reads: requests={int(measured['requests']):>7}"
        f"  clients={CLIENTS}  elapsed={measured['elapsed']:>6.2f}s"
        f"  req/s={requests_per_s:>9.0f}  renders={hub.renders}",
        data={
            "bench": "cached_reads",
            "requests": int(measured["requests"]),
            "clients": CLIENTS,
            "shards": 2,
            "measured_seconds": measured["elapsed"],
            "requests_per_s": requests_per_s,
            "renders": hub.renders,
        },
    )


def test_feed_while_serving(benchmark):
    """Event throughput with the read path attached and polling."""
    n_events = scaled(40_000)
    config = serve_config()
    measured: dict[str, float] = {}

    async def drive() -> None:
        source = SyntheticSource(n_events, 3600.0, seed=12)
        shard_set = ShardSet(
            SyntheticSource(n_events, 3600.0, seed=12),
            config,
            shards=2,
        )
        hub = SnapshotHub(shard_set)
        feed = TransitionFeed()
        app = ServeApp(hub, feed)
        port = await app.start()
        stop = False
        served = 0

        async def poll() -> None:
            nonlocal served
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            etag = '""'
            while not stop:
                writer.write(
                    (
                        "GET /picture.svg HTTP/1.1\r\nHost: bench\r\n"
                        f"If-None-Match: {etag}\r\n\r\n"
                    ).encode("latin-1")
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                if not head.startswith(b"HTTP/1.1 304"):
                    headers = dict(
                        line.split(": ", 1)
                        for line in head.decode("latin-1").split(
                            "\r\n"
                        )[1:]
                        if ": " in line
                    )
                    await reader.readexactly(
                        int(headers["Content-Length"])
                    )
                    etag = headers["ETag"]
                served += 1
                await asyncio.sleep(0.002)
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

        poller = asyncio.create_task(poll())
        t0 = time.perf_counter()
        since_yield = 0
        for event in source.events():
            entries = shard_set.offer(event)
            if entries:
                feed.publish_all(entries)
            since_yield += 1
            if since_yield >= config.batch_size:
                since_yield = 0
                await asyncio.sleep(0)
        feed.publish_all(shard_set.finish())
        measured["elapsed"] = time.perf_counter() - t0
        stop = True
        await poller
        measured["served"] = served
        measured["renders"] = hub.renders
        measured["published"] = feed.published
        feed.close()
        await app.close()
        shard_set.close()

    benchmark.pedantic(lambda: asyncio.run(drive()), rounds=1, iterations=1)
    events_per_s = n_events / measured["elapsed"]
    assert measured["served"] > 0  # requests really interleaved
    if SCALE >= 1.0:
        assert events_per_s >= 2_450
    record_row(
        "serve",
        f"feed+serve: events={n_events:>7}"
        f"  elapsed={measured['elapsed']:>6.2f}s"
        f"  events/s={events_per_s:>8.0f}"
        f"  polls={int(measured['served']):>6}"
        f"  renders={int(measured['renders']):>3}"
        f"  sse={int(measured['published']):>5}",
        data={
            "bench": "feed_while_serving",
            "events": n_events,
            "shards": 2,
            "measured_seconds": measured["elapsed"],
            "events_per_s": events_per_s,
            "requests_served": measured["served"],
            "renders": measured["renders"],
            "sse_published": measured["published"],
        },
    )


def test_sharded_read_path_bit_identity(benchmark):
    """The fan-in acceptance bar, recorded next to the timings."""
    n_events = scaled(6_000)
    bodies = {}

    def build() -> None:
        for shards in (1, 2):
            shard_set = fed_shard_set(n_events, seed=13, shards=shards)
            bodies[shards] = SnapshotHub(shard_set).render().body
            shard_set.close()

    benchmark.pedantic(build, rounds=1, iterations=1)
    identical = bodies[1] == bodies[2]
    assert identical
    record_row(
        "serve",
        f"bit-identity: events={n_events:>7}  shards 2 vs 1: "
        + ("byte-identical" if identical else "MISMATCH"),
        data={
            "bench": "bit_identity",
            "events": n_events,
            "bit_identical": identical,
            "svg_bytes": len(bodies[1]),
        },
    )
