"""Table I(a): execution times of TAMP and Stemming on Berkeley data.

Paper rows (C++ on a 3.06 GHz Pentium 4):

    TAMP picture            TAMP animation                 Stemming
    routes  time            events  timerange   time       events  timerange  time
    230k    1.8 s           1k      423 s       0.5 s      12k     189 s      8.6 s
    115k    1.6 s           10k     36 min      1.1 s      57k     882 s      9.5 s
    23k     0.5 s           100k    7.6 h       9 s        330k    16.3 min   17.3 s
                            1000k   33.6 h      78 s

We regenerate the same rows with this implementation (pure Python on the
host machine). The claim under test is the *scaling shape*: picture time
~linear in routes, animation time dominated by event count, Stemming
growing mildly with event-group size.
"""

import pytest

from benchmarks.conftest import (
    BERKELEY_PROFILE,
    record_row,
    scaled,
    stream_for,
    subset_rex,
)
from repro.stemming.stemmer import Stemmer
from repro.tamp.animate import animate_stream
from repro.tamp.graph import TampGraph
from repro.tamp.picture import picture_from_rex
from repro.tamp.prune import prune_flat

PICTURE_ROWS = [(230_000, 1.8), (115_000, 1.6), (23_000, 0.5)]
ANIMATION_ROWS = [
    (1_000, 423.0, 0.5),
    (10_000, 36 * 60.0, 1.1),
    (100_000, 7.6 * 3600.0, 9.0),
    (1_000_000, 33.6 * 3600.0, 78.0),
]
STEMMING_ROWS = [
    (12_000, 189.0, 8.6),
    (57_000, 882.0, 9.5),
    (330_000, 16.3 * 60.0, 17.3),
]


def build_picture(rex) -> TampGraph:
    return prune_flat(picture_from_rex(rex, "Berkeley"))


@pytest.mark.parametrize("n_routes,paper_seconds", PICTURE_ROWS)
def test_tamp_picture(benchmark, berkeley_rex, n_routes, paper_seconds):
    n = scaled(n_routes)
    rex = subset_rex(berkeley_rex, n, BERKELEY_PROFILE)
    assert rex.route_count() == n
    graph = benchmark.pedantic(
        build_picture, args=(rex,), rounds=1, iterations=1
    )
    assert graph.total_prefixes() > 0
    record_row(
        "table1a_picture",
        f"routes={n:>8}  paper={paper_seconds:>5.1f}s"
        f"  measured={benchmark.stats.stats.mean:>7.2f}s",
        data={
            "routes": n,
            "paper_seconds": paper_seconds,
            "measured_seconds": benchmark.stats.stats.mean,
        },
    )


@pytest.mark.parametrize("n_events,timerange,paper_seconds", ANIMATION_ROWS)
def test_tamp_animation(
    benchmark, berkeley_rex, n_events, timerange, paper_seconds
):
    n = scaled(n_events)
    stream = stream_for(berkeley_rex, n, timerange, seed=41)
    baseline = list(berkeley_rex.all_routes())

    def load_baseline():
        # The paper times from "the current state of the system": table
        # rebuild is excluded, so the baseline loads in setup.
        from repro.tamp.incremental import IncrementalTamp

        tamp = IncrementalTamp("Berkeley")
        tamp.load_routes(baseline)
        return (stream,), {"tamp": tamp}

    animation = benchmark.pedantic(
        animate_stream, setup=load_baseline, rounds=1, iterations=1
    )
    assert animation.frame_count == 750
    record_row(
        "table1a_animation",
        f"events={n:>8}  timerange={timerange:>9.0f}s"
        f"  paper={paper_seconds:>5.1f}s"
        f"  measured={benchmark.stats.stats.mean:>7.2f}s",
        data={
            "events": n,
            "timerange_seconds": timerange,
            "paper_seconds": paper_seconds,
            "measured_seconds": benchmark.stats.stats.mean,
        },
    )


@pytest.mark.parametrize("n_events,timerange,paper_seconds", STEMMING_ROWS)
def test_stemming(benchmark, berkeley_rex, n_events, timerange, paper_seconds):
    n = scaled(n_events)
    stream = stream_for(berkeley_rex, n, timerange, seed=43)
    stemmer = Stemmer(max_components=8)
    result = benchmark.pedantic(
        stemmer.decompose, args=(stream,), rounds=1, iterations=1
    )
    assert result.components, "event spike must decompose into components"
    record_row(
        "table1a_stemming",
        f"events={n:>8}  timerange={timerange:>9.0f}s"
        f"  paper={paper_seconds:>5.1f}s"
        f"  measured={benchmark.stats.stats.mean:>7.2f}s"
        f"  components={len(result.components)}",
        data={
            "events": n,
            "timerange_seconds": timerange,
            "paper_seconds": paper_seconds,
            "measured_seconds": benchmark.stats.stats.mean,
            "components": len(result.components),
        },
    )


def test_scaling_shape(benchmark, berkeley_rex):
    """The qualitative Table I claims, asserted:

    * picture time grows with route count,
    * Stemming grows sublinearly vs. event count (deduplication).

    Wrapped in a single benchmark so the check runs under
    ``--benchmark-only`` alongside the row benchmarks.
    """
    import time

    def timed(fn, *args, **kwargs):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        return time.perf_counter() - t0

    measurements = {}

    def run_shape_probe():
        small = subset_rex(berkeley_rex, scaled(23_000), BERKELEY_PROFILE)
        large = subset_rex(berkeley_rex, scaled(230_000), BERKELEY_PROFILE)
        measurements["pic_small"] = timed(build_picture, small)
        measurements["pic_large"] = timed(build_picture, large)
        stream_small = stream_for(berkeley_rex, scaled(12_000), 189.0, seed=47)
        stream_large = stream_for(
            berkeley_rex, scaled(120_000), 1890.0, seed=48
        )
        stemmer = Stemmer(max_components=4)
        measurements["stem_small"] = timed(stemmer.decompose, stream_small)
        measurements["stem_large"] = timed(stemmer.decompose, stream_large)

    benchmark.pedantic(run_shape_probe, rounds=1, iterations=1)
    assert measurements["pic_large"] > measurements["pic_small"]
    # Stemming must stay far from quadratic: the per-event cost of a
    # 10x-larger group may grow at most ~3x (constant-factor noise on
    # the small probe included).
    per_event_small = measurements["stem_small"] / max(scaled(12_000), 1)
    per_event_large = measurements["stem_large"] / max(scaled(120_000), 1)
    assert per_event_large < 3 * max(per_event_small, 1e-9)
    record_row(
        "table1a_shape",
        f"picture {scaled(23_000)}r={measurements['pic_small']:.2f}s"
        f" {scaled(230_000)}r={measurements['pic_large']:.2f}s |"
        f" stemming {scaled(12_000)}e={measurements['stem_small']:.2f}s"
        f" {scaled(120_000)}e={measurements['stem_large']:.2f}s",
        data={
            "events": scaled(120_000),
            "measured_seconds": measurements["stem_large"],
            "measurements": measurements,
        },
    )
