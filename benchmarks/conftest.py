"""Shared benchmark infrastructure.

Every benchmark regenerates a specific table row or figure from the
paper. Results are appended to ``bench_results/`` as human-readable rows
next to the published numbers, so EXPERIMENTS.md can be cross-checked
against a run.

Scale: ``REPRO_BENCH_SCALE`` (default 1.0 = published sizes) multiplies
route and event counts. The calibrated full-scale suite runs in minutes
on a current machine; set 0.1 for a quick pass.

Absolute times are NOT expected to match the paper (C++ on a 2003
Pentium 4 vs Python today); the *shape* — scaling with input size, who
is fast and who is slow, where time is spent — is the reproduction
target.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

import pytest

from repro.collector.rex import RouteExplorer
from repro.perf import resolve_workers
from repro.simulator.synthetic import (
    BERKELEY_PROFILE,
    ISP_ANON_PROFILE,
    populate_view,
    sized_event_stream,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def scaled(value: int, minimum: int = 100) -> int:
    return max(minimum, int(value * SCALE))


def record_row(table: str, row: str, data: Optional[dict] = None) -> None:
    """Append one result row to bench_results/<table>.txt (and echo it).

    When *data* is given, the row is also appended — as a machine-readable
    entry tagged with the run's scale and resolved worker count — to
    ``bench_results/BENCH_<table>.json``, the artifact CI uploads so runs
    can be compared without parsing the text rows.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{table}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(row + "\n")
    if data is not None:
        entry = {
            "scale": SCALE,
            "workers": resolve_workers(None),
            "row": row,
        }
        entry.update(data)
        json_path = RESULTS_DIR / f"BENCH_{table}.json"
        try:
            entries = json.loads(json_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            entries = []
        if not isinstance(entries, list):
            entries = []
        entries.append(entry)
        json_path.write_text(
            json.dumps(entries, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    print(row)


@pytest.fixture(scope="session")
def berkeley_rex() -> RouteExplorer:
    """A Berkeley-profile collector view at the paper's largest size."""
    rex = RouteExplorer("berkeley-bench")
    populate_view(
        rex,
        scaled(230_000),
        BERKELEY_PROFILE,
        routes_per_prefix=1.8,
        seed=2003,
    )
    return rex


@pytest.fixture(scope="session")
def isp_rex() -> RouteExplorer:
    """An ISP-Anon-profile collector view at the paper's largest size."""
    rex = RouteExplorer("isp-bench")
    populate_view(
        rex,
        scaled(1_500_000),
        ISP_ANON_PROFILE,
        routes_per_prefix=7.5,
        seed=2002,
    )
    return rex


def subset_rex(rex: RouteExplorer, n_routes: int, profile) -> RouteExplorer:
    """A fresh collector holding the first *n_routes* of *rex*'s view."""
    if n_routes >= rex.route_count():
        # The full-size row: copying 1.5M routes would double resident
        # memory for an identical view, and the extra live objects tax
        # the timed region (GC scans, cache misses) without changing
        # the measured workload.
        return rex
    subset = RouteExplorer("subset")
    remaining = n_routes
    for peer in rex.peers():
        if remaining <= 0:
            break
        rib = rex.rib(peer)
        subset.peer_with(peer)
        target = subset.rib(peer)
        for route in rib.routes():
            if remaining <= 0:
                break
            target.announce(route.prefix, route.attributes)
            remaining -= 1
    return subset


def stream_for(rex: RouteExplorer, events: int, timerange: float, seed: int):
    return sized_event_stream(rex, events, timerange, seed=seed)
