"""Per-figure regeneration harness.

One benchmark per paper figure: builds the figure's data from the
simulated workloads, asserts the published qualitative result, and
records a row with paper-vs-measured numbers in ``bench_results/``.
"""

import pytest

from benchmarks.conftest import record_row, scaled
from repro.analysis.case_studies import (
    run_backdoor_routes,
    run_community_mistag,
    run_customer_flap,
    run_load_balance_check,
    run_med_oscillation,
    run_route_leak,
    site_tamp_graph,
)
from repro.collector.rates import bin_events
from repro.net.prefix import parse_address
from repro.simulator.scenarios import customer_flap, med_oscillation
from repro.simulator.synthetic import (
    background_churn_events,
    oscillation_events,
    session_reset_events,
)
from repro.simulator.workloads import (
    AS_ABILENE,
    AS_CALREN,
    AS_QWEST,
    BerkeleySite,
    IspAnonSite,
    synthetic_prefixes,
)
from repro.stemming.stemmer import Stemmer
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat
from repro.tamp.render import render_svg

#: Figure benchmarks run the full simulated site at this prefix count —
#: the published 12,600 by default, scaled down with REPRO_BENCH_SCALE.
BERKELEY_PREFIXES = scaled(12_600, minimum=400)


@pytest.fixture(scope="module")
def berkeley_site() -> BerkeleySite:
    return BerkeleySite(n_prefixes=BERKELEY_PREFIXES)


def test_figure1_construction(benchmark):
    """Figure 1: tree construction and union-merge (micro-benchmark)."""
    from tests.tamp.test_figure1 import build_x, build_y

    def construct():
        return TampGraph.merge([build_x(), build_y()])

    merged = benchmark.pedantic(construct, rounds=50, iterations=10)
    weight = merged.weight(("nh", parse_address("10.0.0.1")), ("as", 1))
    assert weight == 4  # union, not 3+3
    record_row("figures", f"F1 construction: NexthopA-AS1 weight={weight} (paper: 4)")


def test_figure2_berkeley_picture(benchmark, berkeley_site):
    """Figure 2: the Berkeley TAMP picture with the default threshold."""

    def build():
        return prune_flat(site_tamp_graph(berkeley_site))

    graph = benchmark.pedantic(build, rounds=1, iterations=1)
    raw = site_tamp_graph(berkeley_site)
    qwest = raw.edge_fraction(("as", AS_CALREN), ("as", AS_QWEST))
    abilene = raw.edge_fraction(("as", 11422), ("as", AS_ABILENE))
    assert qwest == pytest.approx(0.83, abs=0.05)  # paper: ~80%
    assert abilene == pytest.approx(0.06, abs=0.02)  # paper: 6%
    svg = render_svg(graph, title="Berkeley BGP (Figure 2)")
    record_row(
        "figures",
        f"F2 picture: QWest={qwest:.0%} (paper 80%),"
        f" Abilene={abilene:.0%} (paper 6%),"
        f" pruned_edges={graph.edge_count()}, svg_bytes={len(svg)}",
    )
    result = run_load_balance_check(berkeley_site)
    assert result.detected
    record_row(
        "figures",
        f"F2/IV-A load split: .66={result.measured['share_66']:.0%}"
        f" (paper 78%), .70={result.measured['share_70']:.0%} (paper 5%)",
    )


def test_figure3_med_oscillation_animation(benchmark):
    """Figure 3: the MED oscillation animation on 4.5.0.0/16."""

    def run():
        return med_oscillation(flap_count=scaled(500, minimum=50), period=0.01)

    incident = benchmark.pedantic(run, rounds=1, iterations=1)
    result = run_med_oscillation(flap_count=50)
    assert result.detected
    record_row(
        "figures",
        f"F3 MED oscillation: events={len(incident.stream)},"
        f" prefixes={len(incident.stream.prefixes())} (paper: 1 prefix,"
        f" 95% of IBGP traffic), detected={result.detected}",
    )


def test_figure4_stem(benchmark):
    """Figure 4: the published withdrawal spike stems at 11423--209."""
    from tests.stemming.test_figure4 import figure4_events

    events = figure4_events()
    component = benchmark.pedantic(
        lambda: Stemmer().strongest_component(events),
        rounds=20,
        iterations=5,
    )
    assert component.location == (11423, 209)
    assert component.strength == 8
    record_row(
        "figures",
        f"F4 stem: location=AS{component.location[0]}--AS"
        f"{component.location[1]} strength={component.strength}"
        f" (paper: 11423-209, 8 of 10)",
    )


def test_figure5_backdoor(benchmark, berkeley_site):
    """Figure 5: hierarchical pruning exposes the backdoor routes."""
    result = benchmark.pedantic(
        run_backdoor_routes, args=(berkeley_site,), rounds=1, iterations=1
    )
    assert result.detected
    record_row(
        "figures",
        f"F5 backdoor: prefixes={result.measured['backdoor_prefixes']}"
        f" (paper: 2), flat_visible={result.measured['visible_flat']},"
        f" hierarchical_visible={result.measured['visible_hierarchical']}",
    )


def test_figure6_community_mistag(benchmark, berkeley_site):
    """Figure 6: the 2152:65297 subset splits 32% / 68%."""
    result = benchmark.pedantic(
        run_community_mistag, args=(berkeley_site,), rounds=1, iterations=1
    )
    assert result.detected
    assert result.measured["los_nettos"] == pytest.approx(0.32, abs=0.03)
    assert result.measured["kddi"] == pytest.approx(0.68, abs=0.03)
    record_row(
        "figures",
        f"F6 mistag: LosNettos={result.measured['los_nettos']:.0%}"
        f" (paper 32%), KDDI={result.measured['kddi']:.0%} (paper 68%)",
    )


def test_figure7_route_leak(benchmark):
    """Figure 7: the leak moves prefixes twice; 1.3 stops announcing."""
    site = BerkeleySite(n_prefixes=scaled(2_000, minimum=200))
    result = benchmark.pedantic(
        run_route_leak, args=(site,), kwargs={"cycles": 2},
        rounds=1, iterations=1,
    )
    assert result.detected
    record_row(
        "figures",
        f"F7 leak: moved={result.measured['moved_prefixes']} prefixes"
        f" (paper 30,000 at full scale), events={result.measured['events']}"
        f" (paper ~500,000), cycles={result.measured['cycles']} (paper 2)",
    )


def test_figure8_event_rate(benchmark):
    """Figure 8: the ISP event-rate plot — spikes over grass, with the
    serious problem (the oscillation) hiding in the grass."""
    prefixes = synthetic_prefixes(2_000)
    from repro.collector.rex import RouteExplorer
    from repro.simulator.synthetic import populate_view, ISP_ANON_PROFILE

    rex = RouteExplorer()
    populate_view(rex, scaled(100_000, minimum=5_000), ISP_ANON_PROFILE)
    day = 86_400.0
    spikes = session_reset_events(rex, 0, start=10 * day,
                                  convergence_seconds=600.0)
    # Grass level calibrated to the spike so the figure keeps its shape
    # at any REPRO_BENCH_SCALE: the reset towers ~40x over the grass.
    bin_seconds = day / 4
    grass_rate = max(len(spikes) / (40.0 * bin_seconds), 1e-5)
    grass = background_churn_events(
        prefixes, peer_count=30, start=0.0, duration=30 * day,
        events_per_second=grass_rate,
    )
    from repro.net.aspath import ASPath

    # The oscillation runs at grass level: ~ the background rate per bin
    # (the Figure 8 point — it is invisible to the rate plot). Two peers
    # emit 2 events per cycle each.
    grass_per_bin = grass_rate * bin_seconds
    osc_period = 4 * bin_seconds / max(grass_per_bin, 1.0)
    oscillation = oscillation_events(
        prefixes[0],
        peer_indices=[1, 2],
        paths=[ASPath([1, 45]), ASPath([2, 45])],
        start=0.0,
        duration=30 * day,
        period=osc_period,
    )
    stream = grass.merged_with(spikes).merged_with(oscillation)

    series = benchmark.pedantic(
        bin_events, args=(stream, bin_seconds), rounds=1, iterations=1
    )
    spike_bins = series.spikes(threshold_factor=10.0)
    assert spike_bins, "the session reset must register as a rate spike"
    # The oscillation does NOT register as a spike...
    osc_stream = stream.for_prefix(prefixes[0])
    osc_rate = len(osc_stream) / len(series)
    assert osc_rate < series.grass_level() + 5
    # ...but Stemming over the long window finds it first.
    component = Stemmer().strongest_component(
        stream.filter(lambda e: e.timestamp > 11 * day)
    )
    assert component is not None
    assert prefixes[0] in component.prefixes
    record_row(
        "figures",
        f"F8 rate: bins={len(series)}, peak={series.peak()[1]},"
        f" grass={series.grass_level():.0f}, spike_bins={len(spike_bins)},"
        f" oscillation_found_by_stemming=True (rate detector: no)",
    )


def test_traffic_weighted_stemming(benchmark):
    """Section III-D.2: ranking incidents by traffic impact.

    A two-event elephant incident must outrank a many-event mice spike
    once Zipf volumes weight the correlation — and the plain stemmer
    must rank them the other way, proving the weighting changes the
    operational answer.
    """
    from repro.net.aspath import ASPath
    from repro.net.attributes import PathAttributes
    from repro.collector.events import BGPEvent, EventKind
    from repro.stemming.weighted import TrafficWeightedStemmer
    from repro.traffic.elephants import concentration, zipf_volumes

    prefixes = synthetic_prefixes(scaled(2_000, minimum=500))
    volumes = zipf_volumes(prefixes, alpha=1.2)
    skew = concentration(volumes, top_fraction=0.1)
    assert skew > 0.6  # the elephant/mice phenomenon holds
    elephant = max(volumes, key=volumes.get)
    mice = sorted(volumes, key=volumes.get)[:200]
    events = []
    for i, prefix in enumerate(mice):
        events.append(
            BGPEvent(
                float(i), EventKind.WITHDRAW, 1, prefix,
                PathAttributes(
                    nexthop=2, as_path=ASPath([100, 200, 40000 + i])
                ),
            )
        )
    for i in range(2):
        events.append(
            BGPEvent(
                500.0 + i, EventKind.WITHDRAW, 3, elephant,
                PathAttributes(nexthop=4, as_path=ASPath([700, 800])),
            )
        )
    weighted = TrafficWeightedStemmer(volumes=volumes)
    result = benchmark.pedantic(
        weighted.decompose, args=(events,), rounds=1, iterations=1
    )
    top = result.components[0]
    assert elephant in top.prefixes
    plain = Stemmer().decompose(events)
    assert elephant not in plain.components[0].prefixes
    record_row(
        "figures",
        f"D.2 weighted stemming: top-10% prefixes carry {skew:.0%} of"
        f" traffic; elephant incident ranks #1 weighted,"
        f" mice spike ranks #1 unweighted",
    )


def test_figure9_customer_flap(benchmark):
    """Figure 9: the continuous customer flap — ~200 events per flap at
    the published 67-reflector scale, ~20 s convergence per flap."""
    n_reflectors = scaled(67, minimum=4)
    isp = IspAnonSite(
        n_reflectors=n_reflectors, n_prefixes=scaled(2_000, minimum=200)
    )
    flaps = 10
    incident = benchmark.pedantic(
        customer_flap,
        args=(isp,),
        kwargs={"flap_count": flaps, "period": 60.0},
        rounds=1,
        iterations=1,
    )
    events_per_flap = len(incident.stream) / flaps
    component = Stemmer().strongest_component(incident.stream)
    assert component is not None
    assert set(component.prefixes) == incident.affected_prefixes
    record_row(
        "figures",
        f"F9 flap: reflectors={n_reflectors} (paper 67),"
        f" events_per_flap={events_per_flap:.0f} (paper ~200),"
        f" period=60s (paper ~1/min), detected=True",
    )
    result = run_customer_flap(isp, flap_count=5)
    assert result.detected
