"""Sustained-throughput benchmark for the streaming monitor.

The batch benchmarks (Table I) time one decomposition; the monitor's
question is different: how many events per second can the full
source → window → TAMP → incident-log pipeline sustain, and how long
does a window's report trail its close (p99 window lag)? Both numbers
land in ``bench_results/BENCH_pipeline.json`` so CI runs can be
compared, and EXPERIMENTS.md records the calibrated full-scale result.
"""

from benchmarks.conftest import record_row, scaled, stream_for
from repro.pipeline import (
    MetricsRegistry,
    MonitorConfig,
    StreamSource,
    run_monitor,
)


def monitor_config(checkpoint_every: int = 4) -> MonitorConfig:
    return MonitorConfig(
        window=120.0,
        slide=60.0,
        batch_size=256,
        checkpoint_every=checkpoint_every,
    )


def test_monitor_sustained_throughput(benchmark, berkeley_rex, tmp_path):
    n_events = scaled(57_000)
    timerange = 3600.0
    stream = stream_for(berkeley_rex, n_events, timerange, seed=53)
    registry = MetricsRegistry()

    def run():
        return run_monitor(
            StreamSource(stream, label="bench"),
            monitor_config(),
            checkpoint_dir=tmp_path / "ckpt",
            registry=registry,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    assert result.stopped == "end"
    assert result.reports, "the feed must produce window reports"
    assert result.checkpoints_written >= 1

    events_per_s = result.events / max(elapsed, 1e-9)
    snapshot = registry.snapshot()
    lag = snapshot["repro_pipeline_window_lag_seconds"]
    record_row(
        "pipeline",
        f"events={result.events:>8}  windows={len(result.reports):>4}"
        f"  elapsed={elapsed:>7.2f}s"
        f"  events/s={events_per_s:>9.0f}"
        f"  p99_window_lag={lag['p99'] * 1000:>8.1f}ms",
        data={
            "events": result.events,
            "windows": len(result.reports),
            "measured_seconds": elapsed,
            "events_per_s": events_per_s,
            "p50_window_lag_s": lag["p50"],
            "p99_window_lag_s": lag["p99"],
            "max_window_lag_s": lag["max"],
            "checkpoints": result.checkpoints_written,
        },
    )


def test_checkpoint_overhead(benchmark, berkeley_rex, tmp_path):
    """Checkpointing every window vs every 8th: the durability tax."""
    import time

    n_events = scaled(20_000)
    stream = stream_for(berkeley_rex, n_events, 1800.0, seed=54)

    def timed_run(every, directory):
        t0 = time.perf_counter()
        run_monitor(
            StreamSource(stream, label="bench"),
            monitor_config(checkpoint_every=every),
            checkpoint_dir=directory,
        )
        return time.perf_counter() - t0

    measurements = {}

    def probe():
        measurements["every_1"] = timed_run(1, tmp_path / "eager")
        measurements["every_8"] = timed_run(8, tmp_path / "lazy")

    benchmark.pedantic(probe, rounds=1, iterations=1)
    overhead = measurements["every_1"] / max(measurements["every_8"], 1e-9)
    record_row(
        "pipeline",
        f"checkpoint overhead: every-window={measurements['every_1']:.2f}s"
        f" every-8th={measurements['every_8']:.2f}s"
        f" ratio={overhead:.2f}x",
        data={
            "events": n_events,
            "measured_seconds": measurements["every_1"],
            "eager_seconds": measurements["every_1"],
            "lazy_seconds": measurements["every_8"],
            "overhead_ratio": overhead,
        },
    )
