"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

Each ablation pits the shipped design against its alternative on the same
input and records the outcome, quantifying why the default is the default.
"""

import time

import pytest

from benchmarks.conftest import record_row, scaled, stream_for
from repro.stemming.counter import (
    NaiveSubsequenceCounter,
    SubsequenceCounter,
)
from repro.stemming.stemmer import Stemmer
from repro.tamp.animate import animate_stream
from repro.tamp.prune import prune_flat, prune_hierarchical


@pytest.fixture(scope="module")
def spike_stream(berkeley_rex):
    return stream_for(berkeley_rex, scaled(57_000), 882.0, seed=61)


def test_stemming_counter_strategies(benchmark, spike_stream):
    """Ablation 1: deduplicating counter vs naive O(N·L²).

    BGP streams repeat sequences massively; deduplication should win by
    roughly the stream's duplication factor while producing identical
    counts.
    """
    events = list(spike_stream)

    def run_fast():
        counter = SubsequenceCounter()
        counter.add_all(events)
        return counter

    fast_counter = benchmark.pedantic(run_fast, rounds=1, iterations=1)
    fast_time = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    naive = NaiveSubsequenceCounter()
    naive.add_all(events)
    naive_time = time.perf_counter() - t0

    assert fast_counter.counts() == naive.counts()
    assert fast_counter.top() == naive.top()
    duplication = len(events) / fast_counter.unique_sequence_count
    record_row(
        "ablations",
        f"counter: dedup={fast_time:.2f}s naive={naive_time:.2f}s"
        f" speedup={naive_time / max(fast_time, 1e-9):.1f}x"
        f" duplication_factor={duplication:.0f}x",
        data={
            "ablation": "counter",
            "events": len(events),
            "measured_seconds": fast_time,
            "naive_seconds": naive_time,
        },
    )
    # With realistic duplication the dedup counter must not lose.
    if duplication > 5:
        assert fast_time <= naive_time


def test_stemming_subsequence_length_bound(benchmark, spike_stream):
    """Ablation 1b: bounding counted subsequence length.

    A length bound trades memory for a risk of mis-ranked long contexts;
    measure both cost and whether the top component changes.
    """
    events = list(spike_stream)

    def run(bound):
        stemmer = Stemmer(max_components=3, max_subsequence_length=bound)
        return stemmer.decompose(events)

    unbounded = benchmark.pedantic(
        run, args=(None,), rounds=1, iterations=1
    )
    t0 = time.perf_counter()
    bounded = run(3)
    bounded_time = time.perf_counter() - t0
    same_top = (
        unbounded.strongest is not None
        and bounded.strongest is not None
        and unbounded.strongest.location == bounded.strongest.location
    )
    record_row(
        "ablations",
        f"length-bound: unbounded={benchmark.stats.stats.mean:.2f}s"
        f" bound3={bounded_time:.2f}s same_top_location={same_top}",
    )


def test_pruning_strategies(benchmark, berkeley_rex):
    """Ablation 2: flat vs hierarchical pruning — nodes kept and whether
    small-but-critical structure (a backdoor) survives."""
    from repro.net.prefix import format_address
    from repro.net.aspath import ASPath
    from repro.net.attributes import PathAttributes
    from repro.net.prefix import Prefix
    from repro.tamp.graph import TampGraph
    from repro.tamp.tree import TampTree

    trees = [
        TampTree.from_routes(
            format_address(peer),
            berkeley_rex.rib(peer).routes(),
            include_prefix_leaves=False,
        )
        for peer in berkeley_rex.peers()
    ]
    backdoor = TampTree("backdoor-router", include_prefix_leaves=False)
    for i in range(2):
        backdoor.add_route(
            Prefix(0xC0A8FE00 + i * 256, 24),
            PathAttributes(
                nexthop=0xA9E5009D, as_path=ASPath.parse("7018 55001")
            ),
        )
    graph = TampGraph.merge(trees + [backdoor], site_name="Berkeley")

    flat = benchmark.pedantic(
        prune_flat, args=(graph,), rounds=1, iterations=1
    )
    t0 = time.perf_counter()
    hierarchical = prune_hierarchical(graph, keep_depth=4)
    hier_time = time.perf_counter() - t0
    flat_has = ("router", "backdoor-router") in flat.nodes()
    hier_has = ("router", "backdoor-router") in hierarchical.nodes()
    assert not flat_has and hier_has
    record_row(
        "ablations",
        f"pruning: flat keeps {flat.edge_count()} edges"
        f" ({benchmark.stats.stats.mean:.2f}s, backdoor={flat_has});"
        f" hierarchical keeps {hierarchical.edge_count()} edges"
        f" ({hier_time:.2f}s, backdoor={hier_has})",
    )


def test_animation_consolidation(benchmark, berkeley_rex, spike_stream):
    """Ablation 3: fixed 750 frames vs one frame per event.

    The paper consolidates because the eye cannot follow per-event
    change; the ablation shows the cost ratio (frame bookkeeping scales
    with frame count, not event count).
    """
    baseline = list(berkeley_rex.all_routes())
    events = spike_stream

    consolidated = benchmark.pedantic(
        animate_stream,
        args=(events,),
        kwargs={"baseline": baseline},
        rounds=1,
        iterations=1,
    )
    consolidated_time = benchmark.stats.stats.mean
    # Per-event frames: fps chosen so frame count ~= event count.
    per_event_fps = max(1, int(len(events) / 30.0))
    t0 = time.perf_counter()
    per_event = animate_stream(
        events, baseline=baseline, play_duration=30.0, fps=per_event_fps
    )
    per_event_time = time.perf_counter() - t0
    assert consolidated.frame_count == 750
    record_row(
        "ablations",
        f"animation: 750 frames={consolidated_time:.2f}s;"
        f" {per_event.frame_count} frames={per_event_time:.2f}s"
        f" (x{per_event_time / max(consolidated_time, 1e-9):.1f})",
        data={
            "ablation": "animation",
            "events": len(events),
            "measured_seconds": consolidated_time,
            "per_event_seconds": per_event_time,
        },
    )


def test_prefix_set_representations(benchmark):
    """Ablation 4: dict-refcount edge storage vs frozen-set rebuild.

    The shipped TampGraph stores {prefix: refcount} per edge; the
    alternative rebuilds immutable sets on every change. Measured on the
    incremental-update hot path.
    """
    from repro.net.prefix import Prefix

    prefixes = [Prefix(0x40000000 + i * 256, 24) for i in range(2_000)]
    edge = (("as", 1), ("as", 2))

    def dict_refcount():
        store: dict = {}
        for p in prefixes:
            store[p] = store.get(p, 0) + 1
        for p in prefixes:
            if store[p] == 1:
                del store[p]
            else:
                store[p] -= 1
        return store

    def frozen_rebuild():
        store: frozenset = frozenset()
        for p in prefixes:
            store = store | {p}
        for p in prefixes:
            store = store - {p}
        return store

    benchmark.pedantic(dict_refcount, rounds=3, iterations=1)
    dict_time = benchmark.stats.stats.mean
    t0 = time.perf_counter()
    frozen_rebuild()
    frozen_time = time.perf_counter() - t0
    assert dict_time < frozen_time
    record_row(
        "ablations",
        f"edge-store: dict-refcount={dict_time * 1e3:.1f}ms"
        f" frozenset-rebuild={frozen_time * 1e3:.1f}ms"
        f" ({edge} hot path, {len(prefixes)} prefixes)",
    )


def test_object_sets_vs_interned(benchmark, berkeley_rex):
    """Ablation 6: object-token TAMP builder vs interned ids.

    The DESIGN.md §10 rewrite interns tokens/prefixes to dense ints and
    keys edge stores by packed ids; the preserved pre-rewrite builder
    (`repro.tamp.reference`) works on raw token tuples and
    ``set[Prefix]`` stores. Same input, decoded-identical graphs — the
    row quantifies what the representation alone buys. The backend
    sub-ablation (set columns vs int bitmasks) shows why IdSet is the
    default: builds are update-heavy (set.update mutates in place at C
    speed) while masks only win on unions of already-built columns.
    """
    import random

    from repro.interning import IdSet, MaskIdSet
    from repro.net.prefix import format_address
    from repro.tamp.picture import build_picture
    from repro.tamp.reference import reference_picture

    groups = [
        (format_address(peer), list(berkeley_rex.rib(peer).routes()))
        for peer in berkeley_rex.peers()
    ]
    n_routes = sum(len(routes) for _, routes in groups)

    interned = benchmark.pedantic(
        build_picture, args=(groups, "Berkeley"), rounds=1, iterations=1
    )
    interned_time = benchmark.stats.stats.mean
    t0 = time.perf_counter()
    reference = reference_picture(groups, "Berkeley", threshold=None)
    object_time = time.perf_counter() - t0
    assert {edge: set(p) for edge, p in interned.edges()} == {
        edge: set(p) for edge, p in reference.edges()
    }
    speedup = object_time / max(interned_time, 1e-9)
    if n_routes > 50_000:
        assert interned_time < object_time

    # Backend sub-ablation on synthetic columns shaped like a merge.
    rng = random.Random(67)
    columns = [
        [rng.randrange(60_000) for _ in range(250)] for _ in range(400)
    ]
    t0 = time.perf_counter()
    set_columns = [IdSet(ids) for ids in columns]
    set_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    set_union = IdSet()
    for column in set_columns:
        set_union.update(column)
    set_merge = time.perf_counter() - t0
    t0 = time.perf_counter()
    mask_columns = [MaskIdSet(ids) for ids in columns]
    mask_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    mask_union = MaskIdSet()
    for column in mask_columns:
        mask_union.union_update(column)
    mask_merge = time.perf_counter() - t0
    assert mask_union == set_union

    record_row(
        "ablations",
        f"interning: object-sets={object_time:.2f}s"
        f" interned={interned_time:.2f}s speedup={speedup:.1f}x"
        f" ({n_routes} routes, decoded graphs identical);"
        f" columns set build/merge={set_build * 1e3:.1f}/"
        f"{set_merge * 1e3:.1f}ms"
        f" mask build/merge={mask_build * 1e3:.1f}/"
        f"{mask_merge * 1e3:.1f}ms",
        data={
            "ablation": "interning",
            "routes": n_routes,
            "measured_seconds": interned_time,
            "object_seconds": object_time,
        },
    )


def test_stemming_stopping_rules(benchmark, spike_stream):
    """Ablation 5: min-strength stopping vs fixed component count.

    A fixed count either wastes work on noise or misses incidents; the
    strength threshold adapts. Measure components found and residual.
    """
    events = list(spike_stream)

    def adaptive():
        return Stemmer(min_strength=max(2, len(events) // 500),
                       max_components=32).decompose(events)

    adaptive_result = benchmark.pedantic(adaptive, rounds=1, iterations=1)
    t0 = time.perf_counter()
    fixed_result = Stemmer(min_strength=1, max_components=3).decompose(events)
    fixed_time = time.perf_counter() - t0
    record_row(
        "ablations",
        f"stopping: adaptive found {len(adaptive_result.components)}"
        f" comps, {adaptive_result.coverage():.0%} coverage"
        f" ({benchmark.stats.stats.mean:.2f}s);"
        f" fixed-3 found {len(fixed_result.components)} comps,"
        f" {fixed_result.coverage():.0%} coverage ({fixed_time:.2f}s)",
    )
    assert adaptive_result.coverage() >= fixed_result.coverage() - 0.05
