"""Operator-facing analysis: rate plots, incident reports, case studies.

This layer glues the core algorithms into the workflows of Section IV:
bin a stream into the Figure 8 event-rate view, decompose it with
Stemming, illustrate components with TAMP, and emit a report a network
operator can act on.
"""

from repro.analysis.report import IncidentReport, diagnose
from repro.analysis.case_studies import (
    CaseStudyResult,
    run_all,
    run_backdoor_routes,
    run_community_mistag,
    run_customer_flap,
    run_full_table_hijack,
    run_load_balance_check,
    run_max_prefix_leak,
    run_med_oscillation,
    run_route_leak,
)

__all__ = [
    "IncidentReport",
    "diagnose",
    "CaseStudyResult",
    "run_all",
    "run_load_balance_check",
    "run_backdoor_routes",
    "run_community_mistag",
    "run_route_leak",
    "run_customer_flap",
    "run_med_oscillation",
    "run_full_table_hijack",
    "run_max_prefix_leak",
]
