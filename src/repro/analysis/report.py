"""Incident reports: the answer to the paper's three questions.

"What happened during this upsurge of updates?", "where in the network
did it happen?", "how does it affect me?" — an :class:`IncidentReport`
packages Stemming's decomposition with the event-rate context and a
TAMP rendering per component, as text an operator reads in one screen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.collector.rates import EventRateSeries, bin_events
from repro.collector.stream import EventStream
from repro.stemming.encode import format_stem
from repro.stemming.stemmer import Stemmer, StemmingResult
from repro.tamp.incremental import IncrementalTamp
from repro.tamp.prune import prune_flat
from repro.tamp.render import render_ascii

if TYPE_CHECKING:
    from repro.config.compiler import CompiledConfig
    from repro.igp.topology import IGPTopology
    from repro.integrate.igp import IgpCorrelation
    from repro.integrate.policy import PolicyCorrelation


@dataclass(frozen=True)
class IncidentReport:
    """Everything diagnosed from one event stream."""

    stream: EventStream
    rates: EventRateSeries
    stemming: StemmingResult
    #: ASCII TAMP rendering of the strongest component's routing changes.
    picture: str
    #: Section III-D.1: per-component policy correlations (when router
    #: configurations were supplied to :func:`diagnose`).
    policy_notes: tuple["PolicyCorrelation", ...] = ()
    #: Section III-D.3: per-component IGP drill-downs (when an IGP
    #: topology was supplied).
    igp_notes: tuple["IgpCorrelation", ...] = ()

    @property
    def headline(self) -> str:
        """One line: the strongest component's location and size."""
        top = self.stemming.strongest
        if top is None:
            return "no correlated components found"
        return (
            f"{format_stem(top.stem)}: {len(top.prefixes)} prefixes,"
            f" {top.event_count} of {self.stemming.total_events} events"
        )

    def to_text(self) -> str:
        lines = [
            f"events: {self.stemming.total_events}"
            f" over {self.stream.timerange:.1f} s"
            f" (peak rate {self.rates.peak()[1]}/bin,"
            f" grass {self.rates.grass_level():.0f}/bin)",
            f"headline: {self.headline}",
            "",
            self.stemming.summary(),
        ]
        if self.picture:
            lines += ["", "routing structure of the strongest component:",
                      self.picture]
        if self.policy_notes:
            lines += ["", "policy correlation (configs supplied):"]
            lines += [note.summary() for note in self.policy_notes]
        if self.igp_notes:
            lines += ["", "IGP drill-down (topology supplied):"]
            lines += [note.summary() for note in self.igp_notes]
        return "\n".join(lines)


def diagnose(
    stream: EventStream,
    stemmer: Optional[Stemmer] = None,
    rate_bin_seconds: Optional[float] = None,
    prune_threshold: float = 0.05,
    configs: Iterable["CompiledConfig"] = (),
    igp: Optional["IGPTopology"] = None,
) -> IncidentReport:
    """Run the full pipeline over *stream*.

    *rate_bin_seconds* defaults to 1/50th of the stream's timerange
    (min 1 s), which gives the rate plot useful resolution at any scale.

    Supplying *configs* (compiled router configurations) and/or *igp*
    (the site's IGP topology with its LSA stream) activates the Section
    III-D integrations: each component is correlated against configured
    policy and against interior routing events, automating the
    drill-downs the paper performed manually.
    """
    if stemmer is None:
        stemmer = Stemmer()
    if rate_bin_seconds is None:
        rate_bin_seconds = max(1.0, stream.timerange / 50)
    rates = bin_events(stream, rate_bin_seconds)
    stemming = stemmer.decompose(stream)
    config_list = list(configs)
    policy_notes = []
    igp_notes = []
    for component in stemming.components[:4]:
        if config_list:
            from repro.integrate.policy import correlate_policies

            policy_notes.append(correlate_policies(component, config_list))
        if igp is not None:
            from repro.integrate.igp import correlate_igp

            igp_notes.append(correlate_igp(component, igp))
    picture = ""
    top = stemming.strongest
    if top is not None:
        tamp = IncrementalTamp("incident")
        # Announcements only: the picture shows where the component's
        # routes went, not the transient withdrawals.
        for event in top.events:
            if not event.is_withdrawal:
                tamp.apply(event)
        if tamp.graph.edge_count() == 0:
            # Pure-withdrawal component: show what was lost instead.
            for event in top.events:
                tamp.apply(
                    type(event)(
                        event.timestamp,
                        event.kind,
                        event.peer,
                        event.prefix,
                        event.attributes,
                    )
                    if not event.is_withdrawal
                    else _as_announcement(event)
                )
        picture = render_ascii(prune_flat(tamp.graph, prune_threshold))
    return IncidentReport(
        stream=stream,
        rates=rates,
        stemming=stemming,
        picture=picture,
        policy_notes=tuple(policy_notes),
        igp_notes=tuple(igp_notes),
    )


def _as_announcement(event):
    from repro.collector.events import BGPEvent, EventKind

    return BGPEvent(
        timestamp=event.timestamp,
        kind=EventKind.ANNOUNCE,
        peer=event.peer,
        prefix=event.prefix,
        attributes=event.attributes,
    )
