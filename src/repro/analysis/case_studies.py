"""Turn-key case studies: the Section IV incidents end to end.

Each ``run_*`` function builds the workload, injects the incident, runs
the appropriate algorithm(s), and returns a :class:`CaseStudyResult`
with the paper's published observation next to ours. Examples and the
figure benchmarks both drive these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.prefix import parse_address
from repro.simulator import scenarios
from repro.simulator.workloads import (
    AS_CALREN,
    AS_KDDI,
    AS_LOS_NETTOS,
    AS_QWEST,
    COMM_CENIC_LAAP,
    MED_PREFIX,
    RL_66,
    RL_70,
    BerkeleySite,
    IspAnonSite,
)
from repro.stemming.stemmer import Stemmer
from repro.tamp.animate import EdgeState, animate_stream
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat, prune_hierarchical
from repro.tamp.tree import TampTree


@dataclass
class CaseStudyResult:
    """What the paper reported vs. what this run measured."""

    name: str
    paper_claim: str
    measured: dict = field(default_factory=dict)
    detected: bool = False

    def row(self) -> str:
        facts = ", ".join(f"{k}={v}" for k, v in self.measured.items())
        status = "DETECTED" if self.detected else "not detected"
        return f"[{status}] {self.name}: {facts}"


def site_tamp_graph(site: BerkeleySite, route_filter=None) -> TampGraph:
    """Merge per-peer TAMP trees from the collector's tables."""
    from repro.net.prefix import format_address

    trees = []
    for peer in site.rex.peers():
        routes = list(site.rex.rib(peer).routes())
        if route_filter is not None:
            routes = [r for r in routes if route_filter(r)]
        trees.append(
            TampTree.from_routes(
                format_address(peer), routes, include_prefix_leaves=False
            )
        )
    return TampGraph.merge(trees, site_name="Berkeley")


def run_load_balance_check(
    site: Optional[BerkeleySite] = None,
) -> CaseStudyResult:
    """Section IV-A: the intended 50/50 rate-limiter split is 78/5."""
    if site is None:
        site = BerkeleySite()
    graph = site_tamp_graph(site)
    total = graph.total_prefixes()
    share66 = graph.weight(("nh", parse_address(RL_66)), ("as", AS_CALREN)) / total
    share70 = graph.weight(("nh", parse_address(RL_70)), ("as", AS_CALREN)) / total
    skewed = share66 > 2 * share70
    return CaseStudyResult(
        name="load-balancing-unbalanced",
        paper_claim="128.32.0.66 carried 78% of prefixes, 128.32.0.70 only 5%",
        measured={
            "share_66": round(share66, 3),
            "share_70": round(share70, 3),
        },
        detected=skewed,
    )


def run_backdoor_routes(
    site: Optional[BerkeleySite] = None,
) -> CaseStudyResult:
    """Section IV-B: hierarchical pruning exposes two backdoor routes."""
    if site is None:
        site = BerkeleySite()
    incident = scenarios.backdoor_routes(site)
    graph = site_tamp_graph(site)
    nh = ("nh", parse_address(scenarios.NH_BACKDOOR))
    flat_pruned = prune_flat(graph)
    hierarchical = prune_hierarchical(graph, keep_depth=4)
    return CaseStudyResult(
        name="backdoor-routes",
        paper_claim="two backdoor routes to AT&T via 169.229.0.157, "
        "invisible at the default threshold",
        measured={
            "backdoor_prefixes": len(incident.affected_prefixes),
            "visible_flat": nh in flat_pruned.nodes(),
            "visible_hierarchical": nh in hierarchical.nodes(),
        },
        detected=(
            nh not in flat_pruned.nodes() and nh in hierarchical.nodes()
        ),
    )


def run_community_mistag(
    site: Optional[BerkeleySite] = None,
) -> CaseStudyResult:
    """Section IV-C: 32% of 2152:65297 routes from Los Nettos, 68% KDDI."""
    if site is None:
        site = BerkeleySite()
    graph = site_tamp_graph(
        site,
        route_filter=lambda r: COMM_CENIC_LAAP in r.attributes.communities,
    )
    total = graph.total_prefixes()
    ln = graph.weight(("as", 2152), ("as", AS_LOS_NETTOS)) / total
    kddi = graph.weight(("as", 2152), ("as", AS_KDDI)) / total
    return CaseStudyResult(
        name="community-mistag",
        paper_claim="only 32% of tagged prefixes from Los Nettos; "
        "68% mis-tagged from KDDI",
        measured={"los_nettos": round(ln, 2), "kddi": round(kddi, 2)},
        detected=kddi > ln,
    )


def run_route_leak(
    site: Optional[BerkeleySite] = None, cycles: int = 2
) -> CaseStudyResult:
    """Section IV-D: leaked routes move prefixes to a 6-AS-hop path and
    silently stop 128.32.1.3's announcements."""
    if site is None:
        site = BerkeleySite()
    baseline = list(site.rex.all_routes())
    incident = scenarios.route_leak(site, cycles=cycles)
    component = Stemmer().strongest_component(incident.stream)
    animation = animate_stream(
        incident.stream, baseline=baseline, play_duration=2.0, fps=5
    )
    qwest_edge = (("as", AS_CALREN), ("as", AS_QWEST))
    detected = (
        component is not None
        and component.prefixes <= frozenset(incident.affected_prefixes)
        and EdgeState.LOSING in animation.states_seen(qwest_edge)
    )
    return CaseStudyResult(
        name="route-leak",
        paper_claim="30,000 prefixes moved from CalREN-QWest to a 6-AS-hop "
        "leaked path, twice; 128.32.1.3 stopped announcing them",
        measured={
            "moved_prefixes": len(incident.affected_prefixes),
            "events": len(incident.stream),
            "cycles": cycles,
            "component_prefixes": (
                len(component.prefixes) if component else 0
            ),
        },
        detected=detected,
    )


def run_customer_flap(
    isp: Optional[IspAnonSite] = None,
    flap_count: int = 10,
) -> CaseStudyResult:
    """Section IV-E: low-grade continuous flapping found by Stemming."""
    if isp is None:
        isp = IspAnonSite(n_reflectors=4, n_prefixes=200)
    incident = scenarios.customer_flap(isp, flap_count=flap_count)
    component = Stemmer().strongest_component(incident.stream)
    detected = (
        component is not None
        and set(component.prefixes) == incident.affected_prefixes
    )
    return CaseStudyResult(
        name="continuous-customer-flap",
        paper_claim="direct session dropped ~1/minute for 1.5 months; "
        "~200 events and ~20 s convergence per flap; rate too low for "
        "threshold detectors",
        measured={
            "flaps": flap_count,
            "events": len(incident.stream),
            "events_per_flap": round(len(incident.stream) / flap_count, 1),
        },
        detected=detected,
    )


def run_full_table_hijack(
    isp: Optional[IspAnonSite] = None,
) -> CaseStudyResult:
    """Section I war story: the full table announced with 1-hop paths."""
    if isp is None:
        isp = IspAnonSite(n_reflectors=4, n_prefixes=200)
    incident = scenarios.full_table_hijack(isp)
    component = Stemmer().strongest_component(incident.stream)
    hijacker = incident.details["hijacker_as"]
    values = (
        {v for _, v in component.subsequence} if component else set()
    )
    return CaseStudyResult(
        name="full-table-hijack",
        paper_claim="a small AS announced the full table with one-hop "
        "paths; most ASes preferred the short paths; the Internet went "
        "down with the hijacker",
        measured={
            "hijacked_prefixes": len(incident.affected_prefixes),
            "events": len(incident.stream),
        },
        detected=component is not None and hijacker in values,
    )


def run_max_prefix_leak(
    site: Optional[BerkeleySite] = None,
) -> CaseStudyResult:
    """Section I war story: a leak trips max-prefix, severing the peer."""
    if site is None:
        site = BerkeleySite()
    incident = scenarios.max_prefix_leak(site)
    return CaseStudyResult(
        name="max-prefix-leak",
        paper_claim="a leaked table tripped the peer's max-prefix limit; "
        "the session closed, severing all communication",
        measured={
            "limit": incident.details["limit"],
            "leaked": incident.details["leaked"],
            "legitimate_lost": incident.details["legitimate_lost"],
        },
        detected=incident.details["session_down"],
    )


def run_all(
    site: Optional[BerkeleySite] = None,
    isp: Optional[IspAnonSite] = None,
) -> list[CaseStudyResult]:
    """Every case study on fresh (or supplied) workloads, in paper order."""
    berkeley = site if site is not None else BerkeleySite()
    results = [
        run_load_balance_check(berkeley),
        run_backdoor_routes(berkeley),
        run_community_mistag(berkeley),
        run_route_leak(berkeley),
        run_customer_flap(isp),
        run_med_oscillation(),
        run_full_table_hijack(),
        run_max_prefix_leak(BerkeleySite(n_prefixes=150)),
    ]
    return results


def run_med_oscillation(flap_count: int = 50) -> CaseStudyResult:
    """Section IV-F: the persistent fast MED oscillation on 4.5.0.0/16."""
    incident = scenarios.med_oscillation(flap_count=flap_count)
    component = Stemmer().strongest_component(incident.stream)
    # The paper's claim: strongest component even at short timescales.
    short = incident.stream.between(10.0, 10.5)
    short_component = Stemmer().strongest_component(short)
    detected = (
        component is not None
        and component.prefixes == frozenset({MED_PREFIX})
        and short_component is not None
        and short_component.prefixes == frozenset({MED_PREFIX})
    )
    return CaseStudyResult(
        name="med-oscillation",
        paper_claim="one prefix generated 95% of IBGP traffic for 5+ days; "
        "strongest component even over a few minutes",
        measured={
            "events": len(incident.stream),
            "prefixes": len(incident.stream.prefixes()),
        },
        detected=detected,
    )
