"""AST node types for the mini IOS configuration language.

The parser produces these; the compiler turns them into
:mod:`repro.bgp.policy` objects. Keeping an explicit AST (rather than
compiling during the parse) lets the Section III-D.1 correlation engine
point at the *configuration line* responsible for a routing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.attributes import Community
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class PrefixListLine:
    """One ``ip prefix-list`` statement."""

    name: str
    sequence: int
    permit: bool
    prefix: Prefix
    ge: Optional[int] = None
    le: Optional[int] = None
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class CommunityListLine:
    """One ``ip community-list`` statement."""

    name: str
    permit: bool
    communities: tuple[Community, ...]
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class AsPathListLine:
    """One ``ip as-path access-list`` statement (IOS-style regex)."""

    name: str
    permit: bool
    regex: str
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class MatchDirective:
    """A ``match`` line inside a route-map entry.

    *kind* is one of ``community``, ``prefix-list``, ``as-path-contains``,
    ``local-origin``; *argument* is the referenced name/ASN (empty for
    ``local-origin``).
    """

    kind: str
    argument: str = ""
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class SetDirective:
    """A ``set`` line inside a route-map entry.

    *kind* is one of ``local-preference``, ``metric``, ``community``,
    ``comm-list-delete``, ``prepend``, ``next-hop``; *arguments* the raw
    tokens after the keyword.
    """

    kind: str
    arguments: tuple[str, ...] = ()
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class RouteMapEntry:
    """One ``route-map NAME permit/deny SEQ`` block."""

    name: str
    permit: bool
    sequence: int
    matches: tuple[MatchDirective, ...] = ()
    sets: tuple[SetDirective, ...] = ()
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class NeighborDirective:
    """One ``neighbor`` line inside ``router bgp``."""

    address: int
    kind: str  # remote-as | route-map-in | route-map-out | maximum-prefix
    #          | route-reflector-client | next-hop-self
    argument: str = ""
    line_number: int = 0


@dataclass(frozen=True, slots=True)
class BgpSection:
    """The ``router bgp ASN`` block."""

    asn: int
    router_id: Optional[int] = None
    cluster_id: Optional[int] = None
    always_compare_med: bool = False
    deterministic_med: bool = False
    med_missing_as_worst: bool = False
    networks: tuple[Prefix, ...] = ()
    neighbors: tuple[NeighborDirective, ...] = ()
    line_number: int = 0


@dataclass(slots=True)
class ConfigFile:
    """A whole parsed configuration."""

    hostname: str = ""
    prefix_lists: list[PrefixListLine] = field(default_factory=list)
    community_lists: list[CommunityListLine] = field(default_factory=list)
    as_path_lists: list[AsPathListLine] = field(default_factory=list)
    route_maps: list[RouteMapEntry] = field(default_factory=list)
    bgp: Optional[BgpSection] = None
