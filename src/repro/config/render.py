"""Render a parsed configuration back to text.

The inverse of :func:`repro.config.parser.parse_config`: useful for
emitting the configurations the workload builders construct, for
normalizing operator input, and for round-trip testing the parser
(``render(parse(render(parse(t)))) == render(parse(t))``).
"""

from __future__ import annotations

from repro.config.ast_nodes import (
    AsPathListLine,
    BgpSection,
    CommunityListLine,
    ConfigFile,
    MatchDirective,
    NeighborDirective,
    PrefixListLine,
    RouteMapEntry,
    SetDirective,
)
from repro.net.prefix import format_address


def render_config(config: ConfigFile) -> str:
    """Serialize *config* in the dialect :func:`parse_config` accepts."""
    blocks: list[str] = []
    if config.hostname:
        blocks.append(f"hostname {config.hostname}")
    for line in config.prefix_lists:
        blocks.append(_prefix_list(line))
    for line in config.community_lists:
        blocks.append(_community_list(line))
    for line in config.as_path_lists:
        blocks.append(_as_path_list(line))
    for entry in config.route_maps:
        blocks.append(_route_map(entry))
    if config.bgp is not None:
        blocks.append(_bgp(config.bgp))
    return "\n".join(blocks) + "\n"


def _prefix_list(line: PrefixListLine) -> str:
    parts = [f"ip prefix-list {line.name}"]
    if line.sequence:
        parts.append(f"seq {line.sequence}")
    parts.append("permit" if line.permit else "deny")
    parts.append(str(line.prefix))
    if line.ge is not None:
        parts.append(f"ge {line.ge}")
    if line.le is not None:
        parts.append(f"le {line.le}")
    return " ".join(parts)


def _community_list(line: CommunityListLine) -> str:
    action = "permit" if line.permit else "deny"
    tags = " ".join(str(c) for c in line.communities)
    return f"ip community-list standard {line.name} {action} {tags}"


def _as_path_list(line: AsPathListLine) -> str:
    action = "permit" if line.permit else "deny"
    return f"ip as-path access-list {line.name} {action} {line.regex}"


def _route_map(entry: RouteMapEntry) -> str:
    action = "permit" if entry.permit else "deny"
    lines = [f"route-map {entry.name} {action} {entry.sequence}"]
    for match in entry.matches:
        lines.append(f" {_match(match)}")
    for directive in entry.sets:
        lines.append(f" {_set(directive)}")
    return "\n".join(lines)


def _match(match: MatchDirective) -> str:
    if match.kind == "community":
        return f"match community {match.argument}"
    if match.kind == "prefix-list":
        return f"match ip address prefix-list {match.argument}"
    if match.kind == "as-path-contains":
        return f"match as-path contains {match.argument}"
    if match.kind == "as-path-list":
        return f"match as-path {match.argument}"
    if match.kind == "local-origin":
        return "match local-origin"
    raise ValueError(f"unknown match kind {match.kind!r}")


def _set(directive: SetDirective) -> str:
    kind, args = directive.kind, directive.arguments
    if kind == "local-preference":
        return f"set local-preference {args[0]}"
    if kind == "metric":
        return f"set metric {args[0]}"
    if kind == "community":
        return "set community " + " ".join(args)
    if kind == "comm-list-delete":
        return f"set comm-list {args[0]} delete"
    if kind == "prepend":
        return "set as-path prepend " + " ".join(args)
    if kind == "next-hop":
        return f"set ip next-hop {args[0]}"
    raise ValueError(f"unknown set kind {kind!r}")


def _bgp(section: BgpSection) -> str:
    lines = [f"router bgp {section.asn}"]
    if section.router_id is not None:
        lines.append(f" bgp router-id {format_address(section.router_id)}")
    if section.cluster_id is not None:
        lines.append(f" bgp cluster-id {format_address(section.cluster_id)}")
    if section.always_compare_med:
        lines.append(" bgp always-compare-med")
    if section.deterministic_med:
        lines.append(" bgp deterministic-med")
    if section.med_missing_as_worst:
        lines.append(" bgp bestpath med missing-as-worst")
    for network in section.networks:
        lines.append(f" network {network}")
    for neighbor in section.neighbors:
        lines.append(f" {_neighbor(neighbor)}")
    return "\n".join(lines)


def _neighbor(directive: NeighborDirective) -> str:
    address = format_address(directive.address)
    if directive.kind == "remote-as":
        return f"neighbor {address} remote-as {directive.argument}"
    if directive.kind == "route-map-in":
        return f"neighbor {address} route-map {directive.argument} in"
    if directive.kind == "route-map-out":
        return f"neighbor {address} route-map {directive.argument} out"
    if directive.kind == "maximum-prefix":
        return f"neighbor {address} maximum-prefix {directive.argument}"
    if directive.kind == "route-reflector-client":
        return f"neighbor {address} route-reflector-client"
    if directive.kind == "next-hop-self":
        return f"neighbor {address} next-hop-self"
    raise ValueError(f"unknown neighbor kind {directive.kind!r}")
