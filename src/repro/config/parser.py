"""Parser for the mini IOS configuration dialect.

IOS configs are line-oriented: top-level statements start in column zero,
block bodies are indented one space, ``!`` introduces comments and section
separators. The parser is a single forward pass with one line of
lookbehind state (the open block), which matches how the real language
works and keeps error messages precise (every error carries its line
number).
"""

from __future__ import annotations

from typing import Optional

from repro.config.ast_nodes import (
    BgpSection,
    CommunityListLine,
    ConfigFile,
    MatchDirective,
    NeighborDirective,
    PrefixListLine,
    RouteMapEntry,
    SetDirective,
)
from repro.net.attributes import Community
from repro.net.prefix import Prefix, PrefixError, parse_address


class ConfigParseError(ValueError):
    """A malformed configuration line; carries the 1-based line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def parse_config(text: str) -> ConfigFile:
    """Parse configuration *text* into a :class:`ConfigFile` AST."""
    return _Parser(text).parse()


class _Parser:
    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.config = ConfigFile()
        # Open-block state: exactly one of these is non-None at a time.
        self._route_map: Optional[dict] = None
        self._bgp: Optional[dict] = None

    def parse(self) -> ConfigFile:
        for index, raw in enumerate(self.lines, start=1):
            line = raw.rstrip()
            stripped = line.strip()
            if not stripped or stripped.startswith("!"):
                self._close_blocks()
                continue
            indented = line[0].isspace()
            if indented:
                self._parse_block_line(index, stripped)
            else:
                self._close_blocks()
                self._parse_top_level(index, stripped)
        self._close_blocks()
        return self.config

    # ------------------------------------------------------------------
    # Top-level statements
    # ------------------------------------------------------------------

    def _parse_top_level(self, index: int, line: str) -> None:
        tokens = line.split()
        head = tokens[0]
        if head == "hostname":
            self._expect(index, len(tokens) == 2, "hostname takes one name")
            self.config.hostname = tokens[1]
        elif head == "ip" and len(tokens) > 1 and tokens[1] == "prefix-list":
            self.config.prefix_lists.append(
                self._parse_prefix_list(index, tokens[2:])
            )
        elif head == "ip" and len(tokens) > 1 and tokens[1] == "community-list":
            self.config.community_lists.append(
                self._parse_community_list(index, tokens[2:])
            )
        elif head == "ip" and tokens[1:3] == ["as-path", "access-list"]:
            self.config.as_path_lists.append(
                self._parse_as_path_list(index, tokens[3:])
            )
        elif head == "route-map":
            self._open_route_map(index, tokens[1:])
        elif head == "router" and tokens[1:2] == ["bgp"]:
            self._open_bgp(index, tokens[2:])
        else:
            raise ConfigParseError(index, f"unknown statement {head!r}")

    def _parse_prefix_list(self, index: int, tokens: list[str]) -> PrefixListLine:
        self._expect(index, len(tokens) >= 3, "truncated prefix-list")
        name = tokens[0]
        rest = tokens[1:]
        sequence = 0
        if rest[0] == "seq":
            self._expect(index, len(rest) >= 3, "seq needs a number")
            self._expect(index, rest[1].isdigit(), "seq must be numeric")
            sequence = int(rest[1])
            rest = rest[2:]
        self._expect(
            index,
            rest[0] in ("permit", "deny"),
            "prefix-list needs permit or deny",
        )
        permit = rest[0] == "permit"
        self._expect(index, len(rest) >= 2, "prefix-list needs a prefix")
        prefix = self._parse_prefix(index, rest[1])
        ge = le = None
        tail = rest[2:]
        while tail:
            self._expect(
                index,
                len(tail) >= 2 and tail[0] in ("ge", "le") and tail[1].isdigit(),
                f"bad prefix-list suffix {' '.join(tail)!r}",
            )
            if tail[0] == "ge":
                ge = int(tail[1])
            else:
                le = int(tail[1])
            tail = tail[2:]
        return PrefixListLine(
            name=name,
            sequence=sequence,
            permit=permit,
            prefix=prefix,
            ge=ge,
            le=le,
            line_number=index,
        )

    def _parse_community_list(
        self, index: int, tokens: list[str]
    ) -> CommunityListLine:
        if tokens and tokens[0] in ("standard", "expanded"):
            tokens = tokens[1:]
        self._expect(index, len(tokens) >= 3, "truncated community-list")
        name = tokens[0]
        self._expect(
            index,
            tokens[1] in ("permit", "deny"),
            "community-list needs permit or deny",
        )
        permit = tokens[1] == "permit"
        communities = tuple(
            self._parse_community(index, tag) for tag in tokens[2:]
        )
        return CommunityListLine(
            name=name, permit=permit, communities=communities, line_number=index
        )

    def _parse_as_path_list(self, index: int, tokens: list[str]):
        from repro.config.ast_nodes import AsPathListLine

        self._expect(
            index,
            len(tokens) >= 3 and tokens[1] in ("permit", "deny"),
            "ip as-path access-list NAME permit|deny REGEX",
        )
        name = tokens[0]
        permit = tokens[1] == "permit"
        regex = " ".join(tokens[2:])
        # Validate the regex eagerly so the error names the config line.
        from repro.bgp.policy import compile_as_path_regex
        from repro.bgp.errors import PolicyError

        try:
            compile_as_path_regex(regex)
        except PolicyError as exc:
            raise ConfigParseError(index, str(exc)) from exc
        return AsPathListLine(
            name=name, permit=permit, regex=regex, line_number=index
        )

    def _open_route_map(self, index: int, tokens: list[str]) -> None:
        self._expect(
            index,
            len(tokens) == 3
            and tokens[1] in ("permit", "deny")
            and tokens[2].isdigit(),
            "route-map needs: NAME permit|deny SEQ",
        )
        self._route_map = {
            "name": tokens[0],
            "permit": tokens[1] == "permit",
            "sequence": int(tokens[2]),
            "matches": [],
            "sets": [],
            "line_number": index,
        }

    def _open_bgp(self, index: int, tokens: list[str]) -> None:
        self._expect(
            index,
            len(tokens) == 1 and tokens[0].isdigit(),
            "router bgp needs an AS number",
        )
        self._expect(
            index, self.config.bgp is None, "duplicate router bgp section"
        )
        self._bgp = {
            "asn": int(tokens[0]),
            "router_id": None,
            "cluster_id": None,
            "always_compare_med": False,
            "deterministic_med": False,
            "med_missing_as_worst": False,
            "networks": [],
            "neighbors": [],
            "line_number": index,
        }

    # ------------------------------------------------------------------
    # Block bodies
    # ------------------------------------------------------------------

    def _parse_block_line(self, index: int, line: str) -> None:
        if self._route_map is not None:
            self._parse_route_map_line(index, line)
        elif self._bgp is not None:
            self._parse_bgp_line(index, line)
        else:
            raise ConfigParseError(index, "indented line outside any block")

    def _parse_route_map_line(self, index: int, line: str) -> None:
        tokens = line.split()
        assert self._route_map is not None
        if tokens[0] == "match":
            self._route_map["matches"].append(
                self._parse_match(index, tokens[1:])
            )
        elif tokens[0] == "set":
            self._route_map["sets"].append(self._parse_set(index, tokens[1:]))
        else:
            raise ConfigParseError(
                index, f"unknown route-map directive {tokens[0]!r}"
            )

    def _parse_match(self, index: int, tokens: list[str]) -> MatchDirective:
        self._expect(index, bool(tokens), "empty match")
        if tokens[0] == "community":
            self._expect(index, len(tokens) == 2, "match community NAME")
            return MatchDirective("community", tokens[1], index)
        if tokens[:3] == ["ip", "address", "prefix-list"]:
            self._expect(
                index, len(tokens) == 4, "match ip address prefix-list NAME"
            )
            return MatchDirective("prefix-list", tokens[3], index)
        if tokens[:2] == ["as-path", "contains"]:
            self._expect(
                index,
                len(tokens) == 3 and tokens[2].isdigit(),
                "match as-path contains ASN",
            )
            return MatchDirective("as-path-contains", tokens[2], index)
        if tokens[0] == "as-path":
            self._expect(index, len(tokens) == 2, "match as-path LIST-NAME")
            return MatchDirective("as-path-list", tokens[1], index)
        if tokens == ["local-origin"]:
            return MatchDirective("local-origin", "", index)
        raise ConfigParseError(index, f"unknown match {' '.join(tokens)!r}")

    def _parse_set(self, index: int, tokens: list[str]) -> SetDirective:
        self._expect(index, bool(tokens), "empty set")
        if tokens[0] == "local-preference":
            self._expect(
                index,
                len(tokens) == 2 and tokens[1].isdigit(),
                "set local-preference N",
            )
            return SetDirective("local-preference", (tokens[1],), index)
        if tokens[0] == "metric":
            self._expect(
                index,
                len(tokens) == 2 and tokens[1].isdigit(),
                "set metric N",
            )
            return SetDirective("metric", (tokens[1],), index)
        if tokens[0] == "community":
            self._expect(index, len(tokens) >= 2, "set community A:B")
            tags = tokens[1:]
            additive = tags[-1] == "additive"
            if additive:
                tags = tags[:-1]
            self._expect(index, bool(tags), "set community needs a tag")
            for tag in tags:
                self._parse_community(index, tag)
            return SetDirective(
                "community",
                tuple(tags) + (("additive",) if additive else ()),
                index,
            )
        if tokens[0] == "comm-list":
            self._expect(
                index,
                len(tokens) == 3 and tokens[2] == "delete",
                "set comm-list NAME delete",
            )
            return SetDirective("comm-list-delete", (tokens[1],), index)
        if tokens[:2] == ["as-path", "prepend"]:
            self._expect(
                index,
                len(tokens) >= 3 and all(t.isdigit() for t in tokens[2:]),
                "set as-path prepend ASN...",
            )
            return SetDirective("prepend", tuple(tokens[2:]), index)
        if tokens[:2] == ["ip", "next-hop"]:
            self._expect(index, len(tokens) == 3, "set ip next-hop A.B.C.D")
            self._parse_address(index, tokens[2])
            return SetDirective("next-hop", (tokens[2],), index)
        raise ConfigParseError(index, f"unknown set {' '.join(tokens)!r}")

    def _parse_bgp_line(self, index: int, line: str) -> None:
        tokens = line.split()
        assert self._bgp is not None
        if tokens[:2] == ["bgp", "router-id"]:
            self._expect(index, len(tokens) == 3, "bgp router-id A.B.C.D")
            self._bgp["router_id"] = self._parse_address(index, tokens[2])
        elif tokens[:2] == ["bgp", "cluster-id"]:
            self._expect(index, len(tokens) == 3, "bgp cluster-id A.B.C.D")
            self._bgp["cluster_id"] = self._parse_address(index, tokens[2])
        elif tokens == ["bgp", "always-compare-med"]:
            self._bgp["always_compare_med"] = True
        elif tokens == ["bgp", "deterministic-med"]:
            self._bgp["deterministic_med"] = True
        elif tokens == ["bgp", "bestpath", "med", "missing-as-worst"]:
            self._bgp["med_missing_as_worst"] = True
        elif tokens[0] == "network":
            self._expect(index, len(tokens) == 2, "network A.B.C.D/L")
            self._bgp["networks"].append(self._parse_prefix(index, tokens[1]))
        elif tokens[0] == "neighbor":
            self._bgp["neighbors"].append(
                self._parse_neighbor(index, tokens[1:])
            )
        else:
            raise ConfigParseError(
                index, f"unknown router bgp directive {' '.join(tokens)!r}"
            )

    def _parse_neighbor(self, index: int, tokens: list[str]) -> NeighborDirective:
        self._expect(index, len(tokens) >= 2, "truncated neighbor line")
        address = self._parse_address(index, tokens[0])
        directive = tokens[1]
        if directive == "remote-as":
            self._expect(
                index,
                len(tokens) == 3 and tokens[2].isdigit(),
                "neighbor A.B.C.D remote-as ASN",
            )
            return NeighborDirective(address, "remote-as", tokens[2], index)
        if directive == "route-map":
            self._expect(
                index,
                len(tokens) == 4 and tokens[3] in ("in", "out"),
                "neighbor A.B.C.D route-map NAME in|out",
            )
            kind = "route-map-in" if tokens[3] == "in" else "route-map-out"
            return NeighborDirective(address, kind, tokens[2], index)
        if directive == "maximum-prefix":
            self._expect(
                index,
                len(tokens) == 3 and tokens[2].isdigit(),
                "neighbor A.B.C.D maximum-prefix N",
            )
            return NeighborDirective(
                address, "maximum-prefix", tokens[2], index
            )
        if directive == "route-reflector-client":
            self._expect(index, len(tokens) == 2, "trailing tokens")
            return NeighborDirective(
                address, "route-reflector-client", "", index
            )
        if directive == "next-hop-self":
            self._expect(index, len(tokens) == 2, "trailing tokens")
            return NeighborDirective(address, "next-hop-self", "", index)
        raise ConfigParseError(
            index, f"unknown neighbor directive {directive!r}"
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _close_blocks(self) -> None:
        if self._route_map is not None:
            data = self._route_map
            self.config.route_maps.append(
                RouteMapEntry(
                    name=data["name"],
                    permit=data["permit"],
                    sequence=data["sequence"],
                    matches=tuple(data["matches"]),
                    sets=tuple(data["sets"]),
                    line_number=data["line_number"],
                )
            )
            self._route_map = None
        if self._bgp is not None:
            data = self._bgp
            self.config.bgp = BgpSection(
                asn=data["asn"],
                router_id=data["router_id"],
                cluster_id=data["cluster_id"],
                always_compare_med=data["always_compare_med"],
                deterministic_med=data["deterministic_med"],
                med_missing_as_worst=data["med_missing_as_worst"],
                networks=tuple(data["networks"]),
                neighbors=tuple(data["neighbors"]),
                line_number=data["line_number"],
            )
            self._bgp = None

    def _expect(self, index: int, condition: bool, message: str) -> None:
        if not condition:
            raise ConfigParseError(index, message)

    def _parse_prefix(self, index: int, text: str) -> Prefix:
        try:
            return Prefix.parse(text)
        except PrefixError as exc:
            raise ConfigParseError(index, str(exc)) from exc

    def _parse_address(self, index: int, text: str) -> int:
        try:
            return parse_address(text)
        except PrefixError as exc:
            raise ConfigParseError(index, str(exc)) from exc

    def _parse_community(self, index: int, text: str) -> Community:
        try:
            return Community.parse(text)
        except ValueError as exc:
            raise ConfigParseError(index, str(exc)) from exc
