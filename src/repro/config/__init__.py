"""Router configuration files: a mini IOS dialect, parser and compiler.

Section III-D.1 of the paper integrates router configuration files into
anomaly diagnosis: routing policies live in configs, are invisible in BGP
events, and explain incidents like Berkeley's LOCAL_PREF 80/70 split keyed
on CalREN community tags. This package parses an IOS-like configuration
language and compiles it into the policy objects of :mod:`repro.bgp`, so
Stemming components can be correlated against the *intended* policy
(:mod:`repro.integrate.policy`).

Supported statements::

    ip prefix-list NAME [seq N] (permit|deny) A.B.C.D/L [ge N] [le N]
    ip community-list [standard] NAME (permit|deny) ASN:VAL...
    route-map NAME (permit|deny) SEQ
      match community NAME
      match ip address prefix-list NAME
      match as-path contains ASN
      match local-origin
      set local-preference N
      set metric N
      set community A:B [additive]
      set comm-list NAME delete
      set as-path prepend ASN [ASN ...]
      set ip next-hop A.B.C.D
    router bgp ASN
      bgp router-id A.B.C.D
      bgp cluster-id A.B.C.D
      bgp always-compare-med
      bgp deterministic-med
      bgp bestpath med missing-as-worst
      neighbor A.B.C.D remote-as ASN
      neighbor A.B.C.D route-map NAME (in|out)
      neighbor A.B.C.D maximum-prefix N
      neighbor A.B.C.D route-reflector-client
      neighbor A.B.C.D next-hop-self
      network A.B.C.D/L
"""

from repro.config.parser import ConfigParseError, parse_config
from repro.config.compiler import CompiledConfig, compile_config
from repro.config.render import render_config
from repro.config.ast_nodes import (
    BgpSection,
    CommunityListLine,
    ConfigFile,
    NeighborDirective,
    PrefixListLine,
    RouteMapEntry,
)

__all__ = [
    "parse_config",
    "compile_config",
    "render_config",
    "ConfigParseError",
    "CompiledConfig",
    "ConfigFile",
    "PrefixListLine",
    "CommunityListLine",
    "RouteMapEntry",
    "BgpSection",
    "NeighborDirective",
]
