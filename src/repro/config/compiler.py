"""Compile a parsed configuration into live policy objects.

The compiler resolves name references (route-maps pointing at community-
and prefix-lists), checks them, and emits :mod:`repro.bgp.policy` objects
plus the per-neighbor settings a :class:`repro.bgp.router.BGPRouter`
needs. It also keeps a reverse index from each compiled policy effect back
to its source line, which the Section III-D.1 correlation uses to answer
"which configuration line caused this behaviour?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bgp.decision import DecisionProcess
from repro.bgp.errors import PolicyError
from repro.bgp.policy import (
    AddCommunity,
    MatchASInPath,
    MatchLocallyOriginated,
    Policy,
    PolicyContext,
    PrefixListEntry,
    PrependASPath,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMED,
    SetNexthop,
    compile_as_path_regex,
)
from repro.config.ast_nodes import (
    ConfigFile,
    MatchDirective,
    RouteMapEntry,
    SetDirective,
)
from repro.net.attributes import Community, PathAttributes
from repro.net.prefix import Prefix, parse_address


@dataclass(frozen=True, slots=True)
class CompiledPrefixList:
    """An ordered permit/deny prefix list (first match decides).

    Implements the :class:`repro.bgp.policy.MatchCondition` protocol: the
    route "matches" when the first hitting line is a permit. No hit means
    no match (IOS's implicit deny).
    """

    name: str
    lines: tuple[tuple[bool, PrefixListEntry], ...]

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        for permit, entry in self.lines:
            if entry.matches(prefix):
                return permit
        return False


@dataclass(frozen=True, slots=True)
class CompiledCommunityList:
    """An ordered permit/deny community list (first match decides)."""

    name: str
    lines: tuple[tuple[bool, frozenset[Community]], ...]

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        for permit, communities in self.lines:
            if communities & attrs.communities:
                return permit
        return False

    def all_tags(self) -> frozenset[Community]:
        """Every community named on a permit line (for comm-list delete)."""
        tags: set[Community] = set()
        for permit, communities in self.lines:
            if permit:
                tags |= communities
        return frozenset(tags)


@dataclass(frozen=True, slots=True)
class CompiledAsPathList:
    """An ordered permit/deny as-path access-list (first match decides)."""

    name: str
    lines: tuple[tuple[bool, str], ...]  # (permit, regex)

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        rendered = str(attrs.as_path)
        for permit, regex in self.lines:
            if compile_as_path_regex(regex).search(rendered) is not None:
                return permit
        return False


@dataclass(frozen=True, slots=True)
class DeleteCommunityList:
    """The ``set comm-list NAME delete`` action."""

    communities: frozenset[Community]

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(communities=attrs.communities - self.communities)


@dataclass(frozen=True, slots=True)
class SetCommunities:
    """``set community ...`` without ``additive`` replaces all tags."""

    communities: frozenset[Community]

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(communities=self.communities)


@dataclass(slots=True)
class CompiledNeighbor:
    """Per-neighbor settings extracted from ``neighbor`` lines."""

    address: int
    remote_as: Optional[int] = None
    policy: Policy = field(default_factory=Policy)
    import_map_name: str = ""
    export_map_name: str = ""
    max_prefixes: Optional[int] = None
    is_rr_client: bool = False
    nexthop_self: bool = False


@dataclass(slots=True)
class CompiledConfig:
    """Everything a router (or a policy correlator) needs from one config."""

    hostname: str
    asn: int
    router_id: Optional[int]
    cluster_id: Optional[int]
    decision: DecisionProcess
    prefix_lists: dict[str, CompiledPrefixList]
    community_lists: dict[str, CompiledCommunityList]
    as_path_lists: dict[str, CompiledAsPathList]
    route_maps: dict[str, RouteMap]
    neighbors: dict[int, CompiledNeighbor]
    networks: tuple[Prefix, ...]
    #: route-map name → list of (sequence, source line number)
    source_lines: dict[str, list[tuple[int, int]]]

    def neighbor(self, address_text: str) -> CompiledNeighbor:
        return self.neighbors[parse_address(address_text)]


def compile_config(config: ConfigFile) -> CompiledConfig:
    """Compile *config*; raises :class:`PolicyError` on dangling names."""
    prefix_lists = _compile_prefix_lists(config)
    community_lists = _compile_community_lists(config)
    as_path_lists = _compile_as_path_lists(config)
    route_maps, source_lines = _compile_route_maps(
        config, prefix_lists, community_lists, as_path_lists
    )
    if config.bgp is None:
        raise PolicyError("configuration has no router bgp section")
    neighbors = _compile_neighbors(config, route_maps)
    decision = DecisionProcess(
        compare_med_always=config.bgp.always_compare_med,
        deterministic_med=config.bgp.deterministic_med,
        med_missing_as_worst=config.bgp.med_missing_as_worst,
    )
    return CompiledConfig(
        hostname=config.hostname,
        asn=config.bgp.asn,
        router_id=config.bgp.router_id,
        cluster_id=config.bgp.cluster_id,
        decision=decision,
        prefix_lists=prefix_lists,
        community_lists=community_lists,
        as_path_lists=as_path_lists,
        route_maps=route_maps,
        neighbors=neighbors,
        networks=config.bgp.networks,
        source_lines=source_lines,
    )


def _compile_prefix_lists(config: ConfigFile) -> dict[str, CompiledPrefixList]:
    grouped: dict[str, list] = {}
    for line in config.prefix_lists:
        grouped.setdefault(line.name, []).append(line)
    compiled = {}
    for name, lines in grouped.items():
        lines.sort(key=lambda l: l.sequence)
        compiled[name] = CompiledPrefixList(
            name=name,
            lines=tuple(
                (
                    line.permit,
                    PrefixListEntry(line.prefix, ge=line.ge, le=line.le),
                )
                for line in lines
            ),
        )
    return compiled


def _compile_community_lists(
    config: ConfigFile,
) -> dict[str, CompiledCommunityList]:
    grouped: dict[str, list] = {}
    for line in config.community_lists:
        grouped.setdefault(line.name, []).append(line)
    return {
        name: CompiledCommunityList(
            name=name,
            lines=tuple(
                (line.permit, frozenset(line.communities)) for line in lines
            ),
        )
        for name, lines in grouped.items()
    }


def _compile_as_path_lists(
    config: ConfigFile,
) -> dict[str, CompiledAsPathList]:
    grouped: dict[str, list] = {}
    for line in config.as_path_lists:
        grouped.setdefault(line.name, []).append(line)
    return {
        name: CompiledAsPathList(
            name=name,
            lines=tuple((line.permit, line.regex) for line in lines),
        )
        for name, lines in grouped.items()
    }


def _compile_route_maps(
    config: ConfigFile,
    prefix_lists: dict[str, CompiledPrefixList],
    community_lists: dict[str, CompiledCommunityList],
    as_path_lists: dict[str, CompiledAsPathList],
) -> tuple[dict[str, RouteMap], dict[str, list[tuple[int, int]]]]:
    grouped: dict[str, list[RouteMapEntry]] = {}
    for entry in config.route_maps:
        grouped.setdefault(entry.name, []).append(entry)
    route_maps: dict[str, RouteMap] = {}
    source_lines: dict[str, list[tuple[int, int]]] = {}
    for name, entries in grouped.items():
        entries.sort(key=lambda e: e.sequence)
        sequences = [e.sequence for e in entries]
        if len(set(sequences)) != len(sequences):
            raise PolicyError(f"route-map {name}: duplicate sequence numbers")
        clauses = tuple(
            RouteMapClause(
                permit=entry.permit,
                matches=tuple(
                    _compile_match(
                        name, m, prefix_lists, community_lists, as_path_lists
                    )
                    for m in entry.matches
                ),
                actions=tuple(
                    _compile_set(name, s, community_lists) for s in entry.sets
                ),
            )
            for entry in entries
        )
        route_maps[name] = RouteMap(name, clauses)
        source_lines[name] = [(e.sequence, e.line_number) for e in entries]
    return route_maps, source_lines


def _compile_match(
    map_name: str,
    match: MatchDirective,
    prefix_lists: dict[str, CompiledPrefixList],
    community_lists: dict[str, CompiledCommunityList],
    as_path_lists: dict[str, CompiledAsPathList],
):
    if match.kind == "community":
        try:
            return community_lists[match.argument]
        except KeyError:
            raise PolicyError(
                f"route-map {map_name}: unknown community-list"
                f" {match.argument!r}"
            ) from None
    if match.kind == "prefix-list":
        try:
            return prefix_lists[match.argument]
        except KeyError:
            raise PolicyError(
                f"route-map {map_name}: unknown prefix-list"
                f" {match.argument!r}"
            ) from None
    if match.kind == "as-path-contains":
        return MatchASInPath(int(match.argument))
    if match.kind == "as-path-list":
        try:
            return as_path_lists[match.argument]
        except KeyError:
            raise PolicyError(
                f"route-map {map_name}: unknown as-path access-list"
                f" {match.argument!r}"
            ) from None
    if match.kind == "local-origin":
        return MatchLocallyOriginated()
    raise PolicyError(f"route-map {map_name}: unknown match kind {match.kind}")


def _compile_set(
    map_name: str,
    directive: SetDirective,
    community_lists: dict[str, CompiledCommunityList],
):
    kind, args = directive.kind, directive.arguments
    if kind == "local-preference":
        return SetLocalPref(int(args[0]))
    if kind == "metric":
        return SetMED(int(args[0]))
    if kind == "community":
        additive = args[-1] == "additive"
        tags = args[:-1] if additive else args
        communities = frozenset(Community.parse(tag) for tag in tags)
        if additive:
            if len(communities) == 1:
                return AddCommunity(next(iter(communities)))
            return _AddCommunities(communities)
        return SetCommunities(communities)
    if kind == "comm-list-delete":
        try:
            clist = community_lists[args[0]]
        except KeyError:
            raise PolicyError(
                f"route-map {map_name}: unknown community-list {args[0]!r}"
            ) from None
        return DeleteCommunityList(clist.all_tags())
    if kind == "prepend":
        asns = [int(a) for a in args]
        if len(set(asns)) != 1:
            # Mixed-AS prepending is legal IOS; model it as a chain.
            return _PrependChain(tuple(asns))
        return PrependASPath(asns[0], count=len(asns))
    if kind == "next-hop":
        return SetNexthop(parse_address(args[0]))
    raise PolicyError(f"route-map {map_name}: unknown set kind {kind}")


@dataclass(frozen=True, slots=True)
class _AddCommunities:
    communities: frozenset[Community]

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(communities=attrs.communities | self.communities)


@dataclass(frozen=True, slots=True)
class _PrependChain:
    asns: tuple[int, ...]

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        path = attrs.as_path
        for asn in reversed(self.asns):
            path = path.prepend(asn)
        return attrs.replace(as_path=path)


def _compile_neighbors(
    config: ConfigFile, route_maps: dict[str, RouteMap]
) -> dict[int, CompiledNeighbor]:
    assert config.bgp is not None
    neighbors: dict[int, CompiledNeighbor] = {}
    for directive in config.bgp.neighbors:
        neighbor = neighbors.setdefault(
            directive.address, CompiledNeighbor(directive.address)
        )
        if directive.kind == "remote-as":
            neighbor.remote_as = int(directive.argument)
        elif directive.kind in ("route-map-in", "route-map-out"):
            try:
                route_map = route_maps[directive.argument]
            except KeyError:
                raise PolicyError(
                    f"neighbor {directive.address:#x}: unknown route-map"
                    f" {directive.argument!r}"
                ) from None
            if directive.kind == "route-map-in":
                neighbor.policy.import_map = route_map
                neighbor.import_map_name = directive.argument
            else:
                neighbor.policy.export_map = route_map
                neighbor.export_map_name = directive.argument
        elif directive.kind == "maximum-prefix":
            neighbor.max_prefixes = int(directive.argument)
            neighbor.policy.max_prefixes = neighbor.max_prefixes
        elif directive.kind == "route-reflector-client":
            neighbor.is_rr_client = True
        elif directive.kind == "next-hop-self":
            neighbor.nexthop_self = True
        else:
            raise PolicyError(
                f"unknown neighbor directive kind {directive.kind!r}"
            )
    for address, neighbor in neighbors.items():
        if neighbor.remote_as is None:
            raise PolicyError(
                f"neighbor {address:#x} has no remote-as configured"
            )
    return neighbors
