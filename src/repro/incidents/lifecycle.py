"""The incident state machine: the only sanctioned way to move status.

An incident's lifecycle is ``open → investigating → resolved`` with a
single legal loop back: ``resolved → open`` when the same problem
location recurs inside the manager's reopen window. Every move is made
through :func:`transition`, which validates the edge, stamps the
stream-time instant, and appends an auditable :class:`Transition` to
the record — the INC001 lint rule rejects any other write to a
``status`` field or column, because a status that changed without a
transition row is a lifecycle the operator cannot reconstruct.

Everything here is stream-time and value-deterministic: records carry
floats taken from window reports (never the wall clock), so the same
report sequence always produces byte-identical lifecycles — the
property the monitor's crash/resume contract extends to incidents.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class IncidentStatus(enum.Enum):
    """Lifecycle states, in escalation order."""

    OPEN = "open"
    INVESTIGATING = "investigating"
    RESOLVED = "resolved"


#: Legal state-machine edges. ``resolved → open`` is the reopen path;
#: there is deliberately no way back from ``investigating`` to ``open``
#: (de-escalation without resolution would erase the persistence
#: signal severity scoring depends on).
VALID_TRANSITIONS: dict[IncidentStatus, tuple[IncidentStatus, ...]] = {
    IncidentStatus.OPEN: (
        IncidentStatus.INVESTIGATING,
        IncidentStatus.RESOLVED,
    ),
    IncidentStatus.INVESTIGATING: (IncidentStatus.RESOLVED,),
    IncidentStatus.RESOLVED: (IncidentStatus.OPEN,),
}

#: Severity bands, keyed by the minimum score that earns them. The
#: scorer below tops out at 9.0, so ``critical`` is reachable only by
#: a top-ranked, wide, persistent incident.
SEVERITY_BANDS: tuple[tuple[float, str], ...] = (
    (7.0, "critical"),
    (5.0, "high"),
    (3.0, "medium"),
    (0.0, "low"),
)


class TransitionError(ValueError):
    """An illegal state-machine edge was requested."""


@dataclass(frozen=True, slots=True)
class Transition:
    """One audited status change, stamped in stream time."""

    at: float
    from_status: Optional[str]
    to_status: str
    reason: str

    def to_dict(self) -> dict[str, object]:
        return {
            "at": self.at,
            "from": self.from_status,
            "to": self.to_status,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Transition":
        return cls(
            at=float(data["at"]),
            from_status=data.get("from"),
            to_status=str(data["to"]),
            reason=str(data.get("reason", "")),
        )


#: A problem location as the manager keys it: the stem's bare values
#: rendered to strings, so AS numbers, router names and prefix tokens
#: all compare and serialize uniformly.
StemKey = tuple[str, str]


def stem_key(location: tuple[object, object]) -> StemKey:
    """Normalize a :attr:`Component.location` value pair to a key."""
    return (str(location[0]), str(location[1]))


@dataclass(slots=True)
class IncidentRecord:
    """One managed incident: identity, lifecycle, evidence.

    Mutable by design — the manager updates evidence fields every
    window — but ``status`` is written only by :func:`transition`
    (enforced statically by INC001). ``incident_id`` is assigned
    sequentially at creation and survives merges, reopens, and
    crash/resume, which is what makes the id citable in a ticket.
    """

    incident_id: int
    stem: StemKey
    #: Operator-readable rendering of the stem edge (``AS11423--AS209``);
    #: the bare-value :attr:`stem` key stays the identity.
    stem_label: str
    status: IncidentStatus
    incident_class: str
    first_seen: float
    last_seen: float
    opened_at: float
    resolved_at: Optional[float] = None
    detected_window: int = 0
    windows_observed: int = 1
    peak_strength: int = 0
    best_rank: int = 1
    event_count: int = 0
    severity: float = 0.0
    severity_band: str = "low"
    reopen_count: int = 0
    prefixes: frozenset[str] = frozenset()
    #: Distinct-but-correlated stems merged in via prefix overlap.
    related_stems: tuple[StemKey, ...] = ()
    transitions: list[Transition] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return self.status is IncidentStatus.RESOLVED

    def age(self, now: float) -> float:
        """Seconds the incident has been live, as of stream time *now*."""
        end = self.resolved_at if self.resolved else now
        return max(0.0, (now if end is None else end) - self.opened_at)

    @property
    def time_to_resolve(self) -> Optional[float]:
        """Seconds from first detection to resolution (None while live)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.opened_at

    def describe(self) -> str:
        edge = self.stem_label or f"{self.stem[0]}--{self.stem[1]}"
        extra = f" +{len(self.related_stems)} related" if self.related_stems else ""
        reopened = f", reopened {self.reopen_count}x" if self.reopen_count else ""
        return (
            f"INC-{self.incident_id:04d} [{self.status.value:13}]"
            f" {edge}{extra} — {self.severity_band}"
            f" ({self.severity:.1f}), {self.windows_observed} window(s),"
            f" {len(self.prefixes)} prefix(es){reopened}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "id": self.incident_id,
            "stem": list(self.stem),
            "stem_label": self.stem_label,
            "status": self.status.value,
            "class": self.incident_class,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "opened_at": self.opened_at,
            "resolved_at": self.resolved_at,
            "detected_window": self.detected_window,
            "windows_observed": self.windows_observed,
            "peak_strength": self.peak_strength,
            "best_rank": self.best_rank,
            "event_count": self.event_count,
            "severity": self.severity,
            "severity_band": self.severity_band,
            "reopen_count": self.reopen_count,
            "prefixes": sorted(self.prefixes),
            "related_stems": [list(edge) for edge in self.related_stems],
            "transitions": [t.to_dict() for t in self.transitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IncidentRecord":
        resolved_at = data.get("resolved_at")
        return cls(
            incident_id=int(data["id"]),
            stem=(str(data["stem"][0]), str(data["stem"][1])),
            stem_label=str(data.get("stem_label", "")),
            status=IncidentStatus(data["status"]),
            incident_class=str(data.get("class", "correlation")),
            first_seen=float(data["first_seen"]),
            last_seen=float(data["last_seen"]),
            opened_at=float(data["opened_at"]),
            resolved_at=None if resolved_at is None else float(resolved_at),
            detected_window=int(data.get("detected_window", 0)),
            windows_observed=int(data.get("windows_observed", 1)),
            peak_strength=int(data.get("peak_strength", 0)),
            best_rank=int(data.get("best_rank", 1)),
            event_count=int(data.get("event_count", 0)),
            severity=float(data.get("severity", 0.0)),
            severity_band=str(data.get("severity_band", "low")),
            reopen_count=int(data.get("reopen_count", 0)),
            prefixes=frozenset(
                str(p) for p in data.get("prefixes", ())
            ),
            related_stems=tuple(
                (str(edge[0]), str(edge[1]))
                for edge in data.get("related_stems", ())
            ),
            transitions=[
                Transition.from_dict(t)
                for t in data.get("transitions", ())
            ],
        )


def open_incident(
    incident_id: int,
    stem: StemKey,
    at: float,
    *,
    incident_class: str,
    detected_window: int,
    stem_label: str = "",
    reason: str = "first observation",
) -> IncidentRecord:
    """Create a fresh incident in OPEN with its birth transition."""
    record = IncidentRecord(
        incident_id=incident_id,
        stem=stem,
        stem_label=stem_label,
        status=IncidentStatus.OPEN,
        incident_class=incident_class,
        first_seen=at,
        last_seen=at,
        opened_at=at,
        detected_window=detected_window,
    )
    record.transitions.append(
        Transition(
            at=at,
            from_status=None,
            to_status=IncidentStatus.OPEN.value,
            reason=reason,
        )
    )
    return record


def transition(
    record: IncidentRecord,
    to_status: IncidentStatus,
    at: float,
    reason: str,
) -> IncidentRecord:
    """Move *record* along a legal state-machine edge.

    The single sanctioned writer of ``IncidentRecord.status``. Raises
    :class:`TransitionError` on an illegal edge; a resolved→open move
    clears ``resolved_at`` and counts the reopen.
    """
    if to_status not in VALID_TRANSITIONS[record.status]:
        raise TransitionError(
            f"illegal transition {record.status.value!r} ->"
            f" {to_status.value!r} for INC-{record.incident_id:04d}"
        )
    record.transitions.append(
        Transition(
            at=at,
            from_status=record.status.value,
            to_status=to_status.value,
            reason=reason,
        )
    )
    if to_status is IncidentStatus.RESOLVED:
        record.resolved_at = at
    elif record.status is IncidentStatus.RESOLVED:
        # Reopen: the lifecycle restarts but identity and history stay.
        record.resolved_at = None
        record.reopen_count += 1
    record.status = to_status
    return record


def severity_score(
    best_rank: int,
    prefix_count: int,
    windows_observed: int,
) -> float:
    """Deterministic severity in [0, 9] from the ISSUE's three signals.

    Stem rank (how dominant the correlation is), prefix-set size (blast
    radius), and persistence across windows each contribute up to 3
    points; the sum is banded by :func:`severity_band`. Pure integer
    arithmetic so severity is bit-stable across platforms.
    """
    rank_score = max(0, 4 - best_rank) if best_rank >= 1 else 0
    if prefix_count >= 64:
        prefix_score = 3
    elif prefix_count >= 16:
        prefix_score = 2
    elif prefix_count >= 4:
        prefix_score = 1
    else:
        prefix_score = 0
    persistence_score = min(3, max(0, windows_observed - 1))
    return float(rank_score + prefix_score + persistence_score)


def severity_band(score: float) -> str:
    """Band label for a severity score (``low`` … ``critical``)."""
    for threshold, band in SEVERITY_BANDS:
        if score >= threshold:
            return band
    return "low"
