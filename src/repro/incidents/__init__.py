"""Incident lifecycle orchestration: ranked stems → managed incidents.

The stemming pipeline answers "what is correlated in this window?";
this package answers the operator's question, "what is *happening*,
since when, how bad, and is it over?" — an explicit lifecycle state
machine (:mod:`repro.incidents.lifecycle`), a dedup/merge fold over
window reports (:mod:`repro.incidents.manager`), a durable sqlite
mirror (:mod:`repro.incidents.store`) and a Prometheus-style metric
surface (:mod:`repro.incidents.exporter`). ``repro monitor`` drives it
per window; ``repro incidents`` reads the store offline.
"""

from repro.incidents.exporter import IncidentExporter
from repro.incidents.feed import TransitionWatcher, load_incident_rows
from repro.incidents.lifecycle import (
    IncidentRecord,
    IncidentStatus,
    Transition,
    TransitionError,
    severity_band,
    severity_score,
    stem_key,
    transition,
)
from repro.incidents.manager import IncidentManager, IncidentPolicy
from repro.incidents.store import (
    INCIDENT_DB,
    IncidentStore,
    IncidentStoreError,
)

__all__ = [
    "INCIDENT_DB",
    "IncidentExporter",
    "IncidentManager",
    "IncidentPolicy",
    "IncidentRecord",
    "IncidentStatus",
    "IncidentStore",
    "IncidentStoreError",
    "Transition",
    "TransitionError",
    "TransitionWatcher",
    "load_incident_rows",
    "severity_band",
    "severity_score",
    "stem_key",
    "transition",
]
