"""Transition listeners: turning lifecycle audit rows into a feed.

The serve layer pushes an SSE event every time an incident crosses a
state-machine edge. Incidents record those edges already — every
:func:`repro.incidents.lifecycle.transition` appends an auditable
:class:`~repro.incidents.lifecycle.Transition` to the record — so a
listener never needs a hook inside the manager: it *diffs the audit
trail*. :class:`TransitionWatcher` remembers how many transitions it
has seen per incident and emits exactly the suffix that is new,
which keeps the INC001 discipline intact (one sanctioned writer, any
number of readers) and makes the feed replayable: watching the same
record sequence always yields the same events in the same order.

``load_incident_rows`` is the cold-read path: when a shard is down,
its incidents are still servable from the sqlite store it synced at
its last checkpoint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from repro.incidents.lifecycle import IncidentRecord
from repro.incidents.store import INCIDENT_DB, IncidentStore


class TransitionWatcher:
    """Derive transition events by diffing incident audit trails.

    Feed it the changed records a manager returns from ``ingest()``
    (or any record iterable); it emits one dict per *new* transition,
    in (incident id, transition index) order, tagged with the shard
    the record came from. State is a per-(shard, incident) seen-count
    — O(active incidents), no copies of the records themselves.
    """

    def __init__(self) -> None:
        self._seen: dict[tuple[int, int], int] = {}

    def observe(
        self,
        records: Iterable[IncidentRecord],
        *,
        shard: int = 0,
    ) -> list[dict[str, object]]:
        """Return feed events for transitions not yet observed."""
        events: list[dict[str, object]] = []
        for record in records:
            key = (shard, record.incident_id)
            seen = self._seen.get(key, 0)
            transitions = record.transitions
            if len(transitions) <= seen:
                continue
            for index in range(seen, len(transitions)):
                move = transitions[index]
                events.append(
                    {
                        "incident": record.incident_id,
                        "shard": shard,
                        "transition": index,
                        "at": move.at,
                        "from": move.from_status,
                        "to": move.to_status,
                        "reason": move.reason,
                        "status": record.status.value,
                        "stem_label": record.stem_label,
                        "severity": record.severity,
                        "severity_band": record.severity_band,
                    }
                )
            self._seen[key] = len(transitions)
        return events

    def forget_shard(self, shard: int) -> None:
        """Drop a shard's counters (after its store was rebuilt).

        A resumed shard replays its manager from a checkpoint, so its
        records arrive with their full audit trails again; forgetting
        first would re-emit history. Call this only when the shard's
        incident ids restart from scratch.
        """
        for key in [k for k in self._seen if k[0] == shard]:
            del self._seen[key]


def load_incident_rows(
    directory: Path | str,
    *,
    status: Optional[str] = None,
) -> list[IncidentRecord]:
    """Read a checkpoint directory's incident store, if it exists.

    The degraded-serve path: a killed shard's incidents stay visible
    from the sqlite store its last checkpoint cycle synced. Returns
    ``[]`` when the store was never created.
    """
    db = Path(directory) / INCIDENT_DB
    if not db.exists():
        return []
    with IncidentStore(db) as store:
        rows = store.rows()
    if status is not None:
        rows = [row for row in rows if row.status.value == status]
    return rows
