"""Prometheus-style exposition for the incident lifecycle.

Modeled on Sintra's ``event_manager/prometheus_exporter.py``: the
exporter owns no counters of its own — every scrape derives the full
metric set fresh from the manager's current incident table, so the
exposition can never drift from the store. All ages are measured in
*stream time* (the manager's ``last_time``), keeping the exporter on
the same determinism footing as everything else the monitor persists.

Metric names (DESIGN.md §13):

* ``repro_incidents_total{status=...}`` — live counts per lifecycle
  state (gauge; resolved incidents fall out when compacted);
* ``repro_incidents_by_class{class=...}`` — counts per triage class;
* ``repro_incidents_created_total`` / ``..._reopened_total`` /
  ``..._resolved_total`` — lifetime counters from transition history;
* ``repro_incident_age_seconds`` — histogram of live incident ages;
* ``repro_incident_time_to_resolve_seconds`` — histogram of
  open→resolved durations over retained resolved incidents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.incidents.lifecycle import IncidentStatus
from repro.incidents.manager import IncidentManager

if TYPE_CHECKING:  # import would cycle through repro.pipeline.monitor
    from repro.pipeline.metrics import Histogram

#: Bucket edges (stream seconds) for the age / time-to-resolve
#: histograms: one monitor window through a working day.
AGE_BUCKETS = (
    30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0, 14400.0, 86400.0,
)


class IncidentExporter:
    """Registry collector deriving incident metrics at scrape time."""

    def __init__(self, manager: IncidentManager) -> None:
        self.manager = manager

    def _histograms(self) -> "tuple[Histogram, Histogram]":
        # Imported here, not at module level: repro.pipeline.monitor
        # imports this module, so a top-level metrics import would
        # close an import cycle through the pipeline package.
        from repro.pipeline.metrics import Histogram

        ages = Histogram(
            "repro_incident_age_seconds",
            "Age of live incidents in stream seconds.",
            AGE_BUCKETS,
        )
        ttr = Histogram(
            "repro_incident_time_to_resolve_seconds",
            "Open-to-resolved duration of retained resolved incidents.",
            AGE_BUCKETS,
        )
        now = self.manager.last_time
        for record in self.manager.all_incidents():
            if record.resolved:
                duration = record.time_to_resolve
                if duration is not None:
                    ttr.observe(duration)
            else:
                ages.observe(record.age(now))
        return ages, ttr

    def _lifetime_counts(self) -> tuple[int, int]:
        reopened = resolved = 0
        for record in self.manager.all_incidents():
            for event in record.transitions:
                if event.to_status == IncidentStatus.RESOLVED.value:
                    resolved += 1
                elif event.from_status == IncidentStatus.RESOLVED.value:
                    reopened += 1
        return reopened, resolved

    def render_text(self) -> str:
        from repro.pipeline.metrics import _format_number

        by_status = self.manager.counts_by_status()
        by_class = self.manager.counts_by_class()
        reopened, resolved = self._lifetime_counts()
        ages, ttr = self._histograms()
        lines = [
            "# HELP repro_incidents_total Incidents currently"
            " retained, by lifecycle state.",
            "# TYPE repro_incidents_total gauge",
        ]
        for status in IncidentStatus:
            lines.append(
                f'repro_incidents_total{{status="{status.value}"}}'
                f" {by_status.get(status.value, 0)}"
            )
        lines.append(
            "# HELP repro_incidents_by_class Incidents currently"
            " retained, by triage class."
        )
        lines.append("# TYPE repro_incidents_by_class gauge")
        for klass, count in by_class.items():
            lines.append(
                f'repro_incidents_by_class{{class="{klass}"}} {count}'
            )
        lines.append(
            "# HELP repro_incidents_created_total Incidents ever opened."
        )
        lines.append("# TYPE repro_incidents_created_total counter")
        lines.append(
            f"repro_incidents_created_total {self.manager.created_total}"
        )
        lines.append(
            "# HELP repro_incidents_reopened_total Reopen transitions"
            " over retained incidents."
        )
        lines.append("# TYPE repro_incidents_reopened_total counter")
        lines.append(f"repro_incidents_reopened_total {reopened}")
        lines.append(
            "# HELP repro_incidents_resolved_total Resolve transitions"
            " over retained incidents."
        )
        lines.append("# TYPE repro_incidents_resolved_total counter")
        lines.append(f"repro_incidents_resolved_total {resolved}")
        for histogram in (ages, ttr):
            lines.append(
                f"# HELP {histogram.name} {histogram.help}"
            )
            lines.append(f"# TYPE {histogram.name} histogram")
            lines.extend(histogram.render())
        lines.append(
            "# HELP repro_incidents_stream_time Latest stream"
            " timestamp folded into the manager."
        )
        lines.append("# TYPE repro_incidents_stream_time gauge")
        lines.append(
            "repro_incidents_stream_time"
            f" {_format_number(self.manager.last_time)}"
        )
        return "\n".join(lines) + "\n"

    def to_snapshot(self) -> dict[str, object]:
        by_status = self.manager.counts_by_status()
        reopened, resolved = self._lifetime_counts()
        ages, ttr = self._histograms()
        return {
            "repro_incidents_total": by_status,
            "repro_incidents_by_class": self.manager.counts_by_class(),
            "repro_incidents_created_total": self.manager.created_total,
            "repro_incidents_reopened_total": reopened,
            "repro_incidents_resolved_total": resolved,
            "repro_incident_age_seconds": ages.to_value(),
            "repro_incident_time_to_resolve_seconds": ttr.to_value(),
            "repro_incidents_stream_time": self.manager.last_time,
        }
