"""Persistent sqlite-backed incident store.

The store is the durable face of the :class:`IncidentManager`: one
``incidents.sqlite`` file next to the monitor's checkpoints, written in
WAL mode so a reader (the ``repro incidents`` CLI, the CI smoke job)
can inspect incidents while the monitor is live.

Consistency model — the store is a *follower* of the checkpoint cycle,
never an independent source of truth. Every checkpoint write is paired
with one :meth:`IncidentStore.sync` call that replaces the full
incident table in a single transaction and stamps ``reports_applied``
with the checkpoint's ``reports_emitted``. On resume the monitor
re-syncs the store from the restored manager state, which atomically
reconciles away any rows a dead run wrote past its last checkpoint —
the same truncate-and-replay contract the report log already follows.
A full rewrite per checkpoint sounds heavy but the live incident set
is small by construction (resolved incidents compact away), and it
buys exact crash atomicity with zero diffing logic.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Optional

from repro.incidents.lifecycle import IncidentRecord
from repro.incidents.manager import IncidentManager

#: Bump on any change to the table shapes below; the store refuses to
#: open a file from a different schema generation.
SCHEMA_VERSION = 1

#: Canonical store filename inside a monitor checkpoint directory.
INCIDENT_DB = "incidents.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS incidents (
    id INTEGER PRIMARY KEY,
    stem_left TEXT NOT NULL,
    stem_right TEXT NOT NULL,
    stem_label TEXT NOT NULL,
    status TEXT NOT NULL,
    incident_class TEXT NOT NULL,
    first_seen REAL NOT NULL,
    last_seen REAL NOT NULL,
    opened_at REAL NOT NULL,
    resolved_at REAL,
    detected_window INTEGER NOT NULL,
    windows_observed INTEGER NOT NULL,
    peak_strength INTEGER NOT NULL,
    best_rank INTEGER NOT NULL,
    event_count INTEGER NOT NULL,
    severity REAL NOT NULL,
    severity_band TEXT NOT NULL,
    reopen_count INTEGER NOT NULL,
    prefixes TEXT NOT NULL,
    related_stems TEXT NOT NULL,
    transitions TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_incidents_status ON incidents (status);
"""


class IncidentStoreError(RuntimeError):
    """The store file is unusable (schema mismatch, corruption)."""


class IncidentStore:
    """Durable mirror of an :class:`IncidentManager`'s state."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._check_schema()

    def _check_schema(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            with self._conn:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
        elif int(row[0]) != SCHEMA_VERSION:
            raise IncidentStoreError(
                f"incident store {self.path} has schema v{row[0]},"
                f" this build expects v{SCHEMA_VERSION}"
            )

    # -- write path -----------------------------------------------------

    def sync(self, manager: IncidentManager, reports_applied: int) -> None:
        """Atomically replace the table with *manager*'s current state.

        Paired 1:1 with checkpoint writes; ``reports_applied`` records
        which report-log position this snapshot corresponds to, so a
        resume can detect (and re-sync away) rows from a dead run.
        """
        records = manager.all_incidents()
        with self._conn:
            self._conn.execute("DELETE FROM incidents")
            self._conn.executemany(
                "INSERT INTO incidents VALUES"
                " (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
                [_record_row(r) for r in records],
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("reports_applied", str(int(reports_applied))),
            )

    def compact(self, *, keep_resolved: int = 0) -> int:
        """Drop all but the newest *keep_resolved* resolved incidents.

        Returns the number of rows removed. Retention order is
        deterministic: resolved incidents are dropped oldest
        ``(resolved_at, id)`` first. Runs VACUUM so the file shrinks.
        """
        resolved = self._conn.execute(
            "SELECT id FROM incidents WHERE status = 'resolved'"
            " ORDER BY resolved_at DESC, id DESC"
        ).fetchall()
        victims = [row[0] for row in resolved[keep_resolved:]]
        if victims:
            with self._conn:
                self._conn.executemany(
                    "DELETE FROM incidents WHERE id = ?",
                    [(v,) for v in victims],
                )
        self._conn.execute("VACUUM")
        return len(victims)

    # -- read path ------------------------------------------------------

    def reports_applied(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'reports_applied'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM incidents"
        ).fetchone()[0]

    def counts_by_status(self) -> dict[str, int]:
        return dict(
            self._conn.execute(
                "SELECT status, COUNT(*) FROM incidents"
                " GROUP BY status ORDER BY status"
            ).fetchall()
        )

    def rows(self) -> list[IncidentRecord]:
        """All stored incidents as records, id order."""
        rows = self._conn.execute(
            "SELECT * FROM incidents ORDER BY id"
        ).fetchall()
        return [_row_record(row) for row in rows]

    def row(self, incident_id: int) -> Optional[IncidentRecord]:
        row = self._conn.execute(
            "SELECT * FROM incidents WHERE id = ?", (incident_id,)
        ).fetchone()
        return None if row is None else _row_record(row)

    def export_jsonl(self, path: Path | str) -> int:
        """Write the store as the legacy JSONL export format."""
        records = self.rows()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record.to_dict(), sort_keys=True) + "\n"
                )
        return len(records)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "IncidentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _record_row(record: IncidentRecord) -> tuple:
    return (
        record.incident_id,
        record.stem[0],
        record.stem[1],
        record.stem_label,
        record.status.value,
        record.incident_class,
        record.first_seen,
        record.last_seen,
        record.opened_at,
        record.resolved_at,
        record.detected_window,
        record.windows_observed,
        record.peak_strength,
        record.best_rank,
        record.event_count,
        record.severity,
        record.severity_band,
        record.reopen_count,
        json.dumps(sorted(record.prefixes)),
        json.dumps([list(edge) for edge in record.related_stems]),
        json.dumps([t.to_dict() for t in record.transitions]),
    )


def _row_record(row: tuple) -> IncidentRecord:
    return IncidentRecord.from_dict(
        {
            "id": row[0],
            "stem": [row[1], row[2]],
            "stem_label": row[3],
            "status": row[4],
            "class": row[5],
            "first_seen": row[6],
            "last_seen": row[7],
            "opened_at": row[8],
            "resolved_at": row[9],
            "detected_window": row[10],
            "windows_observed": row[11],
            "peak_strength": row[12],
            "best_rank": row[13],
            "event_count": row[14],
            "severity": row[15],
            "severity_band": row[16],
            "reopen_count": row[17],
            "prefixes": json.loads(row[18]),
            "related_stems": json.loads(row[19]),
            "transitions": json.loads(row[20]),
        }
    )
