"""Lifecycle orchestration: per-window stem reports → managed incidents.

The Stemming pipeline emits a ranked stem list per window; a multi-hour
event therefore shows up as hundreds of disconnected rows. The
:class:`IncidentManager` is the fold that turns that stream into a
small set of *managed* incidents, in the dedup-first shape the Aegis
orchestrator models (SNIPPETS.md §2): for each ranked component, first
look for an existing incident to merge into, only then create, then
enrich (severity, class, prefixes, persistence).

Merge rules (DESIGN.md §13):

* **same stem edge** — a component whose problem location matches a
  live incident's stem (or one of its merged related stems) updates
  that incident, however many windows apart the observations are;
* **overlapping prefix set** — a component on a *different* stem merges
  into a live incident seen within ``correlation_window`` stream
  seconds when the prefix-set overlap (Jaccard) reaches
  ``prefix_overlap``; the new stem is recorded as a related stem and
  keys future lookups;
* **reopen on recurrence** — a stem recurring within ``reopen_window``
  of its incident's resolution reopens that incident (same id);
  beyond the window it is a genuinely new incident.

Aging is stream-time-driven: an incident unseen for ``resolve_after``
seconds resolves; one observed in ``investigate_after`` windows
escalates open → investigating. Everything — ids, timestamps, state —
derives from report content only, so the same report sequence always
rebuilds the same incidents (the crash/resume bit-identity contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.incidents.lifecycle import (
    IncidentRecord,
    IncidentStatus,
    StemKey,
    open_incident,
    severity_band,
    severity_score,
    stem_key,
    transition,
)
from repro.stemming.encode import format_stem
from repro.stemming.stemmer import Component

if TYPE_CHECKING:  # import would cycle through repro.pipeline.monitor
    from repro.pipeline.windows import WindowReport


@dataclass(frozen=True, slots=True)
class IncidentPolicy:
    """The knobs that shape incident evolution.

    These are *output-shaping*: the monitor pins them in its checkpoint
    config (resuming under a different policy would grow different
    incidents from the same reports, silently breaking bit-identity).
    """

    #: Quiet stream-seconds after which a live incident resolves.
    resolve_after: float = 600.0
    #: Max stream-time gap for prefix-overlap merging into a live
    #: incident (same-stem merges ignore this — identity is identity).
    correlation_window: float = 600.0
    #: A stem recurring within this many seconds of its incident's
    #: resolution reopens it; later recurrences start a new incident.
    reopen_window: float = 900.0
    #: Windows observed before an OPEN incident escalates.
    investigate_after: int = 2
    #: Jaccard overlap of prefix sets that merges distinct stems.
    prefix_overlap: float = 0.5
    #: Components weaker than this never form incidents.
    min_strength: int = 2
    #: Bound on retained resolved incidents in memory (None = all).
    max_resolved: Optional[int] = None

    def describe(self) -> dict[str, object]:
        return {
            "resolve_after": self.resolve_after,
            "correlation_window": self.correlation_window,
            "reopen_window": self.reopen_window,
            "investigate_after": self.investigate_after,
            "prefix_overlap": self.prefix_overlap,
            "min_strength": self.min_strength,
        }


def classify_component(component: Component) -> str:
    """A coarse triage class from the component's event evidence.

    Modeled on the CommunityWatch observation that a class taxonomy
    drives triage (arXiv:1806.07476): the exporter breaks incident
    counts down by this label. Derived deterministically from the event
    mix, so the class survives crash/resume unchanged.
    """
    total = len(component.events)
    if total == 0:
        return "correlation"
    withdrawals = sum(1 for e in component.events if e.is_withdrawal)
    prefixes = max(1, len(component.prefixes))
    if withdrawals * 5 >= total * 4:
        return "mass-withdrawal"
    if total >= prefixes * 4 and withdrawals * 4 >= total:
        return "flap"
    if withdrawals * 10 <= total and prefixes >= 8:
        return "announcement-flood"
    return "path-change"


def _jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    if not a or not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass(slots=True)
class IncidentManager:
    """Folds :class:`WindowReport`s into managed incident lifecycles."""

    policy: IncidentPolicy = field(default_factory=IncidentPolicy)
    _incidents: dict[int, IncidentRecord] = field(default_factory=dict)
    #: Stem (or merged related stem) → owning incident id.
    _by_stem: dict[StemKey, int] = field(default_factory=dict)
    _next_id: int = 1
    #: Latest stream time seen (the exporter's "now").
    last_time: float = 0.0
    reports_ingested: int = 0

    # -- ingestion ------------------------------------------------------

    def ingest(self, report: WindowReport) -> list[IncidentRecord]:
        """Fold one window report in; returns records that changed."""
        now = report.end
        self.last_time = max(self.last_time, now)
        self.reports_ingested += 1
        touched: dict[int, IncidentRecord] = {}
        for component in report.result.components:
            if component.strength < self.policy.min_strength:
                continue
            record = self._absorb(component, report, now)
            touched[record.incident_id] = record
        self._escalate(touched.values(), now)
        changed = [touched[incident_id] for incident_id in sorted(touched)]
        changed.extend(self._age(set(touched), now))
        self._evict_resolved()
        return changed

    def finalize(self, at: Optional[float] = None) -> list[IncidentRecord]:
        """Resolve every live incident at end-of-stream.

        Called by the monitor when the source is exhausted (never on a
        hard stop — a killed run must leave live incidents live so the
        resume can keep growing them).
        """
        now = self.last_time if at is None else at
        changed = []
        for record in self._records_by_id():
            if not record.resolved:
                transition(
                    record,
                    IncidentStatus.RESOLVED,
                    now,
                    "end of stream",
                )
                changed.append(record)
        return changed

    # -- merge/dedup core -----------------------------------------------

    def _absorb(
        self, component: Component, report: WindowReport, now: float
    ) -> IncidentRecord:
        key = stem_key(component.location)
        incident_id = self._by_stem.get(key)
        if incident_id is not None:
            record = self._incidents[incident_id]
            if record.resolved:
                if now - (record.resolved_at or now) <= self.policy.reopen_window:
                    transition(
                        record,
                        IncidentStatus.OPEN,
                        now,
                        f"recurred on {key[0]}--{key[1]}",
                    )
                    return self._enrich(record, component, report, now)
                self._unlink(record)
            else:
                return self._enrich(record, component, report, now)
        merged = self._merge_by_prefixes(component, now)
        if merged is not None:
            if key not in merged.related_stems and key != merged.stem:
                merged.related_stems = merged.related_stems + (key,)
            self._by_stem[key] = merged.incident_id
            return self._enrich(merged, component, report, now)
        record = open_incident(
            self._next_id,
            key,
            now,
            incident_class=classify_component(component),
            detected_window=report.index,
            stem_label=format_stem(component.stem),
        )
        self._next_id += 1
        self._incidents[record.incident_id] = record
        self._by_stem[key] = record.incident_id
        return self._enrich(record, component, report, now, created=True)

    def _merge_by_prefixes(
        self, component: Component, now: float
    ) -> Optional[IncidentRecord]:
        """The overlapping-prefix-set merge rule, deterministic by id."""
        candidate_prefixes = frozenset(
            str(p) for p in component.prefixes
        )
        if not candidate_prefixes:
            return None
        best: Optional[IncidentRecord] = None
        best_overlap = 0.0
        for record in self._records_by_id():
            if record.resolved:
                continue
            if now - record.last_seen > self.policy.correlation_window:
                continue
            overlap = _jaccard(candidate_prefixes, record.prefixes)
            if overlap > best_overlap:
                best_overlap = overlap
                best = record
        if best is not None and best_overlap >= self.policy.prefix_overlap:
            return best
        return None

    def _enrich(
        self,
        record: IncidentRecord,
        component: Component,
        report: WindowReport,
        now: float,
        *,
        created: bool = False,
    ) -> IncidentRecord:
        if not created:
            if record.last_seen < now:
                record.windows_observed += 1
            record.last_seen = max(record.last_seen, now)
        record.peak_strength = max(record.peak_strength, component.strength)
        record.best_rank = min(record.best_rank, component.rank) if not created else component.rank
        if created:
            record.peak_strength = component.strength
            record.event_count = component.event_count
        else:
            record.event_count = max(record.event_count, component.event_count)
        record.prefixes = record.prefixes | frozenset(
            str(p) for p in component.prefixes
        )
        record.incident_class = classify_component(component)
        record.severity = severity_score(
            record.best_rank, len(record.prefixes), record.windows_observed
        )
        record.severity_band = severity_band(record.severity)
        return record

    def _escalate(
        self, touched: Iterable[IncidentRecord], now: float
    ) -> None:
        for record in touched:
            if (
                record.status is IncidentStatus.OPEN
                and record.windows_observed >= self.policy.investigate_after
            ):
                transition(
                    record,
                    IncidentStatus.INVESTIGATING,
                    now,
                    f"persisted across {record.windows_observed} windows",
                )

    def _age(
        self, touched_ids: set[int], now: float
    ) -> list[IncidentRecord]:
        changed = []
        for record in self._records_by_id():
            if record.incident_id in touched_ids or record.resolved:
                continue
            if now - record.last_seen >= self.policy.resolve_after:
                transition(
                    record,
                    IncidentStatus.RESOLVED,
                    now,
                    f"quiet for {now - record.last_seen:.0f}s",
                )
                changed.append(record)
        return changed

    def _evict_resolved(self) -> None:
        cap = self.policy.max_resolved
        if cap is None:
            return
        resolved = [r for r in self._records_by_id() if r.resolved]
        excess = len(resolved) - cap
        if excess <= 0:
            return
        resolved.sort(key=lambda r: (r.resolved_at or 0.0, r.incident_id))
        for record in resolved[:excess]:
            self._unlink(record)

    def _unlink(self, record: IncidentRecord) -> None:
        del self._incidents[record.incident_id]
        for key in (record.stem, *record.related_stems):
            if self._by_stem.get(key) == record.incident_id:
                del self._by_stem[key]

    # -- queries --------------------------------------------------------

    def _records_by_id(self) -> list[IncidentRecord]:
        return [
            self._incidents[incident_id]
            for incident_id in sorted(self._incidents)
        ]

    def all_incidents(self) -> list[IncidentRecord]:
        """Every retained incident, creation (id) order."""
        return self._records_by_id()

    def active(self) -> list[IncidentRecord]:
        """Live incidents, most severe first (ties: oldest id first)."""
        return sorted(
            (r for r in self._records_by_id() if not r.resolved),
            key=lambda r: (-r.severity, r.incident_id),
        )

    def get(self, incident_id: int) -> Optional[IncidentRecord]:
        return self._incidents.get(incident_id)

    def counts_by_status(self) -> dict[str, int]:
        counts = {status.value: 0 for status in IncidentStatus}
        for record in self._incidents.values():
            counts[record.status.value] += 1
        return counts

    def counts_by_class(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self._records_by_id():
            counts[record.incident_class] = (
                counts.get(record.incident_class, 0) + 1
            )
        return dict(sorted(counts.items()))

    @property
    def created_total(self) -> int:
        """Incidents ever created (ids are sequential from 1)."""
        return self._next_id - 1

    def summary(self) -> str:
        if not self._incidents:
            return "no incidents"
        return "\n".join(r.describe() for r in self._records_by_id())

    # -- persistence (checkpoint form) ----------------------------------

    def export_state(self) -> dict[str, object]:
        """JSON-able full state; round-trips via :meth:`import_state`."""
        return {
            "next_id": self._next_id,
            "last_time": self.last_time,
            "reports_ingested": self.reports_ingested,
            "policy": self.policy.describe(),
            "incidents": [r.to_dict() for r in self._records_by_id()],
        }

    def import_state(self, state: dict) -> None:
        if self._incidents or self._next_id != 1:
            raise ValueError(
                "cannot import state onto a used incident manager"
            )
        self._next_id = int(state.get("next_id", 1))
        self.last_time = float(state.get("last_time", 0.0))
        self.reports_ingested = int(state.get("reports_ingested", 0))
        for row in state.get("incidents", ()):
            record = IncidentRecord.from_dict(row)
            self._incidents[record.incident_id] = record
            for key in (record.stem, *record.related_stems):
                self._by_stem[key] = record.incident_id
