"""Reproduction of "Internet Routing Anomaly Detection and Visualization"
(Wong, Jacobson, Alaettinoglu — DSN 2005).

The package implements the paper's two algorithms and every substrate
they run on:

* :mod:`repro.tamp` — the TAMP visualization (trees, merged graphs,
  threshold/hierarchical pruning, layout, SVG/ASCII rendering, and the
  30-second/25-fps animation with the paper's edge-color semantics).
* :mod:`repro.stemming` — the Stemming anomaly detector (subsequence
  correlation, recursive component decomposition, windowed real-time
  detection, traffic-weighted variant).
* :mod:`repro.net`, :mod:`repro.bgp`, :mod:`repro.igp` — BGP-4 and
  link-state substrates: prefixes/tries/AS paths, RIBs, the full decision
  process, policy engine, session FSM, route reflection, SPF.
* :mod:`repro.config` — the IOS-like configuration language the policy
  integration (Section III-D.1) parses.
* :mod:`repro.collector` — the passive REX-style collector with
  withdrawal augmentation, event streams, and rate series.
* :mod:`repro.simulator` — a deterministic discrete-event simulator with
  Berkeley and ISP-Anon workload builders.
* :mod:`repro.scenarios` — the labeled anomaly catalog: the Section IV
  scenarios plus five related-work families, every incident carrying
  machine-readable ground truth, scored by a precision/recall harness.
* :mod:`repro.traffic` / :mod:`repro.integrate` — the elephant-and-mice
  traffic model and the three data-source integrations.
* :mod:`repro.analysis` — operator-level diagnosis reports and turn-key
  case studies.

Quickstart::

    from repro import BerkeleySite, Stemmer, diagnose, scenarios

    site = BerkeleySite()                       # simulated vantage point
    incident = scenarios.route_leak(site)       # inject the Figure 7 leak
    report = diagnose(incident.stream)          # Stemming + TAMP + rates
    print(report.to_text())
"""

from repro.analysis.report import IncidentReport, diagnose
from repro.collector.events import BGPEvent, EventKind
from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.net.aspath import ASPath
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.prefix import Prefix
from repro import scenarios
from repro.simulator.workloads import (
    BerkeleySite,
    IspAnonSite,
    build_berkeley,
    build_isp_anon,
)
from repro.stemming.detector import StreamingDetector
from repro.stemming.stemmer import Component, Stemmer, StemmingResult
from repro.stemming.weighted import TrafficWeightedStemmer
from repro.tamp.animate import TampAnimation, animate_stream
from repro.tamp.graph import TampGraph
from repro.tamp.prune import prune_flat, prune_hierarchical
from repro.tamp.render import render_ascii, render_svg
from repro.tamp.tree import TampTree

__version__ = "1.0.0"

__all__ = [
    "ASPath",
    "BGPEvent",
    "BerkeleySite",
    "Community",
    "Component",
    "EventKind",
    "EventStream",
    "IncidentReport",
    "IspAnonSite",
    "Origin",
    "PathAttributes",
    "Prefix",
    "RouteExplorer",
    "Stemmer",
    "StemmingResult",
    "StreamingDetector",
    "TampAnimation",
    "TampGraph",
    "TampTree",
    "TrafficWeightedStemmer",
    "animate_stream",
    "build_berkeley",
    "build_isp_anon",
    "diagnose",
    "prune_flat",
    "prune_hierarchical",
    "render_ascii",
    "render_svg",
    "scenarios",
    "__version__",
]
