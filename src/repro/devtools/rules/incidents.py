"""INC001: incident status must change through the state machine.

:func:`repro.incidents.lifecycle.transition` is the single sanctioned
writer of an incident's ``status``: it validates the edge against
``VALID_TRANSITIONS``, stamps stream time, and appends the auditable
:class:`~repro.incidents.lifecycle.Transition` row. A direct write —
``record.status = ...``, ``row["status"] = ...``, or a SQL ``UPDATE``
that sets the ``status`` column — skips all three, producing lifecycles
the operator cannot reconstruct and states the machine forbids
(``investigating → open`` de-escalation, resolution without a
``resolved_at``).

Scope: modules inside ``repro.incidents`` and any module that imports
from it (the importer holds :class:`IncidentRecord` objects, so it can
commit the same sin). ``repro.incidents.lifecycle`` itself is exempt —
it *is* the sanctioned writer.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: The one module allowed to assign ``status`` directly.
SANCTIONED_MODULE = "repro.incidents.lifecycle"

#: SQL that sets a status column: ``UPDATE ... SET ... status =``.
_SQL_STATUS_UPDATE = re.compile(
    r"(?is)\bupdate\b.*\bset\b.*\bstatus\s*=",
)

_REMEDY = (
    " — route the change through"
    " repro.incidents.lifecycle.transition() so the edge is validated"
    " and the audit trail appended"
)


def _module_uses_incidents(ctx: ModuleContext) -> bool:
    if ctx.in_package(("repro.incidents",)):
        return True
    return any(
        target == "repro.incidents"
        or target.startswith("repro.incidents.")
        for target in ctx.imports.aliases.values()
    )


@register
class IncidentTransitionDiscipline(Checker):
    """INC001 over status writes in incident-adjacent modules."""

    rules = (
        Rule(
            "INC001",
            "incident status written directly instead of through the"
            " state-machine API",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module == SANCTIONED_MODULE:
            return
        if not _module_uses_incidents(ctx):
            return
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                if _SQL_STATUS_UPDATE.search(node.value):
                    yield self.finding(
                        ctx,
                        node,
                        "INC001",
                        "SQL UPDATE sets the status column behind the"
                        " state machine's back" + _REMEDY,
                    )
                continue
            for target in targets:
                yield from self._check_target(ctx, node, target)

    def _check_target(
        self, ctx: ModuleContext, node: ast.AST, target: ast.expr
    ) -> Iterator[Finding]:
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "status"
        ):
            owner = ast.unparse(target.value)
            yield self.finding(
                ctx,
                node,
                "INC001",
                f"direct write to {owner}.status bypasses the incident"
                " state machine" + _REMEDY,
            )
        elif (
            isinstance(target, ast.Subscript)
            and isinstance(target.slice, ast.Constant)
            and target.slice.value == "status"
        ):
            owner = ast.unparse(target.value)
            yield self.finding(
                ctx,
                node,
                "INC001",
                f'direct write to {owner}["status"] bypasses the'
                " incident state machine" + _REMEDY,
            )
