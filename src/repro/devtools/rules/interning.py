"""INT001/INT002: hot paths must stay on interned ids.

The DESIGN.md §10 rewrite moved the picture build onto dense interned
ids: edge stores are keyed by packed int edge ids
(:func:`repro.interning.pack_edge`) and prefix membership lives in
:class:`~repro.interning.idset.IdSet` columns / id-keyed refcount maps.
Reintroducing object-level state in the build/merge hot path — a
``set[Prefix]`` column, or a ``(parent, child)`` token tuple used as an
edge-store key — type-checks, passes every equivalence test, and
silently reverts the Table I(b) performance win, which is why it gets a
static gate (INT001) instead of a code-review note.

The stemming counter and the animator run interned too: sequences are
id tuples, pair stores are keyed by packed pair ints, frame diffs are
keyed by packed edge ids, and tokens reappear only at the decode
boundary (``counts()``/``top()``, frame ``LazyEdgeMap`` access, SVG
emission). The equivalent regression there is *decoding inside the hot
loop* — a ``symbols.token(...)``/``decode_pair(...)`` call, or a
``route_path_tokens`` re-render that the apply memo exists to avoid —
which is what INT002 gates.

Both rules are deliberately narrow: they watch only the named hot
functions inside their packages, so decode-boundary queries (which
legitimately speak tokens and ``set[Prefix]``) and every other package
stay out of scope. :mod:`repro.tamp.reference` — the preserved
pre-rewrite builder the equivalence suite checks against — violates
INT001 by design and carries per-line justifications.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Only modules in these packages are checked.
_PACKAGES = ("repro.tamp",)

#: The build/merge hot path, by function name. Everything else in the
#: package (queries, rendering, layout) is decode-boundary code.
HOT_FUNCTIONS = frozenset(
    {
        "from_routes",
        "add_route_group",
        "merge_tree",
        "merge_router",
        "merge_entries",
        "merge_groups",
        "merge_view",
        "merge_id_view",
        "merge_view_shards",
        "_merge_ids",
        "_bulk_add",
        "_build_rex_view_shard",
    }
)

#: INT002 scope: the interned stemming/animation hot paths.
_ID_PACKAGES = ("repro.stemming", "repro.tamp")

#: The id-level stemming/animation hot path, by function name. These
#: run between the encode and decode boundaries, so any token decode or
#: chain re-render inside them is a regression.
ID_HOT_FUNCTIONS = frozenset(
    {
        # repro.stemming.counter — packed-pair bulk counting
        "add_ids",
        "add_id_counts",
        "subtract_id_sequences",
        "_shift_pairs",
        "_rebuild_pairs",
        "_expand_shard",
        # repro.stemming.stemmer — interned grouping
        "_group_by_ids",
        # repro.tamp.incremental / animate — id-keyed frame diffing
        "_install",
        "_withdraw",
        "_remove_contribution",
        "_ids_for",
        "animate_stream",
        # repro.tamp.svg_animation — id-keyed keyframe tracks
        "_edge_tracks",
    }
)

#: Decode-boundary method names: calling one inside an id-level hot
#: function means tokens are being materialized in the loop.
DECODE_METHODS = frozenset({"token", "decode_pair", "decode_edge", "prefix"})

#: Chain re-renderers the apply/grouping memos exist to avoid.
RETOKENIZERS = frozenset({"route_path_tokens"})

#: Object-set constructors that must not type prefix containers here.
_SET_TYPES = frozenset({"set", "frozenset"})

#: Receiver methods that take the key as their first argument.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop"})

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register
class InternedHotPath(Checker):
    """INT001 over the TAMP hot functions of a module."""

    rules = (
        Rule(
            "INT001",
            "TAMP hot path uses an object-set edge store or un-interned"
            " token keys",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in HOT_FUNCTIONS
            ):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: _AnyFunc
    ) -> Iterator[Finding]:
        tuple_keys: set[str] = set()
        findings: list[Finding] = []
        for node in ast.walk(func):
            annotation = self._prefix_set_annotation(node)
            if annotation is not None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "INT001",
                        f"{func.name}() declares an object prefix set"
                        f" ({annotation}) on the TAMP hot path; prefix"
                        " membership must use interned IdSet columns /"
                        " id-keyed refcount maps (DESIGN.md §10)",
                    )
                )
                continue
            key = self._edge_store_key(node)
            if key is None:
                continue
            if isinstance(key, ast.Tuple):
                findings.append(
                    self.finding(
                        ctx,
                        key,
                        "INT001",
                        f"{func.name}() keys an edge store by a token"
                        " tuple; hot-path stores must be keyed by packed"
                        " int edge ids (repro.interning.pack_edge)",
                    )
                )
            elif isinstance(key, ast.Name):
                tuple_keys.add(key.id)
        if tuple_keys:
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Tuple)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in tuple_keys
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "INT001",
                            f"{func.name}() builds the token-tuple edge"
                            f" key '{node.targets[0].id}' for an edge"
                            " store; hot-path stores must be keyed by"
                            " packed int edge ids"
                            " (repro.interning.pack_edge)",
                        )
                    )
        yield from sorted(findings)

    @staticmethod
    def _prefix_set_annotation(node: ast.AST) -> Optional[str]:
        """The offending annotation text when *node* types an object
        prefix set (``set[Prefix]``/``frozenset[Prefix]``, possibly
        nested inside a container annotation)."""
        if isinstance(node, ast.AnnAssign):
            annotation = node.annotation
        elif isinstance(node, ast.arg) and node.annotation is not None:
            annotation = node.annotation
        else:
            return None
        for sub in ast.walk(annotation):
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in _SET_TYPES
                and any(
                    isinstance(inner, ast.Name) and inner.id == "Prefix"
                    for inner in ast.walk(sub.slice)
                )
            ):
                return ast.unparse(sub)
        return None

    @classmethod
    def _edge_store_key(cls, node: ast.AST) -> Optional[ast.expr]:
        """The key expression when *node* reads/writes an edge store.

        Matches subscripts (``edges[key]``) and keyed method calls
        (``edges.get(key, ...)``) whose receiver is rooted at a name or
        attribute containing "edges".
        """
        if isinstance(node, ast.Subscript) and cls._is_edge_store(
            node.value
        ):
            return node.slice
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _KEYED_METHODS
            and node.args
            and cls._is_edge_store(node.func.value)
        ):
            return node.args[0]
        return None

    @staticmethod
    def _is_edge_store(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return "edges" in node.attr.lower()
        if isinstance(node, ast.Name):
            return "edges" in node.id.lower()
        return False


@register
class IdLevelHotPath(Checker):
    """INT002 over the stemming/animation id-level hot functions."""

    rules = (
        Rule(
            "INT002",
            "stemming/animation hot path decodes interned ids or"
            " re-tokenizes a chain inside the loop",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_ID_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in ID_HOT_FUNCTIONS
            ):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: _AnyFunc
    ) -> Iterator[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in DECODE_METHODS
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "INT002",
                        f"{func.name}() calls .{callee.attr}() on the"
                        " id-level hot path; tokens must only"
                        " materialize at the decode boundary"
                        " (DESIGN.md §10)",
                    )
                )
            elif self._callee_name(callee) in RETOKENIZERS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "INT002",
                        f"{func.name}() re-renders a token chain via"
                        f" {self._callee_name(callee)}() on the id-level"
                        " hot path; chains must come from the interned"
                        " apply/grouping memo (DESIGN.md §10)",
                    )
                )
        yield from sorted(findings)

    @staticmethod
    def _callee_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None
