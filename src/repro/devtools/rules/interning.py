"""INT001: TAMP hot paths must stay on interned edge stores.

The DESIGN.md §10 rewrite moved the picture build onto dense interned
ids: edge stores are keyed by packed int edge ids
(:func:`repro.interning.pack_edge`) and prefix membership lives in
:class:`~repro.interning.idset.IdSet` columns / id-keyed refcount maps.
Reintroducing object-level state in the build/merge hot path — a
``set[Prefix]`` column, or a ``(parent, child)`` token tuple used as an
edge-store key — type-checks, passes every equivalence test, and
silently reverts the Table I(b) performance win, which is why it gets a
static gate instead of a code-review note.

The rule is deliberately narrow: it watches only the named hot
functions inside :mod:`repro.tamp`, so decode-boundary queries (which
legitimately speak tokens and ``set[Prefix]``) and every other package
stay out of scope. :mod:`repro.tamp.reference` — the preserved
pre-rewrite builder the equivalence suite checks against — violates it
by design and carries per-line justifications.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Only modules in these packages are checked.
_PACKAGES = ("repro.tamp",)

#: The build/merge hot path, by function name. Everything else in the
#: package (queries, rendering, layout) is decode-boundary code.
_HOT_FUNCTIONS = frozenset(
    {
        "from_routes",
        "add_route_group",
        "merge_tree",
        "merge_router",
        "merge_entries",
        "_merge_grouped",
        "_merge_ids",
        "_bulk_add",
    }
)

#: Object-set constructors that must not type prefix containers here.
_SET_TYPES = frozenset({"set", "frozenset"})

#: Receiver methods that take the key as their first argument.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop"})

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register
class InternedHotPath(Checker):
    """INT001 over the TAMP hot functions of a module."""

    rules = (
        Rule(
            "INT001",
            "TAMP hot path uses an object-set edge store or un-interned"
            " token keys",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _HOT_FUNCTIONS
            ):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: _AnyFunc
    ) -> Iterator[Finding]:
        tuple_keys: set[str] = set()
        findings: list[Finding] = []
        for node in ast.walk(func):
            annotation = self._prefix_set_annotation(node)
            if annotation is not None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "INT001",
                        f"{func.name}() declares an object prefix set"
                        f" ({annotation}) on the TAMP hot path; prefix"
                        " membership must use interned IdSet columns /"
                        " id-keyed refcount maps (DESIGN.md §10)",
                    )
                )
                continue
            key = self._edge_store_key(node)
            if key is None:
                continue
            if isinstance(key, ast.Tuple):
                findings.append(
                    self.finding(
                        ctx,
                        key,
                        "INT001",
                        f"{func.name}() keys an edge store by a token"
                        " tuple; hot-path stores must be keyed by packed"
                        " int edge ids (repro.interning.pack_edge)",
                    )
                )
            elif isinstance(key, ast.Name):
                tuple_keys.add(key.id)
        if tuple_keys:
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Tuple)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id in tuple_keys
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "INT001",
                            f"{func.name}() builds the token-tuple edge"
                            f" key '{node.targets[0].id}' for an edge"
                            " store; hot-path stores must be keyed by"
                            " packed int edge ids"
                            " (repro.interning.pack_edge)",
                        )
                    )
        yield from sorted(findings)

    @staticmethod
    def _prefix_set_annotation(node: ast.AST) -> Optional[str]:
        """The offending annotation text when *node* types an object
        prefix set (``set[Prefix]``/``frozenset[Prefix]``, possibly
        nested inside a container annotation)."""
        if isinstance(node, ast.AnnAssign):
            annotation = node.annotation
        elif isinstance(node, ast.arg) and node.annotation is not None:
            annotation = node.annotation
        else:
            return None
        for sub in ast.walk(annotation):
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in _SET_TYPES
                and any(
                    isinstance(inner, ast.Name) and inner.id == "Prefix"
                    for inner in ast.walk(sub.slice)
                )
            ):
                return ast.unparse(sub)
        return None

    @classmethod
    def _edge_store_key(cls, node: ast.AST) -> Optional[ast.expr]:
        """The key expression when *node* reads/writes an edge store.

        Matches subscripts (``edges[key]``) and keyed method calls
        (``edges.get(key, ...)``) whose receiver is rooted at a name or
        attribute containing "edges".
        """
        if isinstance(node, ast.Subscript) and cls._is_edge_store(
            node.value
        ):
            return node.slice
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _KEYED_METHODS
            and node.args
            and cls._is_edge_store(node.func.value)
        ):
            return node.args[0]
        return None

    @staticmethod
    def _is_edge_store(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return "edges" in node.attr.lower()
        if isinstance(node, ast.Name):
            return "edges" in node.id.lower()
        return False
