"""PIPE001: pipeline stages must not reference module-global mutable
state.

A :class:`repro.pipeline.runtime.Stage` is checkpointed and rebuilt on
resume: everything it knows must live on the instance (restored via
``export_state``/``restore_state``) or flow through ``process()``.
State parked in a module-level container silently survives the
rebuild — the resumed stage sees data from before the "crash" and the
bit-identical-resume contract quietly breaks. The same reference also
poisons the ``repro.perf`` story (POOL002's fork-divergence applies
the moment a stage's hot path is sharded).

The rule mirrors POOL002 structurally: find stage definitions (classes
with a ``Stage``/``FunctionStage`` base, plus module-level functions
dispatched through ``FunctionStage(...)``), then flag any ``global``
declaration and any reference to a module-global bound to a mutable
container (literal list/dict/set, comprehension, or a call to a known
container factory). A read is as bad as a write here — the reference
itself is the hidden channel.

Stage discovery and mutable-global detection are module-level
functions shared with the whole-program escape rule (PIPE002 in
:mod:`repro.devtools.rules.taint`), which chases the same hazard one
call level deeper and across modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.devtools.astutil import ImportMap
from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Fully-qualified names that construct a function-backed stage.
STAGE_FACTORIES = frozenset(
    {
        "repro.pipeline.FunctionStage",
        "repro.pipeline.runtime.FunctionStage",
    }
)

#: Base classes that make a ClassDef a pipeline stage.
STAGE_BASES = frozenset(
    {
        "repro.pipeline.Stage",
        "repro.pipeline.runtime.Stage",
        "repro.pipeline.FunctionStage",
        "repro.pipeline.runtime.FunctionStage",
    }
)

#: Callables whose result is a mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "deque",
        "collections.deque",
        "Counter",
        "collections.Counter",
        "defaultdict",
        "collections.defaultdict",
        "OrderedDict",
        "collections.OrderedDict",
    }
)

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)

StageDef = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]


def is_mutable_value(node: ast.AST, imports: ImportMap) -> bool:
    """True when *node* statically evaluates to a mutable container."""
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and imports.resolve(node.func) in _MUTABLE_FACTORIES
    )


def mutable_module_globals(
    tree: ast.Module, imports: ImportMap
) -> set[str]:
    """Module-level names bound to recognizably mutable containers."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not is_mutable_value(value, imports):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def stage_definitions(
    tree: ast.Module, imports: ImportMap
) -> list[StageDef]:
    """Stage classes and module-level ``FunctionStage`` callables."""
    module_defs = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    stages: list[StageDef] = []
    seen: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and any(
            imports.resolve(base) in STAGE_BASES for base in node.bases
        ):
            stages.append(node)
            seen.add(node.name)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and imports.resolve(node.func) in STAGE_FACTORIES
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            name = node.args[0].id
            if name in module_defs and name not in seen:
                seen.add(name)
                stages.append(module_defs[name])
    return stages


def stage_kind(stage: StageDef) -> str:
    return (
        "stage class"
        if isinstance(stage, ast.ClassDef)
        else "stage function"
    )


@register
class PipelineStagePurity(Checker):
    """PIPE001 over stage definitions in a module."""

    rules = (
        Rule(
            "PIPE001",
            "pipeline stage holds references to module-global mutable"
            " state",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ctx.imports
        mutable_globals = mutable_module_globals(ctx.tree, imports)
        for stage in stage_definitions(ctx.tree, imports):
            yield from self._check_stage(ctx, stage, mutable_globals)

    def _check_stage(
        self,
        ctx: ModuleContext,
        stage: StageDef,
        mutable_globals: set[str],
    ) -> Iterator[Finding]:
        kind = stage_kind(stage)
        flagged: set[str] = set()
        for node in ast.walk(stage):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    "PIPE001",
                    f"{kind} {stage.name} declares"
                    f" global {', '.join(node.names)}; stage state must"
                    " live on the instance so checkpoint/resume can"
                    " rebuild it",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable_globals
                and node.id not in flagged
            ):
                flagged.add(node.id)
                yield self.finding(
                    ctx,
                    node,
                    "PIPE001",
                    f"{kind} {stage.name} references module-global"
                    f" mutable '{node.id}'; that state survives a"
                    " checkpoint rebuild and breaks bit-identical"
                    " resume",
                )
