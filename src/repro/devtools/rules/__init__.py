"""The rule catalog. Importing this package registers every checker.

Rule families map to the invariants the repo actually depends on:

* :mod:`repro.devtools.rules.determinism` — DET001 (unseeded entropy
  and wall-clock reads in algorithm modules), DET002 (unordered
  iteration feeding ordered output), DET003 (``id()``-based keys or
  ordering);
* :mod:`repro.devtools.rules.pool` — POOL001 (fork-pool callables must
  be module-level), POOL002 (shard functions must not write module
  globals);
* :mod:`repro.devtools.rules.mutation` — MUT001 (mutable default
  arguments);
* :mod:`repro.devtools.rules.cache` — CACHE001 (``TampGraph`` mutators
  must invalidate the prefix-count cache);
* :mod:`repro.devtools.rules.testkit` — TK001 (fault injectors must
  derive all entropy from an explicit ``seed`` argument);
* :mod:`repro.devtools.rules.pipeline` — PIPE001 (pipeline stages
  must not reference module-global mutable state);
* :mod:`repro.devtools.rules.incidents` — INC001 (incident status
  changes must go through the lifecycle state-machine API, never
  direct field/column writes);
* :mod:`repro.devtools.rules.serve` — SRV001 (serve-layer HTTP
  handlers must read through the snapshot surface, never the
  ``live_``-prefixed pipeline state the sharding layer owns);
* :mod:`repro.devtools.rules.interning` — INT001 (TAMP hot paths must
  keep edge stores on packed int ids, not object sets/token tuples),
  INT002 (no decode calls inside id-space hot functions);
* :mod:`repro.devtools.rules.taint` — the whole-program rules: INT003
  (interprocedural id-taint: SymbolTable-decoded values must not flow
  into registered hot functions, across any number of calls or
  modules), POOL003 (shard functions reaching module-global writes
  through a helper), PIPE002 (pipeline stages reaching module-global
  or closure-captured mutable state through a call).
"""

from __future__ import annotations

from repro.devtools.rules import (
    cache,
    determinism,
    incidents,
    interning,
    mutation,
    pipeline,
    pool,
    serve,
    taint,
    testkit,
)

__all__ = [
    "cache",
    "determinism",
    "incidents",
    "interning",
    "mutation",
    "pipeline",
    "pool",
    "serve",
    "taint",
    "testkit",
]
