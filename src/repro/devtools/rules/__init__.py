"""The rule catalog. Importing this package registers every checker.

Rule families map to the invariants the repo actually depends on:

* :mod:`repro.devtools.rules.determinism` — DET001 (unseeded entropy
  and wall-clock reads in algorithm modules), DET002 (unordered
  iteration feeding ordered output), DET003 (``id()``-based keys or
  ordering);
* :mod:`repro.devtools.rules.pool` — POOL001 (fork-pool callables must
  be module-level), POOL002 (shard functions must not write module
  globals);
* :mod:`repro.devtools.rules.mutation` — MUT001 (mutable default
  arguments);
* :mod:`repro.devtools.rules.cache` — CACHE001 (``TampGraph`` mutators
  must invalidate the prefix-count cache);
* :mod:`repro.devtools.rules.testkit` — TK001 (fault injectors must
  derive all entropy from an explicit ``seed`` argument);
* :mod:`repro.devtools.rules.pipeline` — PIPE001 (pipeline stages
  must not reference module-global mutable state);
* :mod:`repro.devtools.rules.interning` — INT001 (TAMP hot paths must
  keep edge stores on packed int ids, not object sets/token tuples).
"""

from __future__ import annotations

from repro.devtools.rules import (
    cache,
    determinism,
    interning,
    mutation,
    pipeline,
    pool,
    testkit,
)

__all__ = [
    "cache",
    "determinism",
    "interning",
    "mutation",
    "pipeline",
    "pool",
    "testkit",
]
