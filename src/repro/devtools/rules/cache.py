"""CACHE001: TampGraph mutators must invalidate the prefix-count cache.

``TampGraph.total_prefixes()`` memoizes the distinct-prefix count
because pruning divides by it once per edge. The memo is only correct
while edge membership is stable, so every method that mutates the
edge/adjacency state must call the invalidation hook
(``self._invalidate_cache()``). Forgetting it does not crash — it
serves a stale 100% mark, which skews every pruning fraction and
therefore which edges appear in the rendered picture. The granularity
is method-level on purpose: refcount-only branches legitimately skip
invalidation (membership did not change), so the rule demands the hook
be *reachable* in the method, not executed on every path.

Known limitation (documented, not fixed): mutations through a local
alias (``inner = self._edges.get(e); inner.update(...)``) are invisible
to the rule. The hook call in the enclosing method still satisfies it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Classes the rule applies to, by name.
_GRAPH_CLASSES = frozenset({"TampGraph"})

#: Instance attributes whose mutation can change prefix membership.
_STATE_ATTRS = frozenset({"_edges", "_children", "_parents"})

#: The invalidation hook, and the cache attribute a direct reset of
#: which also counts (the hook's own body).
_HOOK = "_invalidate_cache"
_CACHE_ATTR = "_total"

#: Receiver methods that mutate in place (reads like .get/.items don't
#: fire).
_MUTATORS = frozenset(
    {
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "remove",
        "append",
        "extend",
    }
)

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register
class CacheInvalidation(Checker):
    """CACHE001 over every configured graph class in the module."""

    rules = (
        Rule(
            "CACHE001",
            "TampGraph mutator does not call the cache-invalidation hook",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in _GRAPH_CLASSES
            ):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            mutation = self._first_mutation(method)
            if mutation is None:
                continue
            if self._invalidates(method):
                continue
            yield self.finding(
                ctx,
                method,
                "CACHE001",
                f"{cls.name}.{method.name}() mutates"
                f" {mutation} but never calls"
                f" self.{_HOOK}(); total_prefixes() would serve a stale"
                " count and skew every pruning fraction",
            )

    def _first_mutation(self, method: _AnyFunc) -> Optional[str]:
        """Description of the first state mutation in *method*, if any."""
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = self._state_attr(target)
                    if attr is not None:
                        return f"self.{attr}"
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = self._state_attr(target)
                    if attr is not None:
                        return f"self.{attr}"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                attr = self._state_attr(node.func.value)
                if attr is not None:
                    return f"self.{attr}.{node.func.attr}()"
        return None

    @staticmethod
    def _state_attr(node: ast.AST) -> Optional[str]:
        """The state attribute a store/receiver expression is rooted at.

        Matches ``self._edges``, ``self._edges[...]`` and deeper
        subscript chains, for ``self`` only.
        """
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in _STATE_ATTRS
        ):
            return node.attr
        return None

    @staticmethod
    def _invalidates(method: _AnyFunc) -> bool:
        """True when the method reaches the hook (or resets the cache
        attribute directly — the hook's own implementation)."""
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == _HOOK
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                return True
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr == _CACHE_ATTR
                    ):
                        return True
        return False
