"""MUT001: mutable default arguments.

A mutable default is evaluated once at import and shared by every call;
state leaks across calls — and across test runs in the same process —
which is both a plain bug and a determinism hazard (the Nth call's
result depends on the N−1 before it). Flagged everywhere in
``src/repro``, not just algorithm modules.

MUT001 findings carry a mechanical fix (``repro lint --fix``): the
default becomes ``None`` and a reconstruction guard is inserted at the
top of the body, after the docstring::

    def f(acc=[]):          def f(acc=None):
        acc.append(1)   →       if acc is None:
                                    acc = []
                                acc.append(1)

The fix is only offered where it is provably safe to splice: a named
``def`` whose body starts on its own line with at least one
non-docstring statement. Lambdas and one-liner defs are flagged
without a fix.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.devtools.astutil import ImportMap
from repro.devtools.findings import Edit, Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Constructors of mutable containers (post import-alias resolution).
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.Counter",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
    }
)

_AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def default_bindings(
    node: _AnyFunction,
) -> list[tuple[Optional[str], ast.expr]]:
    """``(parameter name, default expression)`` pairs, in source order.

    Positional defaults right-align against the positional parameters;
    keyword-only defaults align one-to-one. The name is what the fix
    needs to emit the ``if name is None`` guard.
    """
    args = node.args
    positional = args.posonlyargs + args.args
    pairs: list[tuple[Optional[str], ast.expr]] = []
    for arg, default in zip(
        positional[len(positional) - len(args.defaults) :], args.defaults
    ):
        pairs.append((arg.arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            pairs.append((arg.arg, default))
    return pairs


def mutable_default_fix(
    node: _AnyFunction, param: Optional[str], default: ast.expr, source: str
) -> tuple[Edit, ...]:
    """The None-plus-guard rewrite, or ``()`` when splicing is unsafe."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    if param is None or not node.body:
        return ()
    original = ast.get_source_segment(source, default)
    if original is None or "\n" in original:
        return ()
    body = node.body
    # Skip past a docstring; the guard must still precede real code.
    first = body[0]
    has_docstring = (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    )
    anchor = body[1] if has_docstring and len(body) > 1 else first
    if has_docstring and len(body) == 1:
        return ()  # docstring-only body: nothing uses the default
    lines = source.splitlines()
    if anchor.lineno > len(lines):
        return ()
    prefix = lines[anchor.lineno - 1][: anchor.col_offset]
    if prefix.strip():
        return ()  # one-liner def — no line of its own to splice into
    indent = " " * anchor.col_offset
    guard = (
        f"{indent}if {param} is None:\n"
        f"{indent}    {param} = {original}\n"
    )
    return (
        Edit(
            start_line=default.lineno,
            start_col=default.col_offset,
            end_line=default.end_lineno or default.lineno,
            end_col=default.end_col_offset or default.col_offset,
            replacement="None",
        ),
        Edit(
            start_line=anchor.lineno,
            start_col=0,
            end_line=anchor.lineno,
            end_col=0,
            replacement=guard,
        ),
    )


@register
class MutableDefaults(Checker):
    """MUT001: flag every mutable default anywhere in the tree."""

    rules = (Rule("MUT001", "mutable default argument"),)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            for param, default in default_bindings(node):
                kind = self._mutable_kind(default, imports)
                if kind is not None:
                    yield self.finding(
                        ctx,
                        default,
                        "MUT001",
                        f"default {kind} of {name}() is created once at"
                        " import and shared across calls; default to None"
                        " and construct inside the function",
                        fix=mutable_default_fix(
                            node, param, default, ctx.source
                        ),
                    )

    @staticmethod
    def _mutable_kind(
        default: ast.AST, imports: ImportMap
    ) -> Optional[str]:
        if isinstance(default, _MUTABLE_LITERALS):
            return type(default).__name__.lower().replace("comp", " comprehension")
        if isinstance(default, ast.Call):
            resolved = imports.resolve(default.func)
            if resolved in _MUTABLE_CALLS:
                return f"{resolved}()"
        return None
