"""MUT001: mutable default arguments.

A mutable default is evaluated once at import and shared by every call;
state leaks across calls — and across test runs in the same process —
which is both a plain bug and a determinism hazard (the Nth call's
result depends on the N−1 before it). Flagged everywhere in
``src/repro``, not just algorithm modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.devtools.astutil import ImportMap
from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Constructors of mutable containers (post import-alias resolution).
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.Counter",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
    }
)

_AnyFunction = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@register
class MutableDefaults(Checker):
    """MUT001: flag every mutable default anywhere in the tree."""

    rules = (Rule("MUT001", "mutable default argument"),)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                kind = self._mutable_kind(default, imports)
                if kind is not None:
                    yield self.finding(
                        ctx,
                        default,
                        "MUT001",
                        f"default {kind} of {name}() is created once at"
                        " import and shared across calls; default to None"
                        " and construct inside the function",
                    )

    @staticmethod
    def _mutable_kind(
        default: ast.AST, imports: ImportMap
    ) -> Optional[str]:
        if isinstance(default, _MUTABLE_LITERALS):
            return type(default).__name__.lower().replace("comp", " comprehension")
        if isinstance(default, ast.Call):
            resolved = imports.resolve(default.func)
            if resolved in _MUTABLE_CALLS:
                return f"{resolved}()"
        return None
