"""TK001: all testkit entropy must flow from an explicit ``seed``.

The fault injectors exist to make failures *replayable*: a chaos-test
failure that cannot be reproduced from its seed is worse than no test.
So inside :mod:`repro.testkit` the rule is absolute — no module-level
``random`` functions, no OS-entropy ``random.Random()`` with no
arguments, and any public function that builds its own generator must
accept a ``seed`` parameter so callers (and the fault-plan machinery)
control it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.astutil import ImportMap, parent_map
from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: The package the rule polices.
TESTKIT_PACKAGES = ("repro.testkit",)

#: The blessed constructor (when called with a seed argument).
_SEEDED_FACTORY = "random.Random"


@register
class TestkitSeedDiscipline(Checker):
    """TK001: unseeded or caller-hidden entropy in ``repro.testkit``."""

    rules = (
        Rule(
            "TK001",
            "testkit entropy must derive from an explicit seed argument",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(TESTKIT_PACKAGES):
            return
        imports = ImportMap(ctx.tree)
        parents = parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved == _SEEDED_FACTORY:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "TK001",
                        "random.Random() with no arguments seeds from OS"
                        " entropy; pass the injector's seed",
                    )
                    continue
                owner = self._enclosing_function(node, parents)
                if owner is None:
                    yield self.finding(
                        ctx,
                        node,
                        "TK001",
                        "module-level generator hides entropy state from"
                        " callers; build the Random inside the injector"
                        " from its seed parameter",
                    )
                elif self._is_public(owner) and not self._has_seed(owner):
                    yield self.finding(
                        ctx,
                        node,
                        "TK001",
                        f"public testkit function {owner.name!r} builds a"
                        " generator but takes no `seed` parameter; faults"
                        " must be replayable from their seed",
                    )
            elif resolved.split(".", 1)[0] == "random":
                yield self.finding(
                    ctx,
                    node,
                    "TK001",
                    f"{resolved}() draws from the unseeded global"
                    " generator; use random.Random(seed)",
                )

    @staticmethod
    def _enclosing_function(
        node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        current: Optional[ast.AST] = parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return current
            current = parents.get(current)
        return None

    @staticmethod
    def _is_public(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        return not func.name.startswith("_")

    @staticmethod
    def _has_seed(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        args = func.args
        names = [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        return "seed" in names
