"""INT003 / POOL003 / PIPE002: the whole-program rules.

Three invariants the per-file rules structurally cannot see:

* **INT003 — interprocedural id-taint.** A value decoded out of a
  :class:`~repro.interning.symbols.SymbolTable` (``.token()``,
  ``.prefix()``, ``.decode_edge()``, ``.decode_pair()``) or re-rendered
  by a chain tokenizer is *token-level*. Token-level values must never
  reach the hot functions of the INT001/INT002 registry — those run
  between the encode and decode boundaries on dense ints, and an
  object-token argument silently reverts the §10 columnar win while
  every equivalence test still passes. The analysis propagates taint
  through assignments, container literals, comprehensions, returns and
  direct calls, using per-function summaries (does it return tokens?
  does parameter *i* flow into a hot call?) computed to a fixed point
  over the project call graph, so a leak spanning helper functions —
  or modules — is flagged at the call site where the token value
  actually escapes. Findings deliberately anchor where taint *enters*
  a callee, never inside the callee on behalf of a caller: a file's
  findings therefore depend only on its transitive imports, which is
  what makes the lint cache's dependents-only invalidation sound.

* **POOL003 — shard escape, one call level deep.** POOL002 flags a
  shard function writing module globals directly; POOL003 applies the
  same contract to every helper the shard calls (resolved through the
  project symbol index, same module or not): a write one frame down
  diverges under fork exactly as badly.

* **PIPE002 — stage escape.** PIPE001 flags a stage referencing its
  own module's mutable globals; PIPE002 chases one level of calls into
  helpers (any module) that touch *their* module-global mutables, and
  flags stage callables built from closures that capture a mutable
  local of the enclosing function — state a checkpoint rebuild cannot
  restore, however it is reached.

All three run as :class:`~repro.devtools.registry.ProjectChecker`\\ s:
they see the whole :class:`~repro.devtools.project.ProjectContext`
once and emit findings wherever the evidence sits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.devtools.astutil import (
    enclosing_function_map,
    module_level_assignments,
)
from repro.devtools.findings import Finding, Rule
from repro.devtools.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
)
from repro.devtools.registry import ProjectChecker, register_project
from repro.devtools.rules.interning import (
    DECODE_METHODS,
    HOT_FUNCTIONS,
    ID_HOT_FUNCTIONS,
    RETOKENIZERS,
)
from repro.devtools.rules.pipeline import (
    is_mutable_value,
    mutable_module_globals,
    stage_definitions,
    stage_kind,
)
from repro.devtools.rules.pool import (
    dispatched_shard_functions,
    global_write_sites,
)

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: The combined hot-path registry: the id-level functions token-level
#: values must never reach.
HOT_SINKS: frozenset[str] = HOT_FUNCTIONS | ID_HOT_FUNCTIONS

#: The taint label for "this is a decoded token-level value".
_TOK = "tok"

#: Builtins through which taint passes unchanged from arguments.
_PASSTHROUGH = frozenset(
    {
        "list",
        "tuple",
        "set",
        "frozenset",
        "sorted",
        "reversed",
        "iter",
        "next",
        "zip",
        "enumerate",
        "copy.copy",
        "copy.deepcopy",
    }
)

#: Receiver-mutating methods: a tainted argument taints the receiver.
_RECEIVER_MUTATORS = frozenset(
    {"append", "add", "insert", "extend", "update", "setdefault"}
)

Label = Union[str, int]
Taint = frozenset  # of Label

_EMPTY: Taint = frozenset()


@dataclass
class FnSummary:
    """What the fixed point knows about one function."""

    #: Returns a token-level value regardless of arguments.
    returns_token: bool = False
    #: Returns taint when the given parameter index is tainted.
    returns_params: set[int] = field(default_factory=set)
    #: Parameter indices that flow into a hot call inside the function
    #: (directly or through further summarized calls).
    hot_params: set[int] = field(default_factory=set)
    #: Human-readable hot target per hot parameter, for messages.
    hot_via: dict[int, str] = field(default_factory=dict)

    def snapshot(self) -> tuple[bool, frozenset, frozenset]:
        return (
            self.returns_token,
            frozenset(self.returns_params),
            frozenset(self.hot_params),
        )


class _TaintPass:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        fn: FunctionInfo,
        summaries: dict[tuple[str, str], FnSummary],
        emit: Optional[list[tuple[ModuleInfo, ast.AST, str]]],
    ) -> None:
        self.project = project
        self.info = info
        self.fn = fn
        self.summaries = summaries
        self.summary = summaries[(fn.module, fn.qualname)]
        self.emit = emit
        self.param_index = {
            name: idx for idx, name in enumerate(fn.params)
        }
        self.env: dict[str, Taint] = {}
        #: True when the function is itself a hot sink: decode calls in
        #: here are INT002's finding, not a fresh INT003.
        self.in_hot_function = fn.name in HOT_SINKS

    # -- driving --------------------------------------------------------

    def run(self) -> None:
        # Two statement sweeps approximate loop-carried taint: a name
        # tainted late in a loop body is seen by earlier statements on
        # the second sweep.
        for _ in range(2):
            for stmt in self.fn.node.body:
                self._stmt(stmt)

    # -- statements -----------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            taint = self._expr(node.value)
            for target in node.targets:
                self._bind(target, taint)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._expr(node.value))
        elif isinstance(node, ast.AugAssign):
            taint = self._expr(node.value)
            if isinstance(node.target, ast.Name):
                self._merge(node.target.id, taint)
            else:
                self._bind(node.target, taint)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind(node.target, self._expr(node.iter))
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
        elif isinstance(node, (ast.If, ast.While)):
            self._expr(node.test)
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            for stmt in node.body:
                self._stmt(stmt)
        elif isinstance(node, ast.Try):
            for stmt in (
                node.body + node.orelse + node.finalbody
            ):
                self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._record_return(self._expr(node.value))
        elif isinstance(node, ast.Expr):
            self._expr(node.value)
        # Nested defs/classes are separate analysis units; `pass`,
        # `raise` etc. carry no taint.

    def _bind(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Writing a tainted value *into* a local container taints
            # the container.
            root = target
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name) and taint:
                self._merge(root.id, taint)

    def _merge(self, name: str, taint: Taint) -> None:
        if taint:
            self.env[name] = self.env.get(name, _EMPTY) | taint

    def _record_return(self, taint: Taint) -> None:
        if _TOK in taint:
            self.summary.returns_token = True
        for label in taint:
            if isinstance(label, int):
                self.summary.returns_params.add(label)

    # -- expressions ----------------------------------------------------

    def _expr(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                return local
            index = self.param_index.get(node.id)
            if index is not None:
                return frozenset({index})
            return _EMPTY
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Attribute):
            return self._expr(node.value)
        if isinstance(node, ast.Subscript):
            taint = self._expr(node.value)
            if isinstance(node.slice, ast.expr):
                self._expr(node.slice)
            return taint
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint = _EMPTY
            for element in node.elts:
                taint = taint | self._expr(element)
            return taint
        if isinstance(node, ast.Dict):
            taint = _EMPTY
            for key in node.keys:
                if key is not None:
                    taint = taint | self._expr(key)
            for value in node.values:
                taint = taint | self._expr(value)
            return taint
        if isinstance(node, ast.BinOp):
            return self._expr(node.left) | self._expr(node.right)
        if isinstance(node, ast.BoolOp):
            taint = _EMPTY
            for value in node.values:
                taint = taint | self._expr(value)
            return taint
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            return self._expr(node.body) | self._expr(node.orelse)
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Await):
            return self._expr(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            return self._comprehension(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension(node, [node.key, node.value])
        if isinstance(node, ast.Compare):
            self._expr(node.left)
            for comparator in node.comparators:
                self._expr(comparator)
            return _EMPTY
        if isinstance(node, ast.UnaryOp):
            return self._expr(node.operand)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            # Formatting renders tokens to text; the result is a string
            # artifact, not a token-level value.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return _EMPTY
        return _EMPTY

    def _comprehension(
        self,
        node: Union[
            ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp
        ],
        results: list[ast.expr],
    ) -> Taint:
        saved = dict(self.env)
        for generator in node.generators:
            iter_taint = self._expr(generator.iter)
            self._bind(generator.target, iter_taint)
            for condition in generator.ifs:
                self._expr(condition)
        taint = _EMPTY
        for result in results:
            taint = taint | self._expr(result)
        self.env = saved
        return taint

    # -- calls ----------------------------------------------------------

    def _call(self, node: ast.Call) -> Taint:
        arg_taints = [self._expr(arg) for arg in node.args]
        kw_taints = [
            (kw.arg, self._expr(kw.value)) for kw in node.keywords
        ]
        callee = node.func
        callee_name = self._callee_name(callee)
        resolved = self.project.resolve_function(
            self.info, callee, self.fn
        )

        # Sources: decode-boundary methods and chain re-renderers.
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr in DECODE_METHODS
        ):
            return frozenset({_TOK})
        if callee_name in RETOKENIZERS:
            return frozenset({_TOK})

        # Receiver mutation: container.append(tok) taints container.
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr in _RECEIVER_MUTATORS
            and isinstance(callee.value, ast.Name)
        ):
            incoming = _EMPTY
            for taint in arg_taints:
                incoming = incoming | taint
            for _, taint in kw_taints:
                incoming = incoming | taint
            self._merge(callee.value.id, incoming)

        # Sink checks.
        self._check_sink(
            node, callee_name, resolved, arg_taints, kw_taints
        )

        # Result taint.
        if resolved is not None:
            summary = self.summaries.get(
                (resolved.module, resolved.qualname)
            )
            if summary is not None:
                result = _EMPTY
                if summary.returns_token:
                    result = result | frozenset({_TOK})
                for index in summary.returns_params:
                    if index < len(arg_taints):
                        result = result | arg_taints[index]
                for name, taint in kw_taints:
                    if name is None:
                        continue
                    index = resolved.param_index(name)
                    if index is not None and index in summary.returns_params:
                        result = result | taint
                return result
        if callee_name is not None:
            dotted = self.info.imports.resolve(callee)
            if dotted in _PASSTHROUGH or callee_name in _PASSTHROUGH:
                result = _EMPTY
                for taint in arg_taints:
                    result = result | taint
                return result
        if isinstance(callee, ast.Attribute):
            # Unresolved method call: propagate the receiver's taint
            # (tokens.copy(), chain.pop(), " ".join-like accessors keep
            # token-level content token-level).
            return self._expr(callee.value)
        return _EMPTY

    def _check_sink(
        self,
        node: ast.Call,
        callee_name: Optional[str],
        resolved: Optional[FunctionInfo],
        arg_taints: list[Taint],
        kw_taints: list[tuple[Optional[str], Taint]],
    ) -> None:
        """Flag token taint entering a hot function, or propagate the
        hot-reachability of a parameter label to this function's
        summary."""
        is_hot = callee_name in HOT_SINKS
        summary = None
        if resolved is not None:
            summary = self.summaries.get(
                (resolved.module, resolved.qualname)
            )

        def handle(taint: Taint, hot_target: Optional[str]) -> None:
            if hot_target is None:
                return
            if _TOK in taint and not self.in_hot_function:
                if self.emit is not None:
                    self.emit.append(
                        (
                            self.info,
                            node,
                            f"{self.fn.qualname}() passes a token-level"
                            f" value into {hot_target}; hot paths run on"
                            " interned ids — decode at the boundary"
                            " instead (DESIGN.md §10)",
                        )
                    )
            for label in taint:
                if isinstance(label, int):
                    self.summary.hot_params.add(label)
                    self.summary.hot_via.setdefault(label, hot_target)

        for index, taint in enumerate(arg_taints):
            target: Optional[str] = None
            if is_hot:
                target = f"hot function {callee_name}()"
            elif (
                summary is not None
                and index in summary.hot_params
            ):
                via = summary.hot_via.get(index, "a hot function")
                target = (
                    f"{resolved.qualname}()"  # type: ignore[union-attr]
                    f" (parameter {index}, which reaches {via})"
                )
            handle(taint, target)
        for name, taint in kw_taints:
            target = None
            if is_hot:
                target = f"hot function {callee_name}()"
            elif (
                summary is not None
                and resolved is not None
                and name is not None
            ):
                index = resolved.param_index(name)
                if index is not None and index in summary.hot_params:
                    via = summary.hot_via.get(index, "a hot function")
                    target = (
                        f"{resolved.qualname}() (parameter"
                        f" '{name}', which reaches {via})"
                    )
            handle(taint, target)

    @staticmethod
    def _callee_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None


@register_project
class IdTaint(ProjectChecker):
    """INT003: interprocedural token-taint into the hot registry."""

    rules = (
        Rule(
            "INT003",
            "token-level value (SymbolTable decode) flows into an"
            " interned hot-path function",
        ),
    )

    #: Fixed-point bound; summaries are monotone so this is a safety
    #: net, not a tuning knob (real chains settle in 2-3 rounds).
    MAX_ROUNDS = 8

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        summaries: dict[tuple[str, str], FnSummary] = {
            (fn.module, fn.qualname): FnSummary()
            for _, fn in project.iter_functions()
        }
        for _ in range(self.MAX_ROUNDS):
            before = {
                key: summary.snapshot()
                for key, summary in summaries.items()
            }
            for info, fn in project.iter_functions():
                _TaintPass(project, info, fn, summaries, None).run()
            after = {
                key: summary.snapshot()
                for key, summary in summaries.items()
            }
            if after == before:
                break
        emitted: list[tuple[ModuleInfo, ast.AST, str]] = []
        for info, fn in project.iter_functions():
            _TaintPass(project, info, fn, summaries, emitted).run()
        seen: set[tuple[str, int, int, str]] = set()
        for info, node, message in emitted:
            key = (
                info.path,
                int(getattr(node, "lineno", 1)),
                int(getattr(node, "col_offset", 0)),
                message,
            )
            if key in seen:
                continue
            seen.add(key)
            yield self.finding_at(info, node, "INT003", message)


@register_project
class ShardEscape(ProjectChecker):
    """POOL003: shard helpers writing module globals, one level deep."""

    rules = (
        Rule(
            "POOL003",
            "shard function calls a helper that writes module globals",
        ),
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.infos:
            tree = info.tree
            if tree is None:
                continue
            shards = dispatched_shard_functions(tree, info.imports)
            for shard_name in sorted(shards):
                shard_fn = info.functions.get(shard_name)
                if shard_fn is None:
                    continue
                yield from self._check_shard(project, info, shard_fn)

    def _check_shard(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        shard_fn: FunctionInfo,
    ) -> Iterator[Finding]:
        reported: set[tuple[str, str]] = set()
        for node in ast.walk(shard_fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_function(info, node.func, shard_fn)
            if callee is None or (
                callee.module == shard_fn.module
                and callee.qualname == shard_fn.qualname
            ):
                continue
            owner = project.by_module.get(callee.module)
            if owner is None or owner.tree is None:
                continue
            key = (callee.module, callee.qualname)
            if key in reported:
                continue
            owner_globals = module_level_assignments(owner.tree)
            sites = list(
                global_write_sites(callee.node, owner_globals)
            )
            if not sites:
                continue
            reported.add(key)
            _, what = sites[0]
            where = (
                ""
                if callee.module == info.module
                else f" in {callee.module}"
            )
            yield self.finding_at(
                info,
                node,
                "POOL003",
                f"shard function {shard_fn.qualname}() calls"
                f" {callee.qualname}(){where}, which {what}; the write"
                " happens in the worker's forked copy and is lost at"
                " join, diverging from the serial path",
            )


@register_project
class StageEscape(ProjectChecker):
    """PIPE002: stage state escaping through helpers or closures."""

    rules = (
        Rule(
            "PIPE002",
            "pipeline stage reaches module-global or closure-captured"
            " mutable state through a call",
        ),
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.infos:
            tree = info.tree
            if tree is None:
                continue
            for stage in stage_definitions(tree, info.imports):
                yield from self._check_stage_calls(project, info, stage)
            yield from self._check_closure_stages(info, tree)

    # -- one level of calls ---------------------------------------------

    def _check_stage_calls(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        stage: "ast.ClassDef | _AnyFunc",
    ) -> Iterator[Finding]:
        kind = stage_kind(stage)
        reported: set[tuple[str, str]] = set()
        if isinstance(stage, ast.ClassDef):
            scopes = [
                info.functions.get(f"{stage.name}.{item.name}")
                for item in stage.body
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            ]
        else:
            scopes = [info.functions.get(stage.name)]
        for scope in scopes:
            if scope is None:
                continue
            for node in ast.walk(scope.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_function(info, node.func, scope)
                if callee is None:
                    continue
                if (
                    isinstance(stage, ast.ClassDef)
                    and callee.class_name == stage.name
                ):
                    continue  # intra-stage method: PIPE001 territory
                if callee.qualname == scope.qualname and (
                    callee.module == scope.module
                ):
                    continue
                owner = project.by_module.get(callee.module)
                if owner is None or owner.tree is None:
                    continue
                key = (callee.module, callee.qualname)
                if key in reported:
                    continue
                touched = self._touched_mutable_global(
                    callee.node,
                    mutable_module_globals(owner.tree, owner.imports),
                )
                if touched is None:
                    continue
                reported.add(key)
                where = (
                    ""
                    if callee.module == info.module
                    else f" in {callee.module}"
                )
                yield self.finding_at(
                    info,
                    node,
                    "PIPE002",
                    f"{kind} {stage.name} calls {callee.qualname}()"
                    f"{where}, which touches module-global mutable"
                    f" '{touched}'; state hidden behind a helper still"
                    " survives a checkpoint rebuild and breaks"
                    " bit-identical resume",
                )

    @staticmethod
    def _touched_mutable_global(
        func: _AnyFunc, mutable_globals: set[str]
    ) -> Optional[str]:
        shadowed = {
            a.arg
            for a in func.args.posonlyargs
            + func.args.args
            + func.args.kwonlyargs
        }
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                for name in node.names:
                    return name
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable_globals
                and node.id not in shadowed
            ):
                return node.id
        return None

    # -- closure-captured state -----------------------------------------

    def _check_closure_stages(
        self, info: ModuleInfo, tree: ast.Module
    ) -> Iterator[Finding]:
        from repro.devtools.rules.pipeline import STAGE_FACTORIES

        enclosing = enclosing_function_map(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and info.imports.resolve(node.func) in STAGE_FACTORIES
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                continue
            scope = enclosing.get(node)
            if scope is None:
                continue
            target = node.args[0].id
            nested = next(
                (
                    child
                    for child in ast.walk(scope)
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and child.name == target
                    and enclosing.get(child) is scope
                ),
                None,
            )
            if nested is None:
                continue
            captured = self._captured_mutables(scope, nested, info)
            for name in sorted(captured):
                yield self.finding_at(
                    info,
                    node,
                    "PIPE002",
                    f"stage function {target} is a closure over mutable"
                    f" '{name}' from {scope.name}(); captured state is"
                    " invisible to checkpoint/resume and diverges the"
                    " rebuilt stage",
                )

    @staticmethod
    def _captured_mutables(
        scope: _AnyFunc, nested: _AnyFunc, info: ModuleInfo
    ) -> set[str]:
        mutable_locals: set[str] = set()
        for stmt in ast.walk(scope):
            if stmt is nested or isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and stmt is not scope:
                continue
            if isinstance(stmt, ast.Assign) and is_mutable_value(
                stmt.value, info.imports
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mutable_locals.add(target.id)
        own = {
            a.arg
            for a in nested.args.posonlyargs
            + nested.args.args
            + nested.args.kwonlyargs
        }
        own.update(
            t.id
            for n in ast.walk(nested)
            if isinstance(n, ast.Assign)
            for t in n.targets
            if isinstance(t, ast.Name)
        )
        captured: set[str] = set()
        for node in ast.walk(nested):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable_locals
                and node.id not in own
            ):
                captured.add(node.id)
        return captured
