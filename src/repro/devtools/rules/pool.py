"""POOL001–POOL002: fork-pool safety for ``repro.perf`` call sites.

:func:`repro.perf.pool.map_shards` is the single dispatch point for
every parallel hot path, which makes the safety contract checkable:
the dispatched callable must be resolvable at module level (lambdas
and closures break picklability the day the start method is not
``fork``, and closure state silently diverges between workers), and a
shard function must not write module globals — writes land in the
child's copy-on-write image under fork and vanish at join, so the
serial and parallel paths compute different things: exactly the
divergence the equivalence tests exist to rule out.

The building blocks (dispatch-site discovery, callable resolution
through ``functools.partial`` and single-assignment locals, the
global-write scan) are module-level functions so the whole-program
escape rule (POOL003 in :mod:`repro.devtools.rules.taint`) can apply
the same contract one call level deeper without re-implementing it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.devtools.astutil import (
    ImportMap,
    enclosing_function_map,
    module_level_assignments,
    module_level_names,
    root_name,
)
from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Fully-qualified names that count as the pool dispatch point.
DISPATCH_POINTS = frozenset(
    {"repro.perf.map_shards", "repro.perf.pool.map_shards"}
)

#: ``functools.partial`` is the blessed way to bind shard parameters;
#: resolution looks through it at the underlying callable.
_PARTIAL = frozenset({"functools.partial", "partial"})

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "subtract",
    }
)

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dispatch_sites(
    tree: ast.Module, imports: ImportMap
) -> Iterator[ast.Call]:
    """Every ``map_shards(...)`` call in the module."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and imports.resolve(node.func) in DISPATCH_POINTS
            and node.args
        ):
            yield node


def resolve_callable(
    node: ast.AST,
    scope: Optional[_AnyFunc],
    imports: ImportMap,
) -> ast.AST:
    """Chase partials and single-assignment locals to the callable.

    The repo's idiom binds ``partial(module_fn, ...)`` to a local
    before dispatching it; following that assignment keeps the rules
    about the *underlying* callable, not the binding style. Only a
    name assigned exactly once in the enclosing function is chased
    — a rebound name stays opaque and fails module-level
    resolution, which is the safe direction.
    """
    for _ in range(8):  # alias chains are short; bound to be safe
        while (
            isinstance(node, ast.Call)
            and imports.resolve(node.func) in _PARTIAL
            and node.args
        ):
            node = node.args[0]
        if not isinstance(node, ast.Name) or scope is None:
            return node
        assignments = [
            stmt.value
            for stmt in ast.walk(scope)
            if isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == node.id
                for t in stmt.targets
            )
        ]
        if len(assignments) != 1:
            return node
        node = assignments[0]
    return node


def dispatched_shard_functions(
    tree: ast.Module, imports: ImportMap
) -> dict[str, _AnyFunc]:
    """Module-level functions dispatched through the pool, by name."""
    module_defs = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    enclosing = enclosing_function_map(tree)
    shards: dict[str, _AnyFunc] = {}
    for call in dispatch_sites(tree, imports):
        target = resolve_callable(
            call.args[0], enclosing.get(call), imports
        )
        if isinstance(target, ast.Name) and target.id in module_defs:
            shards.setdefault(target.id, module_defs[target.id])
    return shards


def global_write_sites(
    func: _AnyFunc, module_globals: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    """Every write to module-global state inside *func*.

    Yields ``(node, description)`` pairs: ``global`` declarations,
    subscript/attribute stores rooted at a module-level name, and
    mutator-method calls on one. Shared by POOL002 (direct writes in a
    shard) and POOL003 (writes one call level down).
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            yield node, f"declares global {', '.join(node.names)}"
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                written = _global_container_write(target, module_globals)
                if written is not None:
                    yield node, f"writes into module global '{written}'"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            head = root_name(node.func.value)
            if head is not None and head in module_globals:
                yield (
                    node,
                    f"mutates module global '{head}'"
                    f" via .{node.func.attr}()",
                )


def _global_container_write(
    target: ast.AST, module_globals: set[str]
) -> Optional[str]:
    """Module-global name written through a subscript/attribute."""
    if not isinstance(target, (ast.Subscript, ast.Attribute)):
        return None
    head = root_name(target)
    if head is not None and head in module_globals:
        return head
    return None


@register
class PoolSafety(Checker):
    """POOL001 + POOL002 over ``map_shards`` call sites in a module."""

    rules = (
        Rule(
            "POOL001",
            "callable dispatched through repro.perf.pool is not"
            " module-level",
        ),
        Rule(
            "POOL002",
            "shard function dispatched through repro.perf.pool writes"
            " module globals",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ctx.imports
        module_names = module_level_names(ctx.tree)
        module_defs = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_globals = module_level_assignments(ctx.tree)
        enclosing = enclosing_function_map(ctx.tree)
        checked_shards: set[str] = set()
        for node in dispatch_sites(ctx.tree, imports):
            target = resolve_callable(
                node.args[0], enclosing.get(node), imports
            )
            problem = self._non_module_level(target, module_names, imports)
            if problem is not None:
                yield self.finding(
                    ctx,
                    node.args[0],
                    "POOL001",
                    f"map_shards() callable {problem}; fork-pool callables"
                    " must be module-level functions so workers can"
                    " re-resolve them by qualified name",
                )
                continue
            if isinstance(target, ast.Name) and target.id in module_defs:
                if target.id in checked_shards:
                    continue
                checked_shards.add(target.id)
                shard = module_defs[target.id]
                for site, what in global_write_sites(
                    shard, module_globals
                ):
                    if what.startswith("declares global"):
                        consequence = (
                            "writes are lost at fork-pool join and"
                            " diverge from the serial path"
                        )
                    else:
                        consequence = (
                            "per-worker copies silently diverge under fork"
                        )
                    yield self.finding(
                        ctx,
                        site,
                        "POOL002",
                        f"shard function {shard.name}() {what};"
                        f" {consequence}",
                    )

    @staticmethod
    def _non_module_level(
        node: ast.AST, module_names: set[str], imports: ImportMap
    ) -> Optional[str]:
        """Why *node* is not a module-level callable, or None if it is."""
        if isinstance(node, ast.Lambda):
            return "is a lambda"
        if isinstance(node, ast.Name):
            if node.id in module_names:
                return None
            return f"'{node.id}' is not bound at module level"
        if isinstance(node, ast.Attribute):
            head = root_name(node)
            if head is not None and (
                head in imports.aliases or head in module_names
            ):
                return None  # module.func or ModuleLevelClass.method
            return "is an attribute of a runtime object"
        if isinstance(node, ast.Call):
            return "is built by a call expression"
        return "cannot be resolved to a module-level function"
