"""POOL001–POOL002: fork-pool safety for ``repro.perf`` call sites.

:func:`repro.perf.pool.map_shards` is the single dispatch point for
every parallel hot path, which makes the safety contract checkable:
the dispatched callable must be resolvable at module level (lambdas
and closures break picklability the day the start method is not
``fork``, and closure state silently diverges between workers), and a
shard function must not write module globals — writes land in the
child's copy-on-write image under fork and vanish at join, so the
serial and parallel paths compute different things: exactly the
divergence the equivalence tests exist to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.astutil import (
    ImportMap,
    module_level_assignments,
    module_level_names,
    root_name,
)
from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Fully-qualified names that count as the pool dispatch point.
_DISPATCH = frozenset(
    {"repro.perf.map_shards", "repro.perf.pool.map_shards"}
)

#: ``functools.partial`` is the blessed way to bind shard parameters;
#: the rule looks through it at the underlying callable.
_PARTIAL = frozenset({"functools.partial", "partial"})

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
        "subtract",
    }
)


@register
class PoolSafety(Checker):
    """POOL001 + POOL002 over ``map_shards`` call sites in a module."""

    rules = (
        Rule(
            "POOL001",
            "callable dispatched through repro.perf.pool is not"
            " module-level",
        ),
        Rule(
            "POOL002",
            "shard function dispatched through repro.perf.pool writes"
            " module globals",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        module_names = module_level_names(ctx.tree)
        module_defs = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_globals = module_level_assignments(ctx.tree)
        enclosing = self._enclosing_functions(ctx.tree)
        checked_shards: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if imports.resolve(node.func) not in _DISPATCH:
                continue
            if not node.args:
                continue
            target = self._resolve_callable(
                node.args[0], enclosing.get(node), imports
            )
            problem = self._non_module_level(target, module_names, imports)
            if problem is not None:
                yield self.finding(
                    ctx,
                    node.args[0],
                    "POOL001",
                    f"map_shards() callable {problem}; fork-pool callables"
                    " must be module-level functions so workers can"
                    " re-resolve them by qualified name",
                )
                continue
            if isinstance(target, ast.Name) and target.id in module_defs:
                if target.id in checked_shards:
                    continue
                checked_shards.add(target.id)
                yield from self._check_shard_writes(
                    ctx, module_defs[target.id], module_globals
                )

    @staticmethod
    def _enclosing_functions(
        tree: ast.Module,
    ) -> dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every node → its nearest enclosing function, for local lookup."""
        enclosing: dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef] = {}

        def fill(
            node: ast.AST,
            current: Optional[ast.FunctionDef | ast.AsyncFunctionDef],
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if current is not None:
                    enclosing[child] = current
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    fill(child, child)
                else:
                    fill(child, current)

        fill(tree, None)
        return enclosing

    def _resolve_callable(
        self,
        node: ast.AST,
        scope: Optional[ast.FunctionDef | ast.AsyncFunctionDef],
        imports: ImportMap,
    ) -> ast.AST:
        """Chase partials and single-assignment locals to the callable.

        The repo's idiom binds ``partial(module_fn, ...)`` to a local
        before dispatching it; following that assignment keeps the rule
        about the *underlying* callable, not the binding style. Only a
        name assigned exactly once in the enclosing function is chased
        — a rebound name stays opaque and fails module-level
        resolution, which is the safe direction.
        """
        for _ in range(8):  # alias chains are short; bound to be safe
            while (
                isinstance(node, ast.Call)
                and imports.resolve(node.func) in _PARTIAL
                and node.args
            ):
                node = node.args[0]
            if not isinstance(node, ast.Name) or scope is None:
                return node
            assignments = [
                stmt.value
                for stmt in ast.walk(scope)
                if isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == node.id
                    for t in stmt.targets
                )
            ]
            if len(assignments) != 1:
                return node
            node = assignments[0]
        return node

    @staticmethod
    def _non_module_level(
        node: ast.AST, module_names: set[str], imports: ImportMap
    ) -> Optional[str]:
        """Why *node* is not a module-level callable, or None if it is."""
        if isinstance(node, ast.Lambda):
            return "is a lambda"
        if isinstance(node, ast.Name):
            if node.id in module_names:
                return None
            return f"'{node.id}' is not bound at module level"
        if isinstance(node, ast.Attribute):
            head = root_name(node)
            if head is not None and (
                head in imports.aliases or head in module_names
            ):
                return None  # module.func or ModuleLevelClass.method
            return "is an attribute of a runtime object"
        if isinstance(node, ast.Call):
            return "is built by a call expression"
        return "cannot be resolved to a module-level function"

    def _check_shard_writes(
        self,
        ctx: ModuleContext,
        shard: ast.FunctionDef | ast.AsyncFunctionDef,
        module_globals: set[str],
    ) -> Iterator[Finding]:
        """POOL002: no global declarations or global-container writes."""
        for node in ast.walk(shard):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    "POOL002",
                    f"shard function {shard.name}() declares"
                    f" global {', '.join(node.names)}; writes are lost at"
                    " fork-pool join and diverge from the serial path",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    written = self._global_container_write(
                        target, module_globals
                    )
                    if written is not None:
                        yield self.finding(
                            ctx,
                            node,
                            "POOL002",
                            f"shard function {shard.name}() writes into"
                            f" module global '{written}'; per-worker"
                            " copies silently diverge under fork",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                head = root_name(node.func.value)
                if head is not None and head in module_globals:
                    yield self.finding(
                        ctx,
                        node,
                        "POOL002",
                        f"shard function {shard.name}() mutates module"
                        f" global '{head}' via .{node.func.attr}();"
                        " per-worker copies silently diverge under fork",
                    )

    @staticmethod
    def _global_container_write(
        target: ast.AST, module_globals: set[str]
    ) -> Optional[str]:
        """Module-global name written through a subscript/attribute."""
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return None
        head = root_name(target)
        if head is not None and head in module_globals:
            return head
        return None
