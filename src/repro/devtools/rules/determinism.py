"""DET001–DET003: the output-determinism rules.

The repro's results are compared bit-for-bit across worker counts and
runs (Table I equivalence tests), so every source of run-to-run
variation in an algorithm module is a reproduction bug waiting for a
code path to reach it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.astutil import ImportMap
from repro.devtools.findings import Edit, Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Packages holding the paper's algorithms: anything nondeterministic
#: here changes published numbers. Simulators are exempt — they own
#: seeded randomness by design.
ALGORITHM_PACKAGES = (
    "repro.stemming",
    "repro.tamp",
    "repro.collector",
    "repro.net",
)

#: Wall-clock and monotonic-clock reads: both vary run to run.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The one blessed entry into the random module: an explicitly seeded
#: generator instance. Everything else (module-level functions, the
#: OS-entropy SystemRandom) is nondeterministic.
_SEEDED_FACTORY = "random.Random"


@register
class UnseededEntropy(Checker):
    """DET001: unseeded randomness / clock reads in algorithm modules."""

    rules = (
        Rule(
            "DET001",
            "unseeded random or wall-clock call in an algorithm module",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(ALGORITHM_PACKAGES):
            return
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None or resolved == _SEEDED_FACTORY:
                continue
            head = resolved.split(".", 1)[0]
            if resolved in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    "DET001",
                    f"{resolved}() reads the clock; algorithm results must"
                    " not depend on when they run — take timestamps from"
                    " the event stream or inject them",
                )
            elif head == "random":
                yield self.finding(
                    ctx,
                    node,
                    "DET001",
                    f"{resolved}() draws from unseeded global state; use"
                    " an explicitly seeded random.Random instance",
                )


#: Call expressions whose value is an unordered collection.
_UNORDERED_FACTORIES = frozenset({"set", "frozenset"})

#: Method names returning unordered (or insertion-order-dependent)
#: collections in this codebase. ``values`` covers dict/Counter views:
#: insertion order is real order, but it varies with shard merge order
#: under different worker counts — exactly the variation PR 1's
#: bit-for-bit claim forbids. The rest are the TampGraph set-returning
#: accessors.
_UNORDERED_METHODS = frozenset(
    {
        "values",
        "nodes",
        "children",
        "parents",
        "all_prefixes",
        "edge_prefixes",
    }
)

#: Consumers whose result does not depend on iteration order — an
#: unordered expression may flow into these freely.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "sum",
        "max",
        "min",
        "any",
        "all",
        "len",
        "Counter",
        "collections.Counter",
    }
)

#: Calls that materialize their argument's iteration order.
_ORDERED_CALL_SINKS = frozenset({"list", "tuple", "enumerate"})

#: List-mutators that make a bare ``for`` loop an ordered sink.
_APPENDERS = frozenset({"append", "extend", "insert"})


@register
class UnorderedIteration(Checker):
    """DET002: unordered iteration feeding ordered output.

    Flags a statically-recognizable unordered expression (set literal,
    set comprehension, ``set()``/``frozenset()`` call, ``.values()`` or
    a TampGraph set accessor) whose iteration order escapes into an
    ordered artifact: ``join``, ``list``/``tuple``/``enumerate``, a
    list comprehension, or a ``for`` loop that appends or yields. The
    fix is an enclosing ``sorted()``; order-insensitive consumers
    (``sum``, ``max``, ``set`` …) never fire.
    """

    rules = (
        Rule(
            "DET002",
            "unordered iteration (set / dict.values) feeds ordered output"
            " without sorted()",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents = ctx.parents
        imports = ctx.imports
        for node in ast.walk(ctx.tree):
            if not self._is_unordered(node):
                continue
            sink = self._ordered_sink(node, parents, imports)
            if sink is not None:
                yield self.finding(
                    ctx,
                    node,
                    "DET002",
                    f"iteration order of this unordered value reaches {sink};"
                    " wrap it in sorted(...) or consume it"
                    " order-insensitively",
                    fix=self._sorted_fix(node),
                )

    @staticmethod
    def _sorted_fix(node: ast.AST) -> tuple[Edit, ...]:
        """Wrap the unordered expression in ``sorted(...)`` in place."""
        end_line = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if end_line is None or end_col is None:
            return ()
        return (
            Edit(
                start_line=node.lineno,
                start_col=node.col_offset,
                end_line=node.lineno,
                end_col=node.col_offset,
                replacement="sorted(",
            ),
            Edit(
                start_line=end_line,
                start_col=end_col,
                end_line=end_line,
                end_col=end_col,
                replacement=")",
            ),
        )

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return func.id in _UNORDERED_FACTORIES
            if isinstance(func, ast.Attribute):
                return func.attr in _UNORDERED_METHODS
        return False

    def _ordered_sink(
        self,
        node: ast.AST,
        parents: dict[ast.AST, ast.AST],
        imports: ImportMap,
    ) -> Optional[str]:
        """Name of the ordered sink *node* flows into, or None if safe."""
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            return self._call_sink(parent, imports)
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            comp = parents.get(parent)
            if isinstance(comp, ast.ListComp):
                if self._consumed_insensitively(comp, parents, imports):
                    return None
                return "a list comprehension"
            if isinstance(comp, ast.GeneratorExp):
                outer = parents.get(comp)
                if isinstance(outer, ast.Call) and comp in outer.args:
                    return self._call_sink(outer, imports)
                return None
            return None  # set/dict comprehensions stay unordered
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            if self._loop_accumulates(parent):
                return "an appending/yielding for loop"
            return None
        return None

    @staticmethod
    def _call_sink(call: ast.Call, imports: ImportMap) -> Optional[str]:
        """Classify the call consuming an unordered argument."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "join":
            return "str.join"
        resolved = imports.resolve(func)
        if resolved in _ORDER_INSENSITIVE_CALLS:
            return None
        if resolved in _ORDERED_CALL_SINKS:
            return f"{resolved}()"
        return None  # unknown callee: default-allow

    def _consumed_insensitively(
        self,
        comp: ast.ListComp,
        parents: dict[ast.AST, ast.AST],
        imports: ImportMap,
    ) -> bool:
        """True when a list comprehension is itself order-insensitively
        consumed, e.g. ``sorted([... for x in s])``."""
        outer = parents.get(comp)
        if isinstance(outer, ast.Call) and comp in outer.args:
            return self._call_sink(outer, imports) is None and (
                imports.resolve(outer.func) in _ORDER_INSENSITIVE_CALLS
            )
        return False

    @staticmethod
    def _loop_accumulates(loop: ast.For | ast.AsyncFor) -> bool:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _APPENDERS
                ):
                    return True
        return False


@register
class IdentityOrdering(Checker):
    """DET003: ``id()`` used anywhere in analyzed code.

    Object addresses differ between runs and between forked workers;
    any key, sort, or dedup built on ``id()`` is nondeterministic by
    construction. The rule flags every call — the rare legitimate use
    (within-pass object identity) should prefer an explicit marker
    object or dict keyed by the object itself, or carry a justified
    suppression.
    """

    rules = (Rule("DET003", "id()-based keys or ordering"),)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "id":
                yield self.finding(
                    ctx,
                    node,
                    "DET003",
                    "id() is address-dependent and varies across runs and"
                    " forked workers; key or order by stable identity",
                )
            for keyword in node.keywords:
                # sorted(xs, key=id) passes the builtin by reference —
                # no call node, same hazard.
                if (
                    keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == "id"
                ):
                    yield self.finding(
                        ctx,
                        keyword.value,
                        "DET003",
                        "ordering by id() sorts by object address, which"
                        " varies across runs and forked workers",
                    )
