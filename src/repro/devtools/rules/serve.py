"""SRV001: serve handlers read snapshots, never live pipeline state.

The serve layer's consistency contract (DESIGN.md §14) is that HTTP
handlers only ever observe shard state at a batch boundary, through
the snapshot surface — :class:`~repro.serve.snapshot.SnapshotHub`,
:meth:`~repro.serve.sharding.ShardSet.incident_rows` and friends. The
live pipeline objects (``Pipeline``, ``WindowedStemmer``,
``TampAnnotator``, ``IncidentManager``) are held behind
``live_``-prefixed attributes in the sharding layer precisely so the
boundary is mechanically checkable: any ``x.live_something`` access
outside the sanctioned modules is a handler reaching into state that
mutates mid-request — a torn read today, a race the moment serving
and feeding ever run on different threads.

Scope: modules inside ``repro.serve``. Sanctioned:
``repro.serve.sharding`` (it *owns* the live state) and
``repro.serve.snapshot`` (the one reader allowed to cross the
boundary to build snapshots).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import Checker, ModuleContext, register

#: Modules allowed to touch ``live_*`` attributes: the live-state
#: owner and the snapshot builder.
SANCTIONED_MODULES = (
    "repro.serve.sharding",
    "repro.serve.snapshot",
)

_REMEDY = (
    " — read through the snapshot surface (SnapshotHub.snapshot(),"
    " ShardSet.version()/incident_rows()/status()) instead"
)


@register
class ServeSnapshotDiscipline(Checker):
    """SRV001 over live-state reads in serve-layer modules."""

    rules = (
        Rule(
            "SRV001",
            "serve-layer code reads live pipeline state instead of"
            " the snapshot surface",
        ),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(("repro.serve",)):
            return
        if ctx.module in SANCTIONED_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not node.attr.startswith("live_"):
                continue
            owner = ast.unparse(node.value)
            yield self.finding(
                ctx,
                node,
                "SRV001",
                f"access to {owner}.{node.attr} crosses the snapshot"
                " boundary: live pipeline state mutates between"
                " batches" + _REMEDY,
            )
