"""Determinism & parallel-safety static analysis (``repro lint``).

PR 1 made the repo's core correctness claim *results are bit-for-bit
identical regardless of worker count*. Nothing in the runtime enforces
that claim: a single unsorted ``set`` iteration feeding the SVG
renderer, a closure handed to the fork pool, or a ``TampGraph`` mutator
that forgets to invalidate the ``total_prefixes()`` cache would
silently skew the Table I numbers while every unit test of the touched
module still passes. This package proves those invariants at lint time
with a stdlib-``ast`` analyzer:

* a small checker framework (:mod:`repro.devtools.registry`) — one
  checker class per invariant family, registered by decorator;
* per-line suppression via ``# repro: allow[RULE]`` comments
  (:mod:`repro.devtools.suppress`), so a justified exception is an
  explicit, reviewable artifact rather than a disabled rule;
* text and JSON reporters (:mod:`repro.devtools.reporters`) — the JSON
  form is the CI artifact;
* the rule catalog under :mod:`repro.devtools.rules` (DET001–DET003,
  POOL001–POOL002, MUT001, CACHE001 — see ``repro lint --list-rules``
  or the DESIGN.md rule catalog for one paragraph per rule).

Three consumers: the ``repro lint`` CLI subcommand (exit-code gate),
the tier-1 self-lint test (``tests/devtools/test_self_lint.py``) which
runs the analyzer over ``src/repro`` itself, and the fixture corpus
tests asserting each rule's findings and suppressions.
"""

from __future__ import annotations

from repro.devtools.engine import (
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.devtools.findings import Finding, Rule
from repro.devtools.registry import all_checkers, rule_catalog
from repro.devtools.reporters import render_json, render_text

__all__ = [
    "Finding",
    "Rule",
    "all_checkers",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "render_json",
    "render_text",
    "rule_catalog",
]
