"""Determinism & parallel-safety static analysis (``repro lint``).

PR 1 made the repo's core correctness claim *results are bit-for-bit
identical regardless of worker count*. Nothing in the runtime enforces
that claim: a single unsorted ``set`` iteration feeding the SVG
renderer, a closure handed to the fork pool, or a ``TampGraph`` mutator
that forgets to invalidate the ``total_prefixes()`` cache would
silently skew the Table I numbers while every unit test of the touched
module still passes. This package proves those invariants at lint time
with a stdlib-``ast`` analyzer:

* a checker framework (:mod:`repro.devtools.registry`) — one checker
  class per invariant family, registered by decorator; per-module
  checkers see one file, project checkers see the whole program;
* a project layer (:mod:`repro.devtools.project`) — every file parsed
  once into a :class:`ModuleInfo`, an import graph and cross-module
  symbol index over them, so interprocedural rules (INT003, POOL003,
  PIPE002 in :mod:`repro.devtools.rules.taint`) can resolve calls
  across files without type inference;
* an incremental cache (:mod:`repro.devtools.cache`) — content hashes
  plus import-graph invalidation under ``.repro-lint-cache/``; a warm
  run re-analyzes only changed files and their transitive dependents;
* autofix (:mod:`repro.devtools.fixes`) — span-based edits attached to
  findings (MUT001, DET002), applied atomically by ``repro lint
  --fix`` and verified by a re-lint; ``--fix-suppress RULE`` inserts
  justification-stub suppression comments instead;
* per-line suppression via ``# repro: allow[RULE]`` comments
  (:mod:`repro.devtools.suppress`), so a justified exception is an
  explicit, reviewable artifact rather than a disabled rule;
* text, JSON and SARIF reporters (:mod:`repro.devtools.reporters`) —
  the JSON form is the CI artifact, the SARIF form feeds code-scanning
  UIs;
* the rule catalog under :mod:`repro.devtools.rules` (DET001–DET003,
  POOL001–POOL003, MUT001, CACHE001, TK001, PIPE001–PIPE002,
  INT001–INT003 — see ``repro lint --list-rules`` or the DESIGN.md
  rule catalog for one paragraph per rule).

Three consumers: the ``repro lint`` CLI subcommand (exit-code gate),
the tier-1 self-lint test (``tests/devtools/test_self_lint.py``) which
runs the analyzer over ``src/repro`` itself, and the fixture corpus
tests asserting each rule's findings and suppressions.
"""

from __future__ import annotations

from repro.devtools.cache import LintCache
from repro.devtools.engine import (
    ProjectReport,
    analyze_file,
    analyze_paths,
    analyze_project,
    analyze_source,
    changed_paths,
    iter_python_files,
)
from repro.devtools.findings import Edit, Finding, Rule
from repro.devtools.fixes import FixReport, apply_edits, fix_paths
from repro.devtools.project import ProjectContext, build_project
from repro.devtools.registry import all_checkers, all_project_checkers, rule_catalog
from repro.devtools.reporters import render_json, render_sarif, render_text

__all__ = [
    "Edit",
    "Finding",
    "FixReport",
    "LintCache",
    "ProjectContext",
    "ProjectReport",
    "Rule",
    "all_checkers",
    "all_project_checkers",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "apply_edits",
    "build_project",
    "changed_paths",
    "fix_paths",
    "iter_python_files",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_catalog",
]
