"""Incremental lint cache: content hashes + import-graph invalidation.

A warm full-repo lint should pay only for what changed. The unit of
caching is one analyzed file; an entry is valid when three signatures
all match:

* ``file_sha`` — SHA-256 of the file's bytes: a content change busts
  the file itself;
* ``deps_sig`` — SHA-256 over the sorted ``(module, file_sha)`` pairs
  of the file **and its transitive project imports**: when a
  dependency changes, every transitive dependent re-analyzes. This is
  the sound invalidation domain for the whole-program rules, because
  every cross-module fact they use (return-taint summaries, hot-reach
  summaries, helper bodies) resolves strictly through imports — the
  taint rules deliberately anchor findings at the call site where a
  tainted value *enters* a callee, precisely so a file's findings
  never depend on its callers;
* ``ruleset_sig`` — the analyzer signature (SHA-256 over the
  ``repro.devtools`` sources, so editing any rule busts everything)
  plus the selected rule ids: ``--rules DET002`` and a full run never
  share entries.

Entries also persist each file's resolved import list, so a warm run
can rebuild the import graph — and therefore every ``deps_sig`` —
without parsing unchanged files; with zero changes the whole run is
hashing plus one JSON read.

Storage is one versioned JSON blob under ``.repro-lint-cache/``
(git-ignored), written atomically; a corrupt or version-mismatched
blob is discarded wholesale rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.devtools.findings import Edit, Finding

#: Bumped when the entry shape changes; mismatched blobs are dropped.
CACHE_FORMAT = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".repro-lint-cache")

_CACHE_FILE = "cache.json"


def file_sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def analyzer_signature() -> str:
    """SHA-256 over the analyzer's own sources.

    Any edit to the engine or a rule module changes every cache key:
    the cache must never serve findings computed by a different
    analyzer. Computed once per process.
    """
    global _ANALYZER_SIG
    if _ANALYZER_SIG is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(str(path.relative_to(package_dir)).encode())
            digest.update(path.read_bytes())
        _ANALYZER_SIG = digest.hexdigest()
    return _ANALYZER_SIG


_ANALYZER_SIG: Optional[str] = None


def ruleset_signature(rules: Optional[set[str]]) -> str:
    """Analyzer signature + the selected rule ids."""
    selected = "ALL" if rules is None else ",".join(sorted(rules))
    return file_sha(f"{analyzer_signature()}|{selected}".encode())


def deps_signature(pairs: Sequence[tuple[str, str]]) -> str:
    """Signature over sorted ``(module, file_sha)`` dependency pairs."""
    payload = "\n".join(f"{m} {s}" for m, s in sorted(pairs))
    return file_sha(payload.encode())


def _finding_to_json(finding: Finding) -> dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
        "fix": [
            [e.start_line, e.start_col, e.end_line, e.end_col, e.replacement]
            for e in finding.fix
        ],
    }


def _finding_from_json(payload: dict[str, Any]) -> Finding:
    return Finding(
        path=payload["path"],
        line=payload["line"],
        col=payload["col"],
        rule=payload["rule"],
        message=payload["message"],
        fix=tuple(
            Edit(
                start_line=edit[0],
                start_col=edit[1],
                end_line=edit[2],
                end_col=edit[3],
                replacement=edit[4],
            )
            for edit in payload.get("fix", [])
        ),
    )


class LintCache:
    """The per-file entry store plus hit/miss accounting for one run."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict[str, Any]] = {}
        self._dirty = False
        self._load()

    # -- persistence ----------------------------------------------------

    def _load(self) -> None:
        blob_path = self.directory / _CACHE_FILE
        try:
            blob = json.loads(blob_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(blob, dict):
            return
        if blob.get("format") != CACHE_FORMAT:
            return
        if blob.get("analyzer") != analyzer_signature():
            # A different analyzer wrote this; every entry is suspect.
            return
        entries = blob.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = {
            "format": CACHE_FORMAT,
            "analyzer": analyzer_signature(),
            "entries": self._entries,
        }
        payload = json.dumps(blob, indent=1, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".cache-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.directory / _CACHE_FILE)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._dirty = False

    # -- warm-path helpers ----------------------------------------------

    def imports_for(
        self, path: str, sha: str
    ) -> Optional[tuple[str, ...]]:
        """The stored import list for an unchanged file, if any — lets
        the engine place the file in the import graph without parsing."""
        entry = self._entries.get(path)
        if entry is None or entry.get("file_sha") != sha:
            return None
        imports = entry.get("imports")
        if isinstance(imports, list):
            return tuple(imports)
        return None

    def lookup(
        self, path: str, sha: str, deps_sig: str, ruleset_sig: str
    ) -> Optional[list[Finding]]:
        entry = self._entries.get(path)
        if (
            entry is None
            or entry.get("file_sha") != sha
            or entry.get("deps_sig") != deps_sig
            or entry.get("ruleset_sig") != ruleset_sig
        ):
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_json(f) for f in entry.get("findings", [])]

    def store(
        self,
        path: str,
        sha: str,
        deps_sig: str,
        ruleset_sig: str,
        imports: Sequence[str],
        findings: Sequence[Finding],
    ) -> None:
        self._entries[path] = {
            "file_sha": sha,
            "deps_sig": deps_sig,
            "ruleset_sig": ruleset_sig,
            "imports": list(imports),
            "findings": [_finding_to_json(f) for f in findings],
        }
        self._dirty = True

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer analyzed (deleted/renamed)."""
        live = set(live_paths)
        stale = [path for path in self._entries if path not in live]
        for path in stale:
            del self._entries[path]
            self._dirty = True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats_line(self) -> str:
        return (
            f"lint cache: {self.hits} hit(s), {self.misses} miss(es)"
            f" ({self.hit_rate:.0%} hit rate)"
        )
