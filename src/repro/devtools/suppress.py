"""``# repro: allow[RULE]`` suppression comments.

Suppression is per-line and per-rule. An *inline* comment (code before
it on the line) silences the named rules on its own physical line; a
*standalone* comment (nothing but whitespace before it) silences them
on the next code line, so justifications fit the repo's 79-column style
as a comment block directly above the flagged statement. ``allow[*]``
silences every rule (reserved for generated code).

The scanner uses :mod:`tokenize` so the marker inside a string literal
is *not* a suppression; files too broken to tokenize fall back to a
plain line scan, which errs toward honoring the comment — a file that
broken fails the SYNTAX gate anyway.

The policy half lives in review, not here: the repo convention
(README "Development") is that every ``allow`` carries its
justification in the same comment block, e.g.::

    # repro: allow[DET002] insertion order follows the event stream;
    # the builder is single-threaded by construction.
    parts.append(render(state))
"""

from __future__ import annotations

import io
import re
import tokenize

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


class Suppressions:
    """Which rules are allowed on which lines of one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]) -> None:
        self._by_line = by_line

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        lines = source.splitlines()
        comments: list[tuple[int, str, bool]] = []
        try:
            for token in tokenize.generate_tokens(
                io.StringIO(source).readline
            ):
                if token.type != tokenize.COMMENT:
                    continue
                lineno, col = token.start
                before = lines[lineno - 1][:col] if lineno <= len(lines) else ""
                comments.append((lineno, token.string, not before.strip()))
        except (tokenize.TokenError, SyntaxError, ValueError):
            comments = [
                (lineno, text, not text[: text.index("#")].strip())
                for lineno, text in enumerate(lines, start=1)
                if "#" in text
            ]
        by_line: dict[int, frozenset[str]] = {}
        for lineno, text, standalone in comments:
            rules = _parse_allow(text)
            if not rules:
                continue
            target = (
                _next_code_line(lines, lineno) if standalone else lineno
            )
            by_line[target] = by_line.get(target, frozenset()) | rules
        return cls(by_line)

    def is_allowed(self, rule: str, line: int) -> bool:
        allowed = self._by_line.get(line)
        if allowed is None:
            return False
        return rule in allowed or "*" in allowed

    @property
    def line_count(self) -> int:
        """How many lines carry at least one suppression (reporting)."""
        return len(self._by_line)


def _parse_allow(text: str) -> frozenset[str]:
    match = _ALLOW.search(text)
    if match is None:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def _next_code_line(lines: list[str], after: int) -> int:
    """First line past *after* that holds code (not blank, not comment).

    A standalone justification block attaches to the statement it sits
    above; intervening comment/blank lines are part of the block. Falls
    back to the comment's own line at end of file.
    """
    for lineno in range(after + 1, len(lines) + 1):
        stripped = lines[lineno - 1].strip()
        if stripped and not stripped.startswith("#"):
            return lineno
    return after
