"""Analysis driver: find files, build the project, run checkers.

The engine is deliberately dumb: checkers do the thinking, the engine
guarantees the operational properties — file discovery and finding
order are sorted (identical reports on every run and machine), a file
that fails to parse becomes a ``SYNTAX`` finding instead of an
exception (so ``repro lint`` gates on it like any other violation),
and suppressions are applied here so no checker can forget them.

Since the project layer landed the engine also owns the two scaling
properties:

* **one parse, shared derivations** — every file is parsed once into a
  :class:`~repro.devtools.project.ModuleInfo`; the import map, parent
  map and suppression table are computed there exactly once and shared
  by every checker (rules used to re-derive all three per checker);
* **incremental analysis** — with a :class:`~repro.devtools.cache
  .LintCache`, files whose content, transitive-import signature and
  rule-set signature all match the previous run are served from the
  cache; only changed files and their transitive dependents re-run
  checkers. Whole-program checkers still see the full
  :class:`ProjectContext` (unchanged files parse lazily, and only if a
  fresh file's analysis actually reaches them).
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.devtools.cache import (
    LintCache,
    deps_signature,
    file_sha,
    ruleset_signature,
)
from repro.devtools.findings import Finding
from repro.devtools.project import (
    ModuleInfo,
    ProjectContext,
    build_project,
)
from repro.devtools.registry import (
    ModuleContext,
    all_checkers,
    all_project_checkers,
    rule_ids,
)

#: The rule id reported for unparseable files (not suppressible — a
#: syntax error swallows any comment that would have allowed it).
SYNTAX_RULE = "SYNTAX"


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories to a sorted list of ``.py`` files.

    Raises :class:`FileNotFoundError` for a missing path and
    :class:`ValueError` for an existing non-Python file — both surface
    as usage errors (exit 2) in the CLI rather than silently linting
    nothing.
    """
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise ValueError(f"not a Python file: {path}")
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, anchored at the ``repro`` package.

    Paths outside the package (fixtures, scratch files) fall back to
    the bare stem, which keeps package-scoped rules (DET001) inert on
    them unless a test supplies a synthetic module name.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    elif parts:
        parts = parts[-1:]
    return ".".join(parts) if parts else "<unknown>"


@dataclass
class ProjectReport:
    """Everything one analysis run produced, for the CLI and tests."""

    findings: list[Finding]
    #: Every file the run covered, sorted (cache hits included).
    files: list[str] = field(default_factory=list)
    #: Files whose checkers actually ran this time (cache misses, or
    #: everything when no cache is in play).
    analyzed: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_stats(self) -> Optional[str]:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return None
        rate = self.cache_hits / total
        return (
            f"lint cache: {self.cache_hits} hit(s),"
            f" {self.cache_misses} miss(es) ({rate:.0%} hit rate)"
        )


def _syntax_finding(info: ModuleInfo) -> Finding:
    exc = info.syntax_error
    assert exc is not None
    return Finding(
        path=info.path,
        line=int(exc.lineno or 1),
        col=int(exc.offset or 0),
        rule=SYNTAX_RULE,
        message=f"file does not parse: {exc.msg}",
    )


def _module_findings(
    project: ProjectContext, info: ModuleInfo
) -> list[Finding]:
    """Run every per-module checker over one parsed module."""
    tree = info.tree
    if tree is None:
        return [_syntax_finding(info)]
    ctx = ModuleContext(
        path=info.path,
        module=info.module,
        source=info.source,
        tree=tree,
        info=info,
        project=project,
    )
    findings: list[Finding] = []
    for checker in all_checkers():
        findings.extend(checker.check(ctx))
    return findings


def _project_findings(project: ProjectContext) -> dict[str, list[Finding]]:
    """Run every whole-program checker once; findings grouped by path."""
    by_path: dict[str, list[Finding]] = {}
    for checker in all_project_checkers():
        for finding in checker.check_project(project):
            by_path.setdefault(finding.path, []).append(finding)
    return by_path


def _filter(
    info: ModuleInfo,
    findings: Iterable[Finding],
    rules: Optional[set[str]],
) -> list[Finding]:
    """Apply the rule filter and the file's suppressions."""
    kept: list[Finding] = []
    for finding in findings:
        if rules is not None and finding.rule not in rules:
            continue
        if finding.rule != SYNTAX_RULE and info.suppressions.is_allowed(
            finding.rule, finding.line
        ):
            continue
        kept.append(finding)
    return kept


def analyze_project(
    paths: Sequence[Path],
    *,
    rules: Optional[set[str]] = None,
    cache: Optional[LintCache] = None,
) -> ProjectReport:
    """Analyze files and directories as one project.

    An unknown rule id in *rules* is a :class:`ValueError`: a typo in
    ``--rules DET01`` must not report a falsely clean tree.
    """
    if rules is not None:
        unknown = rules - rule_ids() - {SYNTAX_RULE}
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
    files = iter_python_files(paths)
    raw: dict[Path, bytes] = {p: p.read_bytes() for p in files}
    shas = {p: file_sha(raw[p]) for p in files}
    sources = {
        p: raw[p].decode("utf-8", errors="replace") for p in files
    }
    preset: dict[Path, tuple[str, ...]] = {}
    if cache is not None:
        for p in files:
            stored = cache.imports_for(str(p), shas[p])
            if stored is not None:
                preset[p] = stored
    project = build_project(
        [(p, module_name_for(p)) for p in files],
        sources=sources,
        preset_imports=preset,
    )

    ruleset_sig = ruleset_signature(rules) if cache is not None else ""
    deps_sigs: dict[str, str] = {}
    if cache is not None:
        sha_by_module = {
            info.module: shas[Path(info.path)] for info in project.infos
        }
        for info in project.infos:
            pairs = [(info.module, sha_by_module[info.module])]
            for dep in project.dependencies_of(info.module):
                pairs.append((dep, sha_by_module[dep]))
            deps_sigs[info.path] = deps_signature(pairs)

    report = ProjectReport(findings=[], files=[str(p) for p in files])
    cached_findings: dict[str, list[Finding]] = {}
    fresh: list[ModuleInfo] = []
    for info in project.infos:
        if cache is not None:
            hit = cache.lookup(
                info.path,
                shas[Path(info.path)],
                deps_sigs[info.path],
                ruleset_sig,
            )
            if hit is not None:
                cached_findings[info.path] = hit
                continue
        fresh.append(info)

    fresh_paths = {info.path for info in fresh}
    project_by_path: dict[str, list[Finding]] = {}
    if fresh:
        project_by_path = _project_findings(project)

    for info in project.infos:
        if info.path in cached_findings:
            report.findings.extend(cached_findings[info.path])
            continue
        findings = _filter(
            info,
            _module_findings(project, info)
            + project_by_path.get(info.path, []),
            rules,
        )
        findings.sort()
        report.findings.extend(findings)
        report.analyzed.append(info.path)
        if cache is not None:
            cache.store(
                info.path,
                shas[Path(info.path)],
                deps_sigs[info.path],
                ruleset_sig,
                info.imported_module_names,
                findings,
            )

    if cache is not None:
        cache.prune([str(p) for p in files])
        cache.save()
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
    else:
        report.analyzed = list(report.files)

    report.findings.sort()
    return report


def analyze_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[set[str]] = None,
) -> list[Finding]:
    """Run every checker over one source string (a one-module project).

    Whole-program rules run too — scoped to whatever is resolvable
    inside the single module — so the fixture corpus can pin their
    local behavior without building multi-file projects.
    """
    if module is None:
        module = module_name_for(Path(path))
    info = ModuleInfo(path, module, source)
    project = ProjectContext([info])
    findings = _module_findings(project, info)
    for _, path_findings in sorted(_project_findings(project).items()):
        findings.extend(path_findings)
    return sorted(_filter(info, findings, rules))


def analyze_file(
    path: Path, *, rules: Optional[set[str]] = None
) -> list[Finding]:
    return analyze_source(
        path.read_text(encoding="utf-8"), path=str(path), rules=rules
    )


def analyze_paths(
    paths: Sequence[Path], *, rules: Optional[set[str]] = None
) -> list[Finding]:
    """Analyze files and directories; the self-lint entry point.

    The uncached form of :func:`analyze_project`, kept as the stable
    programmatic API (the tier-1 self-lint test and older callers).
    """
    return analyze_project(paths, rules=rules).findings


def changed_paths(
    paths: Sequence[Path],
) -> Optional[list[Path]]:
    """Python files under *paths* that differ from git HEAD.

    Returns ``None`` when git is unavailable or the working directory
    is not a repository — callers fall back to a full lint. Untracked
    files count as changed; deletions are skipped (nothing to lint).
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all", "--"]
            + [str(p) for p in paths],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    changed: set[Path] = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        name = line[3:]
        # Renames are reported as "old -> new"; lint the new path.
        if " -> " in name:
            name = name.split(" -> ", 1)[1]
        if name.startswith('"') and name.endswith('"'):
            name = name[1:-1]
        path = Path(name)
        if path.suffix == ".py" and path.is_file():
            changed.add(path)
    return sorted(changed)


def parse_ok(source: str) -> bool:
    """True when *source* parses — the autofix verification helper."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
