"""Analysis driver: find files, parse, run checkers, filter, sort.

The engine is deliberately dumb: checkers do the thinking, the engine
guarantees the operational properties — file discovery and finding
order are sorted (identical reports on every run and machine), a file
that fails to parse becomes a ``SYNTAX`` finding instead of an
exception (so ``repro lint`` gates on it like any other violation),
and suppressions are applied here so no checker can forget them.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleContext, all_checkers, rule_ids
from repro.devtools.suppress import Suppressions

#: The rule id reported for unparseable files (not suppressible — a
#: syntax error swallows any comment that would have allowed it).
SYNTAX_RULE = "SYNTAX"


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories to a sorted list of ``.py`` files.

    Raises :class:`FileNotFoundError` for a missing path and
    :class:`ValueError` for an existing non-Python file — both surface
    as usage errors (exit 2) in the CLI rather than silently linting
    nothing.
    """
    found: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise ValueError(f"not a Python file: {path}")
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, anchored at the ``repro`` package.

    Paths outside the package (fixtures, scratch files) fall back to
    the bare stem, which keeps package-scoped rules (DET001) inert on
    them unless a test supplies a synthetic module name.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    elif parts:
        parts = parts[-1:]
    return ".".join(parts) if parts else "<unknown>"


def analyze_source(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[set[str]] = None,
) -> list[Finding]:
    """Run every registered checker over one source string."""
    if module is None:
        module = module_name_for(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0),
                rule=SYNTAX_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, module=module, source=source, tree=tree)
    suppressions = Suppressions.scan(source)
    findings: list[Finding] = []
    for checker in all_checkers():
        for finding in checker.check(ctx):
            if rules is not None and finding.rule not in rules:
                continue
            if suppressions.is_allowed(finding.rule, finding.line):
                continue
            findings.append(finding)
    return sorted(findings)


def analyze_file(
    path: Path, *, rules: Optional[set[str]] = None
) -> list[Finding]:
    return analyze_source(
        path.read_text(encoding="utf-8"), path=str(path), rules=rules
    )


def analyze_paths(
    paths: Sequence[Path], *, rules: Optional[set[str]] = None
) -> list[Finding]:
    """Analyze files and directories; the CLI and self-lint entry point.

    An unknown rule id in *rules* is a :class:`ValueError`: a typo in
    ``--rules DET01`` must not report a falsely clean tree.
    """
    if rules is not None:
        unknown = rules - rule_ids() - {SYNTAX_RULE}
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}"
            )
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path, rules=rules))
    return sorted(findings)
