"""The analyzer's data model: rules and findings.

A :class:`Finding` is one violation at one source location. The field
order doubles as the sort order (path, then line, then column, then
rule), which is what makes reports — and therefore the CI artifact
diff — stable across runs and worker counts; an analyzer that enforces
determinism had better produce deterministic output itself.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Rule:
    """One entry of the rule catalog (``repro lint --list-rules``)."""

    id: str
    summary: str


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location (1-based line)."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
