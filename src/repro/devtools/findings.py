"""The analyzer's data model: rules, findings, and fix edits.

A :class:`Finding` is one violation at one source location. The field
order doubles as the sort order (path, then line, then column, then
rule), which is what makes reports — and therefore the CI artifact
diff — stable across runs and worker counts; an analyzer that enforces
determinism had better produce deterministic output itself.

A finding may carry a *fix*: a tuple of span-based :class:`Edit`\\ s
that mechanically repair the violation (MUT001 rewrites the default,
DET002 wraps the expression in ``sorted()``). Fixes are excluded from
the sort key — two findings that differ only in their suggested edit
are the same finding — and are applied by :mod:`repro.devtools.fixes`,
never by the reporting path.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Rule:
    """One entry of the rule catalog (``repro lint --list-rules``)."""

    id: str
    summary: str


@dataclass(frozen=True, order=True)
class Edit:
    """One span replacement in one file (1-based lines, 0-based cols).

    The span is half-open in the usual editor sense: characters from
    ``(start_line, start_col)`` up to but not including
    ``(end_line, end_col)`` are replaced by ``replacement``. A
    zero-width span (start == end) is a pure insertion.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str

    def is_insertion(self) -> bool:
        return (self.start_line, self.start_col) == (
            self.end_line,
            self.end_col,
        )


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location (1-based line)."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Mechanical repair, when the rule can offer one. Compare-excluded:
    #: the fix is advice attached to the finding, not part of its
    #: identity (and must not perturb report order).
    fix: tuple[Edit, ...] = field(default=(), compare=False)

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    @property
    def fixable(self) -> bool:
        return bool(self.fix)
