"""Autofix: apply span-based :class:`~repro.devtools.findings.Edit`\\ s.

The contract (``repro lint --fix``):

* **span edits, applied bottom-up** — each edit replaces a half-open
  ``(line, col)`` span; applying in descending position order means no
  edit invalidates the coordinates of an earlier one. Overlapping
  non-insertion spans are a conflict: the whole file's fix batch is
  skipped rather than guessed at.
* **atomic per file** — the rewritten source lands via ``os.replace``
  of a sibling temp file, so an interrupt leaves either the old or the
  new file, never a torn one.
* **verified** — a file whose rewritten source no longer parses is
  rolled back before it is written (the candidate text is parsed
  first), and :func:`fix_paths` re-lints after writing so the report
  states what actually remains, not what was hoped.
* **idempotent** — fixed findings disappear on the re-lint, so a second
  ``--fix`` run finds nothing to do (the autofix round-trip test pins
  this).

``--fix-suppress RULE`` shares the machinery: instead of repairing the
code it inserts a standalone ``# repro: allow[RULE]`` justification
stub above each finding of *RULE*, for violations that are intended
behavior awaiting a written rationale.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.devtools.engine import analyze_project, parse_ok
from repro.devtools.findings import Edit, Finding

#: The justification stub ``--fix-suppress`` inserts. Deliberately a
#: TODO: a suppression without a rationale should not survive review.
SUPPRESS_STUB = "TODO: justify this suppression"


class EditConflict(ValueError):
    """Two edits in one file claim overlapping non-insertion spans."""


def _offset_index(source: str) -> list[int]:
    """Start offset of each 1-based line in *source*."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _to_offsets(edit: Edit, index: list[int]) -> tuple[int, int]:
    def clamp(line: int) -> int:
        return max(1, min(line, len(index)))

    start = index[clamp(edit.start_line) - 1] + edit.start_col
    end = index[clamp(edit.end_line) - 1] + edit.end_col
    return start, end


def apply_edits(source: str, edits: Sequence[Edit]) -> str:
    """Apply *edits* to *source*; raises :class:`EditConflict` on
    overlap.

    Insertions at the same point stack in the order given (the first
    edit's text ends up first).
    """
    index = _offset_index(source)
    spans = [
        (*_to_offsets(edit, index), position, edit)
        for position, edit in enumerate(edits)
    ]
    occupied: list[tuple[int, int]] = []
    for start, end, _, edit in spans:
        if start > end:
            raise EditConflict(f"negative-width edit span: {edit}")
        if start == end:
            continue  # insertions never conflict
        for other_start, other_end in occupied:
            if start < other_end and other_start < end:
                raise EditConflict(
                    f"overlapping edits at offsets {start}..{end}"
                )
        occupied.append((start, end))
    # Bottom-up, and for same-position edits reverse input order, so
    # the earlier edit's replacement lands before the later one's.
    text = source
    for start, end, _, edit in sorted(
        spans, key=lambda s: (s[0], s[1], s[2]), reverse=True
    ):
        text = text[:start] + edit.replacement + text[end:]
    return text


def _atomic_write(path: Path, text: str) -> None:
    fd, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".fix"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def suppression_edits(
    finding: Finding, source: str, *, stub: str = SUPPRESS_STUB
) -> tuple[Edit, ...]:
    """A standalone ``# repro: allow[RULE]`` comment above the finding.

    The comment takes the flagged line's indentation so the suppression
    scanner's standalone rule attaches it to that statement.
    """
    lines = source.splitlines()
    if not 1 <= finding.line <= len(lines):
        return ()
    flagged = lines[finding.line - 1]
    indent = flagged[: len(flagged) - len(flagged.lstrip())]
    comment = f"{indent}# repro: allow[{finding.rule}] {stub}\n"
    return (
        Edit(
            start_line=finding.line,
            start_col=0,
            end_line=finding.line,
            end_col=0,
            replacement=comment,
        ),
    )


@dataclass
class FixReport:
    """What one ``--fix`` / ``--fix-suppress`` run did."""

    #: Findings whose edits were applied, per file.
    fixed: list[Finding] = field(default_factory=list)
    #: Fixable findings skipped (conflicting edits or broken rewrite).
    skipped: list[Finding] = field(default_factory=list)
    #: Files actually rewritten.
    changed_files: list[str] = field(default_factory=list)
    #: The post-fix lint findings over the same paths/rules.
    remaining: list[Finding] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"fixed {len(self.fixed)} finding(s) in"
            f" {len(self.changed_files)} file(s);"
            f" {len(self.skipped)} skipped;"
            f" {len(self.remaining)} remaining"
        )


def _fix_one_file(
    path: Path, findings: list[Finding], report: FixReport
) -> None:
    """Apply one file's fix batch, dropping conflicting findings."""
    source = path.read_text(encoding="utf-8")
    batch: list[Finding] = []
    edits: list[Edit] = []
    for finding in findings:
        try:
            apply_edits(source, edits + list(finding.fix))
        except EditConflict:
            report.skipped.append(finding)
            continue
        batch.append(finding)
        edits.extend(finding.fix)
    if not batch:
        return
    rewritten = apply_edits(source, edits)
    if rewritten == source or not parse_ok(rewritten):
        report.skipped.extend(batch)
        return
    _atomic_write(path, rewritten)
    report.fixed.extend(batch)
    report.changed_files.append(str(path))


def fix_paths(
    paths: Sequence[Path],
    *,
    rules: Optional[set[str]] = None,
    suppress_rule: Optional[str] = None,
) -> FixReport:
    """Lint *paths*, apply fixes (or suppressions), re-lint, report.

    With *suppress_rule*, findings of that rule get a justification-stub
    suppression comment instead of a code fix; all other findings are
    left alone. Without it, every finding carrying a fix is repaired.
    """
    before = analyze_project(paths, rules=rules)
    by_path: dict[str, list[Finding]] = {}
    suppressed_lines: set[tuple[str, int]] = set()
    for finding in before.findings:
        if suppress_rule is not None:
            if finding.rule != suppress_rule:
                continue
            # One comment per flagged line, however many findings of
            # the rule sit on it.
            if (finding.path, finding.line) in suppressed_lines:
                continue
            suppressed_lines.add((finding.path, finding.line))
            source = Path(finding.path).read_text(encoding="utf-8")
            finding = Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule=finding.rule,
                message=finding.message,
                fix=suppression_edits(finding, source),
            )
        if not finding.fix:
            continue
        by_path.setdefault(finding.path, []).append(finding)

    report = FixReport()
    for path_str in sorted(by_path):
        _fix_one_file(Path(path_str), by_path[path_str], report)

    report.remaining = analyze_project(paths, rules=rules).findings
    return report
