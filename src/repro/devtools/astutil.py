"""Shared AST plumbing for the checkers.

Two things every rule needs: turning an ``a.b.c`` attribute chain back
into a dotted string, and resolving the *local* head of such a chain
through the module's import statements so ``from random import choice``
and ``import random as rnd; rnd.choice`` both surface as
``random.choice``. Keeping resolution here means each rule matches on
canonical fully-qualified names and never re-implements import
bookkeeping.
"""

from __future__ import annotations

import ast
from typing import Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else.

    Chains rooted in calls or subscripts (``f().x``, ``d[k].y``) return
    None: their runtime head is unknowable statically, so rules treat
    them as unresolvable rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain, if any.

    ``self._edges[edge].pop`` → ``self``; used by rules that care about
    *what object* a mutation lands on rather than the full path.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportMap:
    """What each module-local name refers to, per the import statements.

    ``import a.b`` binds ``a`` → ``a``; ``import a.b as c`` binds ``c``
    → ``a.b``; ``from a import b as c`` binds ``c`` → ``a.b``. Relative
    imports keep their tail (the package prefix is unknowable without a
    package root, and no rule currently needs it).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of *node*, through the aliases.

        Unimported heads pass through unchanged (``self.x`` resolves to
        ``"self.x"``), so callers can still match on local patterns.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


def enclosing_function_map(
    tree: ast.Module,
) -> "dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef]":
    """Every node → its nearest enclosing function definition.

    Rules use it to scope local-name resolution (POOL001's
    single-assignment chasing) and to find the function a dispatch or
    stage-factory call sits in (POOL003/PIPE002).
    """
    enclosing: dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef] = {}

    def fill(
        node: ast.AST,
        current: "ast.FunctionDef | ast.AsyncFunctionDef | None",
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if current is not None:
                enclosing[child] = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fill(child, child)
            else:
                fill(child, current)

    fill(tree, None)
    return enclosing


def parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Child → parent for every node; lets rules inspect a node's sink."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module scope: defs, classes, imports, assignments.

    The picklability baseline for POOL001 — anything a forked worker
    can re-resolve by qualified name — and the global-write target set
    for POOL002.
    """
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
    return names


def module_level_assignments(tree: ast.Module) -> set[str]:
    """Names *assigned* at module scope (constants, tables, caches)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
    return names


def _target_names(target: ast.AST) -> set[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        found: set[str] = set()
        for element in target.elts:
            found.update(_target_names(element))
        return found
    return set()
