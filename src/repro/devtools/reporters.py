"""Finding reporters: human text, machine JSON, and SARIF.

The JSON form is the CI artifact (uploaded per run); ``sort_keys`` plus
the engine's sorted findings make it byte-stable, so two CI runs over
the same tree produce identical artifacts — diffable evidence that a
change did or did not move the lint needle. Fix edits are deliberately
*not* serialized — they are advice for ``--fix``, not part of the
finding's identity — but ``fixable`` says whether one exists.

The SARIF form (``--format sarif``) targets code-scanning UIs: one run,
one driver (``repro-lint``), the full rule catalog as ``rules`` so a
viewer can show the summary for ids with zero results too. Columns are
converted to SARIF's 1-based convention at the boundary.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.devtools.findings import Finding
from repro.devtools.registry import rule_catalog

#: Bumped when the JSON shape changes, so artifact consumers can gate.
JSON_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "repro-lint"


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a trailing summary line."""
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": JSON_VERSION,
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
                "fixable": finding.fixable,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding]) -> str:
    """A single-run SARIF 2.1.0 log of *findings*."""
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    driver = {
        "name": _TOOL_NAME,
        "rules": [
            {
                "id": rule.id,
                "shortDescription": {"text": rule.summary},
            }
            for rule in rule_catalog()
        ],
    }
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
