"""Finding reporters: human text and machine JSON.

The JSON form is the CI artifact (uploaded per run); ``sort_keys`` plus
the engine's sorted findings make it byte-stable, so two CI runs over
the same tree produce identical artifacts — diffable evidence that a
change did or did not move the lint needle.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Sequence

from repro.devtools.findings import Finding

#: Bumped when the JSON shape changes, so artifact consumers can gate.
JSON_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a trailing summary line."""
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": JSON_VERSION,
        "count": len(findings),
        "findings": [asdict(finding) for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
