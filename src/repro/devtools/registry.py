"""The checker framework: base class, registry, module context.

One checker class per invariant family; a class may own several rule
ids (the determinism checker owns DET001–DET003). Registration is a
decorator so adding a rule is: write the class in
:mod:`repro.devtools.rules`, decorate it, add fixtures. The registry
is sorted by class name and the catalog by rule id, keeping analyzer
output order independent of import order — the analyzer holds itself
to the determinism bar it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.devtools.findings import Finding, Rule


@dataclass(frozen=True)
class ModuleContext:
    """Everything a checker may look at for one module.

    *module* is the dotted import name (``repro.tamp.render``) — rules
    scoped to algorithm packages match on it, and tests can analyze a
    fixture *as if* it lived anywhere in the tree by passing a
    synthetic module name.
    """

    path: str
    module: str
    source: str
    tree: ast.Module

    def in_package(self, packages: tuple[str, ...]) -> bool:
        """True when the module sits in (or is) one of *packages*.

        Matches on package boundaries: ``repro.net`` covers
        ``repro.net.trie`` but not ``repro.network``.
        """
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )


class Checker:
    """Base class: declare ``rules``, implement :meth:`check`."""

    rules: tuple[Rule, ...] = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, rule: str, message: str
    ) -> Finding:
        """A finding at *node*'s location (the common constructor)."""
        return Finding(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule=rule,
            message=message,
        )


_CHECKERS: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    _CHECKERS.append(cls)
    return cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, in stable order."""
    # Imported lazily: the rules package imports this module to reach
    # the decorator, so a top-level import would be circular.
    import repro.devtools.rules  # noqa: F401  (registration side effect)

    return [cls() for cls in sorted(_CHECKERS, key=lambda c: c.__name__)]


def rule_catalog() -> list[Rule]:
    """Every rule of every registered checker, sorted by id."""
    rules: set[Rule] = set()
    for checker in all_checkers():
        rules.update(checker.rules)
    return sorted(rules)


def rule_ids() -> set[str]:
    return {rule.id for rule in rule_catalog()}
