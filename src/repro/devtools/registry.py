"""The checker framework: base classes, registries, module context.

One checker class per invariant family; a class may own several rule
ids (the determinism checker owns DET001–DET003). Registration is a
decorator so adding a rule is: write the class in
:mod:`repro.devtools.rules`, decorate it, add fixtures. The registry
is sorted by class name and the catalog by rule id, keeping analyzer
output order independent of import order — the analyzer holds itself
to the determinism bar it enforces.

Two checker kinds since the project layer landed:

* :class:`Checker` — per-module: sees one :class:`ModuleContext` at a
  time. The context now also carries the shared derivations the
  project layer computed once (import map, parent map, suppressions)
  plus a handle to the whole :class:`ProjectContext`, so no rule
  re-tokenizes or re-walks what the engine already has.
* :class:`ProjectChecker` — whole-program: sees the
  :class:`ProjectContext` once per analysis and may emit findings in
  any file. The engine routes each finding through the owning file's
  suppressions, same as module findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.devtools.findings import Edit, Finding, Rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.devtools.astutil import ImportMap
    from repro.devtools.project import ModuleInfo, ProjectContext
    from repro.devtools.suppress import Suppressions


@dataclass(frozen=True)
class ModuleContext:
    """Everything a per-module checker may look at for one module.

    *module* is the dotted import name (``repro.tamp.render``) — rules
    scoped to algorithm packages match on it, and tests can analyze a
    fixture *as if* it lived anywhere in the tree by passing a
    synthetic module name. *info* is the project-layer record the
    shared derivations live on; *project* is the whole-program context
    (always present — a single-module analysis gets a single-module
    project).
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    info: "ModuleInfo" = field(repr=False)
    project: "ProjectContext" = field(repr=False)

    def in_package(self, packages: tuple[str, ...]) -> bool:
        """True when the module sits in (or is) one of *packages*.

        Matches on package boundaries: ``repro.net`` covers
        ``repro.net.trie`` but not ``repro.network``.
        """
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )

    @property
    def imports(self) -> "ImportMap":
        """The module's import map, computed once for all checkers."""
        return self.info.imports

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent for every node, computed once per module."""
        return self.info.parents

    @property
    def suppressions(self) -> "Suppressions":
        """The file's suppression table (tokenized exactly once)."""
        return self.info.suppressions


class Checker:
    """Base class: declare ``rules``, implement :meth:`check`."""

    rules: tuple[Rule, ...] = ()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        rule: str,
        message: str,
        *,
        fix: tuple[Edit, ...] = (),
    ) -> Finding:
        """A finding at *node*'s location (the common constructor)."""
        return Finding(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule=rule,
            message=message,
            fix=fix,
        )


class ProjectChecker:
    """Base class for whole-program rules (INT003, POOL003, PIPE002)."""

    rules: tuple[Rule, ...] = ()

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        info: "ModuleInfo",
        node: ast.AST,
        rule: str,
        message: str,
    ) -> Finding:
        return Finding(
            path=info.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            rule=rule,
            message=message,
        )


_CHECKERS: list[type[Checker]] = []
_PROJECT_CHECKERS: list[type[ProjectChecker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a per-module checker to the registry."""
    _CHECKERS.append(cls)
    return cls


def register_project(cls: type[ProjectChecker]) -> type[ProjectChecker]:
    """Class decorator adding a whole-program checker to the registry."""
    _PROJECT_CHECKERS.append(cls)
    return cls


def _load_rules() -> None:
    # Imported lazily: the rules package imports this module to reach
    # the decorator, so a top-level import would be circular.
    import repro.devtools.rules  # noqa: F401  (registration side effect)


def all_checkers() -> list[Checker]:
    """Fresh instances of every module checker, in stable order."""
    _load_rules()
    return [cls() for cls in sorted(_CHECKERS, key=lambda c: c.__name__)]


def all_project_checkers() -> list[ProjectChecker]:
    """Fresh instances of every project checker, in stable order."""
    _load_rules()
    return [
        cls()
        for cls in sorted(_PROJECT_CHECKERS, key=lambda c: c.__name__)
    ]


def rule_catalog() -> list[Rule]:
    """Every rule of every registered checker, sorted by id."""
    rules: set[Rule] = set()
    for checker in all_checkers():
        rules.update(checker.rules)
    for project_checker in all_project_checkers():
        rules.update(project_checker.rules)
    return sorted(rules)


def rule_ids() -> set[str]:
    return {rule.id for rule in rule_catalog()}
