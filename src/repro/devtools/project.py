"""The project layer: whole-program context for the analyzer.

PR 2's engine handed every checker one module at a time, which makes
any invariant that spans a module boundary invisible (a decoded token
returned by a helper in ``repro.interning`` leaking into a stemming hot
loop, a pool shard mutating state it imported). This module parses the
analyzed tree **once** and derives everything the cross-module rules
need:

* :class:`ModuleInfo` — one analyzed file: source, AST, suppressions,
  import map, parent map, and the module-level function index, each
  computed lazily and exactly once (rules used to re-derive the import
  map and re-tokenize for suppressions per checker per file);
* :class:`ProjectContext` — the set of modules plus the **import
  graph** (project-internal edges only, with transitive dependency /
  dependent closures: the cache layer's invalidation domain) and a
  **symbol index** that resolves a call expression to the
  :class:`FunctionInfo` it names — through import aliases, one-hop
  re-exports, and ``self.method`` within a class — without type
  inference. Unresolvable calls resolve to ``None`` and rules treat
  them as opaque, which is the safe direction for every current rule.

A module whose imports are already known from a previous run can be
built with ``preset_imports`` so the import graph (and therefore cache
signatures) can be computed without parsing the file at all — the
warm-path property the incremental cache depends on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.devtools.astutil import ImportMap, parent_map
from repro.devtools.suppress import Suppressions

AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: How many re-export hops the symbol index follows. Package
#: ``__init__`` files re-export one level deep in this repo; the bound
#: keeps a pathological import cycle from looping the resolver.
_REEXPORT_HOPS = 4


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, locatable across the project."""

    module: str
    qualname: str  # "fn" or "Class.fn"
    node: AnyFunc
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @cached_property
    def params(self) -> tuple[str, ...]:
        """Positional parameter names, ``self``/``cls`` stripped for
        methods so argument indices line up with call-site positions."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if self.class_name is not None and names:
            decorators = {
                d.id
                for d in self.node.decorator_list
                if isinstance(d, ast.Name)
            }
            if "staticmethod" not in decorators:
                names = names[1:]
        return tuple(names)

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


class ModuleInfo:
    """One analyzed file, with every shared derivation computed once."""

    def __init__(
        self,
        path: str,
        module: str,
        source: str,
        *,
        preset_imports: Optional[tuple[str, ...]] = None,
    ) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.preset_imports = preset_imports

    @cached_property
    def _parsed(self) -> tuple[Optional[ast.Module], Optional[SyntaxError]]:
        try:
            return ast.parse(self.source, filename=self.path), None
        except SyntaxError as exc:
            return None, exc

    @property
    def tree(self) -> Optional[ast.Module]:
        """The AST, or ``None`` for a file that does not parse."""
        return self._parsed[0]

    @property
    def syntax_error(self) -> Optional[SyntaxError]:
        return self._parsed[1]

    @cached_property
    def suppressions(self) -> Suppressions:
        """Tokenized once here; every rule and the engine share it."""
        return Suppressions.scan(self.source)

    @cached_property
    def imports(self) -> ImportMap:
        tree = self.tree
        return ImportMap(tree if tree is not None else ast.Module([], []))

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        tree = self.tree
        return parent_map(tree) if tree is not None else {}

    @cached_property
    def imported_module_names(self) -> tuple[str, ...]:
        """Every dotted module name this file's imports *could* name.

        ``from repro.tamp import graph`` contributes both ``repro.tamp``
        and ``repro.tamp.graph`` — whether ``graph`` is a submodule or a
        symbol is unknowable statically, and the project context keeps
        only the names that exist as analyzed modules anyway.
        """
        if self.preset_imports is not None:
            return self.preset_imports
        tree = self.tree
        if tree is None:
            return ()
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    base = self._resolve_relative(node.level, base)
                if not base:
                    continue
                names.add(base)
                for alias in node.names:
                    if alias.name != "*":
                        names.add(f"{base}.{alias.name}")
        return tuple(sorted(names))

    def _resolve_relative(self, level: int, tail: str) -> str:
        """``from ..x import y`` anchored at this module's package."""
        parts = self.module.split(".")
        # Package __init__ modules count as their own package.
        anchor = parts[: len(parts) - level]
        if not anchor:
            return tail
        return ".".join(anchor + ([tail] if tail else []))

    @cached_property
    def functions(self) -> dict[str, FunctionInfo]:
        """Module-level functions and class methods, by qualname."""
        index: dict[str, FunctionInfo] = {}
        tree = self.tree
        if tree is None:
            return index
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index[node.name] = FunctionInfo(
                    self.module, node.name, node
                )
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qualname = f"{node.name}.{item.name}"
                        index[qualname] = FunctionInfo(
                            self.module, qualname, item, node.name
                        )
        return index


class ProjectContext:
    """Every analyzed module plus the graphs the project rules walk."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        #: Path-ordered (the engine's deterministic file order).
        self.infos: tuple[ModuleInfo, ...] = tuple(modules)
        self.by_path: dict[str, ModuleInfo] = {
            info.path: info for info in self.infos
        }
        self.by_module: dict[str, ModuleInfo] = {}
        for info in self.infos:
            # First wins on (pathological) duplicate module names so the
            # mapping is independent of anything but sorted path order.
            self.by_module.setdefault(info.module, info)
        self._deps_closure: dict[str, frozenset[str]] = {}
        self._dependents_closure: dict[str, frozenset[str]] = {}

    # -- import graph ---------------------------------------------------

    @cached_property
    def import_graph(self) -> dict[str, frozenset[str]]:
        """module → project modules it imports (direct edges only)."""
        graph: dict[str, frozenset[str]] = {}
        for info in self.infos:
            deps: set[str] = set()
            for name in info.imported_module_names:
                target = self._project_module(name)
                if target is not None and target != info.module:
                    deps.add(target)
            graph[info.module] = frozenset(deps)
        return graph

    @cached_property
    def reverse_import_graph(self) -> dict[str, frozenset[str]]:
        reverse: dict[str, set[str]] = {
            info.module: set() for info in self.infos
        }
        for module, deps in self.import_graph.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(module)
        return {module: frozenset(deps) for module, deps in reverse.items()}

    def _project_module(self, dotted: str) -> Optional[str]:
        """Longest analyzed-module prefix of *dotted*, if any.

        ``repro.tamp.graph.TampGraph`` → ``repro.tamp.graph``.
        """
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.by_module:
                return candidate
        return None

    def _closure(
        self,
        module: str,
        graph: dict[str, frozenset[str]],
        memo: dict[str, frozenset[str]],
    ) -> frozenset[str]:
        cached = memo.get(module)
        if cached is not None:
            return cached
        seen: set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            for nxt in graph.get(current, frozenset()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        result = frozenset(seen - {module})
        memo[module] = result
        return result

    def dependencies_of(self, module: str) -> frozenset[str]:
        """Transitive project imports of *module* (excluding itself).

        The domain a module's analysis result may depend on: return
        summaries and helper bodies resolve only through imports.
        """
        return self._closure(module, self.import_graph, self._deps_closure)

    def dependents_of(self, module: str) -> frozenset[str]:
        """Transitive importers of *module* — the invalidation fan-out:
        when *module* changes, exactly these must re-analyze."""
        return self._closure(
            module, self.reverse_import_graph, self._dependents_closure
        )

    # -- symbol index ---------------------------------------------------

    def resolve_function(
        self,
        info: ModuleInfo,
        callee: ast.AST,
        scope: Optional[FunctionInfo] = None,
    ) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a call expression names, if it is
        statically resolvable.

        Handles: a module-local name, an imported name (through
        aliases and up to ``_REEXPORT_HOPS`` re-export hops),
        ``module.attr`` chains, and ``self.method``/``cls.method``
        inside a class body. Anything else — a call on a runtime
        object, a subscript, a name rebound locally — returns ``None``.
        """
        if (
            isinstance(callee, ast.Attribute)
            and isinstance(callee.value, ast.Name)
            and callee.value.id in ("self", "cls")
            and scope is not None
            and scope.class_name is not None
        ):
            return info.functions.get(f"{scope.class_name}.{callee.attr}")
        dotted = info.imports.resolve(callee)
        if dotted is None:
            return None
        if "." not in dotted:
            local = info.functions.get(dotted)
            if local is not None:
                return local
        return self._resolve_dotted(dotted)

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        for _ in range(_REEXPORT_HOPS):
            module = self._project_module(dotted)
            if module is None:
                return None
            remainder = dotted[len(module) :].lstrip(".")
            if not remainder:
                return None
            owner = self.by_module[module]
            found = owner.functions.get(remainder)
            if found is not None:
                return found
            # One re-export hop: the owning module imports the name
            # itself (`from repro.x.y import fn` in a package __init__).
            head = remainder.split(".")[0]
            target = owner.imports.aliases.get(head)
            if target is None or target == dotted:
                return None
            tail = remainder[len(head) :].lstrip(".")
            dotted = f"{target}.{tail}" if tail else target
        return None

    def iter_functions(self) -> Iterator[tuple[ModuleInfo, FunctionInfo]]:
        """Every function of every module, in deterministic order."""
        for info in self.infos:
            for qualname in sorted(info.functions):
                yield info, info.functions[qualname]


def build_project(
    files: Sequence[tuple[Path, str]],
    *,
    sources: Optional[dict[Path, str]] = None,
    preset_imports: Optional[dict[Path, tuple[str, ...]]] = None,
) -> ProjectContext:
    """Build a :class:`ProjectContext` for ``(path, module_name)`` pairs.

    *sources* overrides file reads (in-memory analysis, tests);
    *preset_imports* supplies import lists recovered from a cache so
    unchanged files need not be parsed to place them in the graph.
    """
    infos: list[ModuleInfo] = []
    for path, module in files:
        if sources is not None and path in sources:
            source = sources[path]
        else:
            source = path.read_text(encoding="utf-8")
        preset = None
        if preset_imports is not None:
            preset = preset_imports.get(path)
        infos.append(
            ModuleInfo(str(path), module, source, preset_imports=preset)
        )
    return ProjectContext(infos)
