"""MRT (RFC 6396) and BGP wire-format (RFC 4271) codecs.

The paper's tools consumed live IBGP feeds; the public equivalent is the
RouteViews / RIPE RIS archives, distributed as MRT files. This package
implements the relevant wire formats from scratch — BGP UPDATE
encode/decode with the attributes the analyses use, MRT BGP4MP update
records, and TABLE_DUMP_V2 RIB snapshots — so recorded Internet data can
feed the same TAMP/Stemming pipeline as the simulator:

    from repro.mrt import load_updates, load_rib
    stream = load_updates("updates.20031015.0600.mrt")
    rex = load_rib("rib.20031015.0600.mrt")

Writers are included: simulated incidents can be exported as MRT for
other tools, and every reader is round-trip tested against them.
"""

from repro.mrt.bgp_codec import (
    BGPCodecError,
    decode_update,
    encode_update,
)
from repro.mrt.records import (
    MRTError,
    MRTRecord,
    read_records,
    write_records,
)
from repro.mrt.ingest import (
    IngestError,
    IngestPolicy,
    IngestReport,
    IngestWarning,
    read_quarantine,
)
from repro.mrt.loader import (
    dump_rib,
    dump_updates,
    load_rib,
    load_updates,
)

__all__ = [
    "BGPCodecError",
    "encode_update",
    "decode_update",
    "MRTError",
    "MRTRecord",
    "read_records",
    "write_records",
    "IngestError",
    "IngestPolicy",
    "IngestReport",
    "IngestWarning",
    "read_quarantine",
    "load_updates",
    "load_rib",
    "dump_updates",
    "dump_rib",
]
