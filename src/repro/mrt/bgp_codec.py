"""BGP UPDATE wire format (RFC 4271, with RFC 6793 four-octet ASNs).

Implements exactly the subset the analyses need: the UPDATE message with
withdrawn routes, NLRI, and the path attributes ORIGIN, AS_PATH (sequence
and set segments, 4-byte ASNs), NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF,
COMMUNITIES, ORIGINATOR_ID and CLUSTER_LIST. Unknown optional attributes
are skipped on decode (logged in the result), never fatal — real archive
data is full of attributes this reproduction does not model.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.aspath import ASPath, ASPathError
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.message import Announcement, BGPUpdate, Withdrawal
from repro.net.prefix import Prefix

MARKER = b"\xff" * 16
MSG_TYPE_UPDATE = 2

ATTR_ORIGIN = 1
ATTR_AS_PATH = 2
ATTR_NEXT_HOP = 3
ATTR_MED = 4
ATTR_LOCAL_PREF = 5
ATTR_COMMUNITIES = 8
ATTR_ORIGINATOR_ID = 9
ATTR_CLUSTER_LIST = 10

SEGMENT_AS_SET = 1
SEGMENT_AS_SEQUENCE = 2

FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_EXTENDED_LENGTH = 0x10

#: Default attribute flags per type code (well-known mandatory vs
#: optional transitive/non-transitive), as RFC 4271 prescribes.
_ATTR_FLAGS = {
    ATTR_ORIGIN: FLAG_TRANSITIVE,
    ATTR_AS_PATH: FLAG_TRANSITIVE,
    ATTR_NEXT_HOP: FLAG_TRANSITIVE,
    ATTR_MED: FLAG_OPTIONAL,
    ATTR_LOCAL_PREF: FLAG_TRANSITIVE,
    ATTR_COMMUNITIES: FLAG_OPTIONAL | FLAG_TRANSITIVE,
    ATTR_ORIGINATOR_ID: FLAG_OPTIONAL,
    ATTR_CLUSTER_LIST: FLAG_OPTIONAL,
}


class BGPCodecError(ValueError):
    """Malformed wire data."""


@dataclass
class DecodedUpdate:
    """The result of decoding one UPDATE message."""

    update: BGPUpdate
    #: Attribute type codes present but not modeled (skipped).
    skipped_attributes: tuple[int, ...] = field(default=())


# ----------------------------------------------------------------------
# Prefix (NLRI) encoding
# ----------------------------------------------------------------------


def encode_prefix(prefix: Prefix) -> bytes:
    """<length:1><network bytes: ceil(length/8)> per RFC 4271 §4.3."""
    nbytes = (prefix.length + 7) // 8
    network = prefix.network.to_bytes(4, "big")[:nbytes]
    return bytes([prefix.length]) + network


def decode_prefix(data: bytes, offset: int) -> tuple[Prefix, int]:
    """Decode one NLRI prefix at *offset*; returns (prefix, new offset)."""
    if offset >= len(data):
        raise BGPCodecError("truncated NLRI")
    length = data[offset]
    if length > 32:
        raise BGPCodecError(f"NLRI length {length} exceeds 32")
    nbytes = (length + 7) // 8
    end = offset + 1 + nbytes
    if end > len(data):
        raise BGPCodecError("truncated NLRI network bytes")
    raw = data[offset + 1 : end] + b"\x00" * (4 - nbytes)
    network = int.from_bytes(raw, "big")
    mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return Prefix(network & mask, length), end


def _encode_prefix_block(prefixes) -> bytes:
    return b"".join(encode_prefix(p) for p in prefixes)


def _decode_prefix_block(data: bytes) -> list[Prefix]:
    prefixes = []
    offset = 0
    while offset < len(data):
        prefix, offset = decode_prefix(data, offset)
        prefixes.append(prefix)
    return prefixes


# ----------------------------------------------------------------------
# Path attribute encoding
# ----------------------------------------------------------------------


def _attribute(type_code: int, payload: bytes) -> bytes:
    flags = _ATTR_FLAGS[type_code]
    if len(payload) > 255:
        flags |= FLAG_EXTENDED_LENGTH
        header = struct.pack("!BBH", flags, type_code, len(payload))
    else:
        header = struct.pack("!BBB", flags, type_code, len(payload))
    return header + payload


def _encode_as_path(path: ASPath) -> bytes:
    out = b""
    if path.sequence:
        out += struct.pack("!BB", SEGMENT_AS_SEQUENCE, len(path.sequence))
        out += b"".join(struct.pack("!I", asn) for asn in path.sequence)
    if path.as_set:
        members = sorted(path.as_set)
        out += struct.pack("!BB", SEGMENT_AS_SET, len(members))
        out += b"".join(struct.pack("!I", asn) for asn in members)
    return out


def _decode_as_path(payload: bytes) -> ASPath:
    sequence: list[int] = []
    as_set: set[int] = set()
    offset = 0
    while offset < len(payload):
        if offset + 2 > len(payload):
            raise BGPCodecError("truncated AS_PATH segment header")
        segment_type, count = payload[offset], payload[offset + 1]
        offset += 2
        end = offset + 4 * count
        if end > len(payload):
            raise BGPCodecError("truncated AS_PATH segment")
        asns = [
            struct.unpack("!I", payload[i : i + 4])[0]
            for i in range(offset, end, 4)
        ]
        if segment_type == SEGMENT_AS_SEQUENCE:
            sequence.extend(asns)
        elif segment_type == SEGMENT_AS_SET:
            as_set.update(asns)
        else:
            raise BGPCodecError(f"unknown AS_PATH segment {segment_type}")
        offset = end
    try:
        return ASPath(sequence, as_set)
    except ASPathError as exc:
        # AS 0 (or out-of-range values from bit flips) are wire-level
        # garbage: surface them as codec errors, not model errors.
        raise BGPCodecError(f"malformed AS_PATH: {exc}") from exc


def encode_attributes(attrs: PathAttributes) -> bytes:
    """Encode a :class:`PathAttributes` bundle as a path-attribute block."""
    out = _attribute(ATTR_ORIGIN, bytes([int(attrs.origin)]))
    out += _attribute(ATTR_AS_PATH, _encode_as_path(attrs.as_path))
    out += _attribute(ATTR_NEXT_HOP, attrs.nexthop.to_bytes(4, "big"))
    if attrs.med is not None:
        out += _attribute(ATTR_MED, struct.pack("!I", attrs.med))
    out += _attribute(ATTR_LOCAL_PREF, struct.pack("!I", attrs.local_pref))
    if attrs.communities:
        payload = b"".join(
            struct.pack("!HH", c.asn, c.value)
            for c in sorted(attrs.communities)
        )
        out += _attribute(ATTR_COMMUNITIES, payload)
    if attrs.originator_id is not None:
        out += _attribute(
            ATTR_ORIGINATOR_ID, attrs.originator_id.to_bytes(4, "big")
        )
    if attrs.cluster_list:
        payload = b"".join(
            cid.to_bytes(4, "big") for cid in attrs.cluster_list
        )
        out += _attribute(ATTR_CLUSTER_LIST, payload)
    return out


def decode_attributes(
    data: bytes,
) -> tuple[PathAttributes | None, list[int]]:
    """Decode a path-attribute block.

    Returns (attributes, skipped attribute codes). Attributes is None
    when the block lacks the mandatory NEXT_HOP/AS_PATH (as in a
    withdrawal-only UPDATE).
    """
    origin = Origin.IGP
    as_path = ASPath()
    nexthop: int | None = None
    med = None
    local_pref = 100
    communities: list[Community] = []
    originator_id = None
    cluster_list: tuple[int, ...] = ()
    skipped: list[int] = []
    offset = 0
    seen_mandatory = False
    while offset < len(data):
        if offset + 2 > len(data):
            raise BGPCodecError("truncated attribute header")
        flags, type_code = data[offset], data[offset + 1]
        offset += 2
        if flags & FLAG_EXTENDED_LENGTH:
            if offset + 2 > len(data):
                raise BGPCodecError("truncated extended length")
            length = struct.unpack_from("!H", data, offset)[0]
            offset += 2
        else:
            if offset + 1 > len(data):
                raise BGPCodecError("truncated attribute length")
            length = data[offset]
            offset += 1
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise BGPCodecError("truncated attribute payload")
        offset += length
        if type_code == ATTR_ORIGIN:
            if length != 1 or payload[0] > 2:
                raise BGPCodecError("malformed ORIGIN")
            origin = Origin(payload[0])
        elif type_code == ATTR_AS_PATH:
            as_path = _decode_as_path(payload)
            seen_mandatory = True
        elif type_code == ATTR_NEXT_HOP:
            if length != 4:
                raise BGPCodecError("malformed NEXT_HOP")
            nexthop = int.from_bytes(payload, "big")
            seen_mandatory = True
        elif type_code == ATTR_MED:
            if length != 4:
                raise BGPCodecError("malformed MED")
            med = struct.unpack("!I", payload)[0]
        elif type_code == ATTR_LOCAL_PREF:
            if length != 4:
                raise BGPCodecError("malformed LOCAL_PREF")
            local_pref = struct.unpack("!I", payload)[0]
        elif type_code == ATTR_COMMUNITIES:
            if length % 4:
                raise BGPCodecError("malformed COMMUNITIES")
            communities = [
                Community(*struct.unpack_from("!HH", payload, i))
                for i in range(0, length, 4)
            ]
        elif type_code == ATTR_ORIGINATOR_ID:
            if length != 4:
                raise BGPCodecError("malformed ORIGINATOR_ID")
            originator_id = int.from_bytes(payload, "big")
        elif type_code == ATTR_CLUSTER_LIST:
            if length % 4:
                raise BGPCodecError("malformed CLUSTER_LIST")
            cluster_list = tuple(
                int.from_bytes(payload[i : i + 4], "big")
                for i in range(0, length, 4)
            )
        else:
            skipped.append(type_code)
    if not seen_mandatory or nexthop is None:
        return None, skipped
    return (
        PathAttributes(
            nexthop=nexthop,
            as_path=as_path,
            origin=origin,
            local_pref=local_pref,
            med=med,
            communities=communities,
            originator_id=originator_id,
            cluster_list=cluster_list,
        ),
        skipped,
    )


# ----------------------------------------------------------------------
# UPDATE message
# ----------------------------------------------------------------------


def encode_update(update: BGPUpdate) -> bytes:
    """Encode an UPDATE with full BGP header (marker, length, type)."""
    withdrawn = _encode_prefix_block(w.prefix for w in update.withdrawals)
    if update.announcements:
        shared = update.announcements[0].attributes
        for announcement in update.announcements:
            if announcement.attributes != shared:
                raise BGPCodecError(
                    "one UPDATE carries one attribute bundle; split"
                    " announcements with differing attributes"
                )
        attributes = encode_attributes(shared)
        nlri = _encode_prefix_block(a.prefix for a in update.announcements)
    else:
        attributes = b""
        nlri = b""
    body = (
        struct.pack("!H", len(withdrawn))
        + withdrawn
        + struct.pack("!H", len(attributes))
        + attributes
        + nlri
    )
    total = 16 + 2 + 1 + len(body)
    if total > 4096:
        raise BGPCodecError(
            f"UPDATE of {total} bytes exceeds the 4096-byte maximum;"
            " split the prefixes across messages"
        )
    return MARKER + struct.pack("!HB", total, MSG_TYPE_UPDATE) + body


def decode_update(data: bytes) -> DecodedUpdate:
    """Decode one wire UPDATE (header + body)."""
    if len(data) < 19:
        raise BGPCodecError("message shorter than the BGP header")
    if data[:16] != MARKER:
        raise BGPCodecError("bad marker")
    length, msg_type = struct.unpack_from("!HB", data, 16)
    if msg_type != MSG_TYPE_UPDATE:
        raise BGPCodecError(f"not an UPDATE (type {msg_type})")
    if length != len(data):
        raise BGPCodecError(
            f"header length {length} does not match data ({len(data)})"
        )
    body = data[19:]
    if len(body) < 2:
        raise BGPCodecError("truncated withdrawn-routes length")
    withdrawn_len = struct.unpack_from("!H", body, 0)[0]
    offset = 2
    withdrawn_block = body[offset : offset + withdrawn_len]
    if len(withdrawn_block) != withdrawn_len:
        raise BGPCodecError("truncated withdrawn routes")
    offset += withdrawn_len
    if len(body) < offset + 2:
        raise BGPCodecError("truncated attributes length")
    attrs_len = struct.unpack_from("!H", body, offset)[0]
    offset += 2
    attrs_block = body[offset : offset + attrs_len]
    if len(attrs_block) != attrs_len:
        raise BGPCodecError("truncated attributes")
    offset += attrs_len
    nlri_block = body[offset:]
    withdrawals = tuple(
        Withdrawal(p) for p in _decode_prefix_block(withdrawn_block)
    )
    attrs, skipped = (
        decode_attributes(attrs_block) if attrs_block else (None, [])
    )
    nlri = _decode_prefix_block(nlri_block)
    if nlri and attrs is None:
        raise BGPCodecError("NLRI without mandatory attributes")
    announcements = tuple(Announcement(p, attrs) for p in nlri)
    return DecodedUpdate(
        update=BGPUpdate(withdrawals=withdrawals, announcements=announcements),
        skipped_attributes=tuple(skipped),
    )
