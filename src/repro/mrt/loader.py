"""High-level MRT ↔ analysis-object conversion.

``load_updates`` turns a RouteViews-style updates file into the
:class:`repro.collector.stream.EventStream` the algorithms consume — by
replaying the wire messages through a :class:`RouteExplorer`, so
withdrawals get the Section II attribute augmentation exactly as they
would from a live feed. ``load_rib`` turns a TABLE_DUMP_V2 snapshot into
a populated collector (the TAMP picture input). The ``dump_*`` writers
are the inverse: simulated incidents exported for other tools.

Both loaders are hardened against lossy archives: every call produces
an :class:`repro.mrt.ingest.IngestReport` (attached to the returned
stream / collector and accumulated on the collector's
``ingest_reports``), an :class:`repro.mrt.ingest.IngestPolicy` chooses
raise-vs-skip-vs-abort-past-budget, and undecodable raw records can be
quarantined to JSONL for replay. A load never silently returns a
shorter stream: anything skipped is counted, classed by error, and —
past the warn threshold — warned about.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Optional

from repro.bgp.rib import Route
from repro.collector.events import BGPEvent
from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.mrt.bgp_codec import (
    decode_attributes,
    decode_prefix,
    decode_update,
    encode_attributes,
    encode_prefix,
    encode_update,
)
from repro.mrt.ingest import (
    IngestError,
    IngestPolicy,
    IngestReport,
    IngestWarning,
    QuarantineWriter,
)
from repro.mrt.records import (
    SUBTYPE_BGP4MP_MESSAGE_AS4,
    SUBTYPE_PEER_INDEX_TABLE,
    SUBTYPE_RIB_IPV4_UNICAST,
    TYPE_BGP4MP_ET,
    TYPE_TABLE_DUMP_V2,
    Bgp4mpMessage,
    MRTError,
    MRTRecord,
    PeerEntry,
    RibEntry,
    decode_bgp4mp,
    decode_peer_index,
    decode_rib_ipv4,
    encode_bgp4mp,
    encode_peer_index,
    encode_rib_ipv4,
    read_records,
    write_records,
)
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix


def _describe_source(source: str | Path | BinaryIO) -> str:
    if isinstance(source, (str, Path)):
        return str(source)
    return getattr(source, "name", None) or "<stream>"


def _resolve_policy(
    strict: bool, policy: Optional[IngestPolicy]
) -> IngestPolicy:
    """Merge the legacy *strict* flag with an explicit policy."""
    if policy is None:
        return IngestPolicy(strict=strict)
    if strict and not policy.strict:
        return replace(policy, strict=True)
    return policy


def _guarded_records(
    source: str | Path | BinaryIO,
    report: IngestReport,
    policy: IngestPolicy,
) -> Iterator[MRTRecord]:
    """Iterate records, capturing a truncated-archive framing error.

    After a framing error nothing later in the file is readable (MRT
    has no resync marker), so the iterator stops — but the report says
    why, instead of the archive just "ending early". Strict mode
    re-raises as before.
    """
    iterator = read_records(source)
    while True:
        try:
            record = next(iterator)
        except StopIteration:
            return
        except MRTError as exc:
            if policy.strict:
                raise
            report.framing_error = str(exc)
            report.note_error(exc)
            return
        report.records_read += 1
        report.observe_timestamp(record.timestamp, policy.gap_threshold)
        yield record


def _enforce_budget(report: IngestReport, policy: IngestPolicy) -> None:
    if policy.max_error_rate is None:
        return
    if report.attempted < policy.min_records:
        return
    if report.skip_rate > policy.max_error_rate:
        report.aborted = True
        raise IngestError(
            f"{report.source}: skip rate {report.skip_rate:.1%} exceeds"
            f" the {policy.max_error_rate:.1%} error budget after"
            f" {report.attempted} records",
            report,
        )


def _finish(report: IngestReport, policy: IngestPolicy) -> None:
    """End-of-load bookkeeping: warn when the skip rate is alarming."""
    if policy.strict:
        return
    if report.records_skipped and report.skip_rate > policy.warn_threshold:
        warnings.warn(
            f"{report.source}: skipped {report.records_skipped} of"
            f" {report.attempted} records ({report.skip_rate:.1%});"
            " inspect the IngestReport before trusting detector output",
            IngestWarning,
            stacklevel=3,
        )


def load_updates(
    source: str | Path | BinaryIO,
    rex: Optional[RouteExplorer] = None,
    strict: bool = False,
    policy: Optional[IngestPolicy] = None,
) -> EventStream:
    """Read a BGP4MP updates file into an event stream.

    Messages replay through *rex* (a fresh collector by default) so
    withdrawal augmentation applies; withdrawals for routes the file
    never announced are dropped, exactly as a collector mid-stream would
    drop them (``rex.dropped_withdrawals`` counts them).

    Undecodable records are handled per *policy* (see
    :class:`repro.mrt.ingest.IngestPolicy`): raised in strict mode,
    otherwise skipped with full accounting — and optionally quarantined
    — in the :class:`repro.mrt.ingest.IngestReport` attached to the
    returned stream (``stream.ingest_report``) and recorded on the
    collector (``rex.ingest_reports``). *strict* remains as shorthand
    for ``IngestPolicy(strict=True)``.
    """
    if rex is None:
        rex = RouteExplorer("mrt")
    policy = _resolve_policy(strict, policy)
    report = IngestReport(source=_describe_source(source), kind="updates")
    dropped_before = rex.dropped_withdrawals
    with QuarantineWriter(policy.quarantine) as quarantine:
        for record in _guarded_records(source, report, policy):
            if not record.is_bgp4mp_update:
                report.records_ignored += 1
                continue
            try:
                envelope = decode_bgp4mp(record.payload)
                decoded = decode_update(envelope.bgp_message)
            except (MRTError, ValueError) as exc:
                if policy.strict:
                    raise
                report.records_skipped += 1
                report.note_error(exc)
                quarantine.write(record, exc)
                report.records_quarantined = quarantine.count
                _enforce_budget(report, policy)
                continue
            report.records_decoded += 1
            report.unknown_attributes += len(decoded.skipped_attributes)
            produced = rex.observe(
                envelope.peer_address, decoded.update, record.timestamp
            )
            report.events_produced += len(produced)
    report.dropped_withdrawals = rex.dropped_withdrawals - dropped_before
    _finish(report, policy)
    rex.record_ingest(report)
    events = rex.events
    events.ingest_report = report
    return events


def dump_updates(
    events: Iterable[BGPEvent],
    destination: str | Path | BinaryIO,
    local_as: int = 0,
    local_address: int = 0,
) -> int:
    """Write events as a BGP4MP_ET updates file. Returns records written.

    Each event becomes one UPDATE (withdrawals lose their augmented
    attributes on the wire, as real BGP does — loading the file back
    re-augments them through the collector).
    """
    def generate():
        for event in events:
            if event.is_withdrawal:
                update = BGPUpdate.withdraw([event.prefix])
            else:
                update = BGPUpdate.announce([event.prefix], event.attributes)
            envelope = Bgp4mpMessage(
                peer_as=event.attributes.as_path.neighbor_as or 0,
                local_as=local_as,
                interface_index=0,
                peer_address=event.peer,
                local_address=local_address,
                bgp_message=encode_update(update),
            )
            yield MRTRecord(
                timestamp=event.timestamp,
                type=TYPE_BGP4MP_ET,
                subtype=SUBTYPE_BGP4MP_MESSAGE_AS4,
                payload=encode_bgp4mp(envelope),
            )

    return write_records(generate(), destination)


def load_rib(
    source: str | Path | BinaryIO,
    rex: Optional[RouteExplorer] = None,
    strict: bool = False,
    policy: Optional[IngestPolicy] = None,
) -> RouteExplorer:
    """Read a TABLE_DUMP_V2 snapshot into a populated collector.

    Hardened like :func:`load_updates`: the returned collector carries
    an :class:`repro.mrt.ingest.IngestReport` in ``rex.ingest_reports``
    counting skipped records and RIB sub-entries (undecodable
    attribute blocks, out-of-range peer indexes).
    """
    if rex is None:
        rex = RouteExplorer("mrt-rib")
    policy = _resolve_policy(strict, policy)
    report = IngestReport(source=_describe_source(source), kind="rib")
    peers: list[PeerEntry] = []
    with QuarantineWriter(policy.quarantine) as quarantine:
        for record in _guarded_records(source, report, policy):
            if record.is_peer_index:
                try:
                    _, peers = decode_peer_index(record.payload)
                except (MRTError, ValueError) as exc:
                    if policy.strict:
                        raise
                    report.records_skipped += 1
                    report.note_error(exc)
                    quarantine.write(record, exc)
                    report.records_quarantined = quarantine.count
                    _enforce_budget(report, policy)
                    continue
                report.records_decoded += 1
                for peer in peers:
                    rex.peer_with(peer.address)
                continue
            if not record.is_rib_entry:
                report.records_ignored += 1
                continue
            try:
                _, prefix_wire, entries = decode_rib_ipv4(record.payload)
                prefix, _ = decode_prefix(prefix_wire, 0)
            except (MRTError, ValueError) as exc:
                if policy.strict:
                    raise
                report.records_skipped += 1
                report.note_error(exc)
                quarantine.write(record, exc)
                report.records_quarantined = quarantine.count
                _enforce_budget(report, policy)
                continue
            report.records_decoded += 1
            for entry in entries:
                report.entries_read += 1
                if entry.peer_index >= len(peers):
                    if policy.strict:
                        raise MRTError(
                            f"peer index {entry.peer_index} out of range"
                        )
                    report.entries_skipped += 1
                    report.note_error(
                        MRTError("peer index out of range")
                    )
                    continue
                try:
                    attrs, skipped_codes = decode_attributes(
                        entry.attributes
                    )
                except (MRTError, ValueError) as exc:
                    if policy.strict:
                        raise
                    report.entries_skipped += 1
                    report.note_error(exc)
                    continue
                report.unknown_attributes += len(skipped_codes)
                if attrs is None:
                    report.entries_skipped += 1
                    report.note_error(
                        MRTError("RIB entry lacks mandatory attributes")
                    )
                    continue
                peer = peers[entry.peer_index]
                rex.peer_with(peer.address)
                rex.rib(peer.address).announce(prefix, attrs)
    _finish(report, policy)
    rex.record_ingest(report)
    return rex


def dump_rib(
    rex: RouteExplorer,
    destination: str | Path | BinaryIO,
    collector_id: int = 0,
    timestamp: float = 0.0,
) -> int:
    """Write a collector's tables as a TABLE_DUMP_V2 snapshot."""
    peer_addresses = sorted(rex.peers())
    peers = [
        PeerEntry(bgp_id=address, address=address, asn=0)
        for address in peer_addresses
    ]
    index_of = {address: i for i, address in enumerate(peer_addresses)}

    def generate():
        yield MRTRecord(
            timestamp=timestamp,
            type=TYPE_TABLE_DUMP_V2,
            subtype=SUBTYPE_PEER_INDEX_TABLE,
            payload=encode_peer_index(collector_id, peers),
        )
        by_prefix: dict[Prefix, list[Route]] = {}
        for route in rex.all_routes():
            by_prefix.setdefault(route.prefix, []).append(route)
        for sequence, prefix in enumerate(sorted(by_prefix)):
            entries = [
                RibEntry(
                    peer_index=index_of[route.peer],
                    originated_time=int(timestamp),
                    attributes=encode_attributes(route.attributes),
                )
                for route in by_prefix[prefix]
            ]
            yield MRTRecord(
                timestamp=timestamp,
                type=TYPE_TABLE_DUMP_V2,
                subtype=SUBTYPE_RIB_IPV4_UNICAST,
                payload=encode_rib_ipv4(
                    sequence, encode_prefix(prefix), entries
                ),
            )

    return write_records(generate(), destination)
