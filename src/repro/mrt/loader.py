"""High-level MRT ↔ analysis-object conversion.

``load_updates`` turns a RouteViews-style updates file into the
:class:`repro.collector.stream.EventStream` the algorithms consume — by
replaying the wire messages through a :class:`RouteExplorer`, so
withdrawals get the Section II attribute augmentation exactly as they
would from a live feed. ``load_rib`` turns a TABLE_DUMP_V2 snapshot into
a populated collector (the TAMP picture input). The ``dump_*`` writers
are the inverse: simulated incidents exported for other tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Iterable, Optional

from repro.bgp.rib import Route
from repro.collector.events import BGPEvent
from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.mrt.bgp_codec import (
    decode_attributes,
    decode_prefix,
    decode_update,
    encode_attributes,
    encode_prefix,
    encode_update,
)
from repro.mrt.records import (
    SUBTYPE_BGP4MP_MESSAGE_AS4,
    SUBTYPE_PEER_INDEX_TABLE,
    SUBTYPE_RIB_IPV4_UNICAST,
    TYPE_BGP4MP_ET,
    TYPE_TABLE_DUMP_V2,
    Bgp4mpMessage,
    MRTError,
    MRTRecord,
    PeerEntry,
    RibEntry,
    decode_bgp4mp,
    decode_peer_index,
    decode_rib_ipv4,
    encode_bgp4mp,
    encode_peer_index,
    encode_rib_ipv4,
    read_records,
    write_records,
)
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix


def load_updates(
    source: str | Path | BinaryIO,
    rex: Optional[RouteExplorer] = None,
    strict: bool = False,
) -> EventStream:
    """Read a BGP4MP updates file into an event stream.

    Messages replay through *rex* (a fresh collector by default) so
    withdrawal augmentation applies; withdrawals for routes the file
    never announced are dropped, exactly as a collector mid-stream would
    drop them (``rex.dropped_withdrawals`` counts them). With *strict*
    undecodable records raise; by default they are skipped — archives
    contain state changes and unsupported AFIs.
    """
    if rex is None:
        rex = RouteExplorer("mrt")
    for record in read_records(source):
        if not record.is_bgp4mp_update:
            continue
        try:
            envelope = decode_bgp4mp(record.payload)
            decoded = decode_update(envelope.bgp_message)
        except (MRTError, ValueError):
            if strict:
                raise
            continue
        rex.observe(envelope.peer_address, decoded.update, record.timestamp)
    return rex.events


def dump_updates(
    events: Iterable[BGPEvent],
    destination: str | Path | BinaryIO,
    local_as: int = 0,
    local_address: int = 0,
) -> int:
    """Write events as a BGP4MP_ET updates file. Returns records written.

    Each event becomes one UPDATE (withdrawals lose their augmented
    attributes on the wire, as real BGP does — loading the file back
    re-augments them through the collector).
    """
    def generate():
        for event in events:
            if event.is_withdrawal:
                update = BGPUpdate.withdraw([event.prefix])
            else:
                update = BGPUpdate.announce([event.prefix], event.attributes)
            envelope = Bgp4mpMessage(
                peer_as=event.attributes.as_path.neighbor_as or 0,
                local_as=local_as,
                interface_index=0,
                peer_address=event.peer,
                local_address=local_address,
                bgp_message=encode_update(update),
            )
            yield MRTRecord(
                timestamp=event.timestamp,
                type=TYPE_BGP4MP_ET,
                subtype=SUBTYPE_BGP4MP_MESSAGE_AS4,
                payload=encode_bgp4mp(envelope),
            )

    return write_records(generate(), destination)


def load_rib(
    source: str | Path | BinaryIO,
    rex: Optional[RouteExplorer] = None,
    strict: bool = False,
) -> RouteExplorer:
    """Read a TABLE_DUMP_V2 snapshot into a populated collector."""
    if rex is None:
        rex = RouteExplorer("mrt-rib")
    peers: list[PeerEntry] = []
    for record in read_records(source):
        if record.is_peer_index:
            _, peers = decode_peer_index(record.payload)
            for peer in peers:
                rex.peer_with(peer.address)
            continue
        if not record.is_rib_entry:
            continue
        try:
            _, prefix_wire, entries = decode_rib_ipv4(record.payload)
            prefix, _ = decode_prefix(prefix_wire, 0)
        except (MRTError, ValueError):
            if strict:
                raise
            continue
        for entry in entries:
            if entry.peer_index >= len(peers):
                if strict:
                    raise MRTError(
                        f"peer index {entry.peer_index} out of range"
                    )
                continue
            attrs, _ = decode_attributes(entry.attributes)
            if attrs is None:
                continue
            peer = peers[entry.peer_index]
            rex.peer_with(peer.address)
            rex.rib(peer.address).announce(prefix, attrs)
    return rex


def dump_rib(
    rex: RouteExplorer,
    destination: str | Path | BinaryIO,
    collector_id: int = 0,
    timestamp: float = 0.0,
) -> int:
    """Write a collector's tables as a TABLE_DUMP_V2 snapshot."""
    peer_addresses = sorted(rex.peers())
    peers = [
        PeerEntry(bgp_id=address, address=address, asn=0)
        for address in peer_addresses
    ]
    index_of = {address: i for i, address in enumerate(peer_addresses)}

    def generate():
        yield MRTRecord(
            timestamp=timestamp,
            type=TYPE_TABLE_DUMP_V2,
            subtype=SUBTYPE_PEER_INDEX_TABLE,
            payload=encode_peer_index(collector_id, peers),
        )
        by_prefix: dict[Prefix, list[Route]] = {}
        for route in rex.all_routes():
            by_prefix.setdefault(route.prefix, []).append(route)
        for sequence, prefix in enumerate(sorted(by_prefix)):
            entries = [
                RibEntry(
                    peer_index=index_of[route.peer],
                    originated_time=int(timestamp),
                    attributes=encode_attributes(route.attributes),
                )
                for route in by_prefix[prefix]
            ]
            yield MRTRecord(
                timestamp=timestamp,
                type=TYPE_TABLE_DUMP_V2,
                subtype=SUBTYPE_RIB_IPV4_UNICAST,
                payload=encode_rib_ipv4(
                    sequence, encode_prefix(prefix), entries
                ),
            )

    return write_records(generate(), destination)
