"""MRT record framing (RFC 6396).

Implements the subset the public BGP archives use:

* BGP4MP (type 16) / BGP4MP_ET (17), subtype BGP4MP_MESSAGE_AS4 (4):
  one BGP message with peer/local addresses and 4-byte ASNs. This is the
  RouteViews "updates" file format.
* TABLE_DUMP_V2 (type 13), subtypes PEER_INDEX_TABLE (1) and
  RIB_IPV4_UNICAST (2): RIB snapshots, the "rib" files.

Only IPv4 AFI is handled, matching the rest of the reproduction; IPv6
records are surfaced as unparsed payloads rather than errors.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

TYPE_TABLE_DUMP_V2 = 13
TYPE_BGP4MP = 16
TYPE_BGP4MP_ET = 17

SUBTYPE_PEER_INDEX_TABLE = 1
SUBTYPE_RIB_IPV4_UNICAST = 2
SUBTYPE_BGP4MP_MESSAGE_AS4 = 4

AFI_IPV4 = 1


class MRTError(ValueError):
    """Malformed MRT data."""


@dataclass(frozen=True, slots=True)
class MRTRecord:
    """One framed MRT record: common header plus raw payload."""

    timestamp: float
    type: int
    subtype: int
    payload: bytes

    @property
    def is_bgp4mp_update(self) -> bool:
        return (
            self.type in (TYPE_BGP4MP, TYPE_BGP4MP_ET)
            and self.subtype == SUBTYPE_BGP4MP_MESSAGE_AS4
        )

    @property
    def is_rib_entry(self) -> bool:
        return (
            self.type == TYPE_TABLE_DUMP_V2
            and self.subtype == SUBTYPE_RIB_IPV4_UNICAST
        )

    @property
    def is_peer_index(self) -> bool:
        return (
            self.type == TYPE_TABLE_DUMP_V2
            and self.subtype == SUBTYPE_PEER_INDEX_TABLE
        )


def write_records(
    records: Iterable[MRTRecord], destination: str | Path | BinaryIO
) -> int:
    """Write *records* to a file path or binary stream. Returns count."""
    own = isinstance(destination, (str, Path))
    handle: BinaryIO = (
        open(destination, "wb") if own else destination  # type: ignore[arg-type]
    )
    count = 0
    try:
        for record in records:
            header = struct.pack(
                "!IHHI",
                int(record.timestamp),
                record.type,
                record.subtype,
                len(record.payload)
                + (4 if record.type == TYPE_BGP4MP_ET else 0),
            )
            handle.write(header)
            if record.type == TYPE_BGP4MP_ET:
                microseconds = int(
                    (record.timestamp - int(record.timestamp)) * 1e6
                )
                handle.write(struct.pack("!I", microseconds))
            handle.write(record.payload)
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_records(source: str | Path | BinaryIO) -> Iterator[MRTRecord]:
    """Yield records from a file path or binary stream."""
    own = isinstance(source, (str, Path))
    handle: BinaryIO = open(source, "rb") if own else source  # type: ignore[arg-type]
    try:
        while True:
            header = handle.read(12)
            if not header:
                return
            if len(header) < 12:
                raise MRTError("truncated MRT common header")
            timestamp, rec_type, subtype, length = struct.unpack(
                "!IHHI", header
            )
            extra_time = 0.0
            if rec_type == TYPE_BGP4MP_ET:
                micro_raw = handle.read(4)
                if len(micro_raw) < 4:
                    raise MRTError("truncated extended timestamp")
                extra_time = struct.unpack("!I", micro_raw)[0] / 1e6
                length -= 4
            if length < 0:
                raise MRTError("negative payload length")
            payload = handle.read(length)
            if len(payload) < length:
                raise MRTError("truncated MRT payload")
            yield MRTRecord(
                timestamp=timestamp + extra_time,
                type=rec_type,
                subtype=subtype,
                payload=payload,
            )
    finally:
        if own:
            handle.close()


# ----------------------------------------------------------------------
# BGP4MP_MESSAGE_AS4 payload
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Bgp4mpMessage:
    """The decoded BGP4MP_MESSAGE_AS4 envelope around one BGP message."""

    peer_as: int
    local_as: int
    interface_index: int
    peer_address: int
    local_address: int
    bgp_message: bytes


def encode_bgp4mp(message: Bgp4mpMessage) -> bytes:
    return (
        struct.pack(
            "!IIHH",
            message.peer_as,
            message.local_as,
            message.interface_index,
            AFI_IPV4,
        )
        + message.peer_address.to_bytes(4, "big")
        + message.local_address.to_bytes(4, "big")
        + message.bgp_message
    )


def decode_bgp4mp(payload: bytes) -> Bgp4mpMessage:
    if len(payload) < 20:
        raise MRTError("truncated BGP4MP_MESSAGE_AS4 payload")
    peer_as, local_as, ifindex, afi = struct.unpack_from("!IIHH", payload, 0)
    if afi != AFI_IPV4:
        raise MRTError(f"unsupported AFI {afi} (IPv4 only)")
    peer_address = int.from_bytes(payload[12:16], "big")
    local_address = int.from_bytes(payload[16:20], "big")
    return Bgp4mpMessage(
        peer_as=peer_as,
        local_as=local_as,
        interface_index=ifindex,
        peer_address=peer_address,
        local_address=local_address,
        bgp_message=payload[20:],
    )


# ----------------------------------------------------------------------
# TABLE_DUMP_V2 payloads
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PeerEntry:
    """One peer of a TABLE_DUMP_V2 peer index."""

    bgp_id: int
    address: int
    asn: int


def encode_peer_index(collector_id: int, peers: list[PeerEntry]) -> bytes:
    out = collector_id.to_bytes(4, "big")
    out += struct.pack("!H", 0)  # view name length (unnamed view)
    out += struct.pack("!H", len(peers))
    for peer in peers:
        # Peer type 0x02: AS number is 32 bits, address is IPv4.
        out += bytes([0x02])
        out += peer.bgp_id.to_bytes(4, "big")
        out += peer.address.to_bytes(4, "big")
        out += struct.pack("!I", peer.asn)
    return out


def decode_peer_index(payload: bytes) -> tuple[int, list[PeerEntry]]:
    if len(payload) < 8:
        raise MRTError("truncated PEER_INDEX_TABLE")
    collector_id = int.from_bytes(payload[:4], "big")
    name_len = struct.unpack_from("!H", payload, 4)[0]
    offset = 6 + name_len
    if len(payload) < offset + 2:
        raise MRTError("truncated peer count")
    count = struct.unpack_from("!H", payload, offset)[0]
    offset += 2
    peers = []
    for _ in range(count):
        if offset >= len(payload):
            raise MRTError("truncated peer entry")
        peer_type = payload[offset]
        offset += 1
        ipv6 = bool(peer_type & 0x01)
        as4 = bool(peer_type & 0x02)
        addr_len = 16 if ipv6 else 4
        as_len = 4 if as4 else 2
        if offset + 4 + addr_len + as_len > len(payload):
            # Without the bounds check the int.from_bytes slices below
            # would quietly read short and fabricate zero IDs/ASNs.
            raise MRTError("truncated peer entry")
        bgp_id = int.from_bytes(payload[offset : offset + 4], "big")
        offset += 4
        address_raw = payload[offset : offset + addr_len]
        offset += addr_len
        asn = int.from_bytes(payload[offset : offset + as_len], "big")
        offset += as_len
        address = int.from_bytes(address_raw[:4], "big") if not ipv6 else 0
        peers.append(PeerEntry(bgp_id=bgp_id, address=address, asn=asn))
    return collector_id, peers


@dataclass(frozen=True, slots=True)
class RibEntry:
    """One (peer, attributes) pair of a RIB_IPV4_UNICAST record."""

    peer_index: int
    originated_time: int
    attributes: bytes  # encoded path-attribute block


def encode_rib_ipv4(
    sequence: int, prefix_wire: bytes, entries: list[RibEntry]
) -> bytes:
    out = struct.pack("!I", sequence) + prefix_wire
    out += struct.pack("!H", len(entries))
    for entry in entries:
        out += struct.pack("!HI", entry.peer_index, entry.originated_time)
        out += struct.pack("!H", len(entry.attributes))
        out += entry.attributes
    return out


def decode_rib_ipv4(payload: bytes) -> tuple[int, bytes, list[RibEntry]]:
    """Returns (sequence, prefix wire bytes, entries)."""
    if len(payload) < 5:
        raise MRTError("truncated RIB entry")
    sequence = struct.unpack_from("!I", payload, 0)[0]
    plen = payload[4]
    if plen > 32:
        raise MRTError(f"RIB prefix length {plen} exceeds 32")
    nbytes = (plen + 7) // 8
    if len(payload) < 5 + nbytes:
        raise MRTError("truncated RIB prefix")
    prefix_wire = payload[4 : 5 + nbytes]
    offset = 5 + nbytes
    if len(payload) < offset + 2:
        raise MRTError("truncated RIB entry count")
    count = struct.unpack_from("!H", payload, offset)[0]
    offset += 2
    entries = []
    for _ in range(count):
        if len(payload) < offset + 8:
            raise MRTError("truncated RIB sub-entry")
        peer_index, originated = struct.unpack_from("!HI", payload, offset)
        offset += 6
        attr_len = struct.unpack_from("!H", payload, offset)[0]
        offset += 2
        attributes = payload[offset : offset + attr_len]
        if len(attributes) != attr_len:
            raise MRTError("truncated RIB attributes")
        offset += attr_len
        entries.append(
            RibEntry(
                peer_index=peer_index,
                originated_time=originated,
                attributes=attributes,
            )
        )
    return sequence, prefix_wire, entries
