"""Ingest accounting: what an MRT load actually read, skipped and lost.

Production archives are messy — truncated downloads, malformed UPDATEs,
unsupported AFIs, session resets that reorder the feed. The loaders in
:mod:`repro.mrt.loader` used to skip anything undecodable silently,
which meant nothing downstream could tell a clean ingest from a lossy
one. This module is the remedy:

* :class:`IngestReport` — per-load accounting (records read / decoded /
  skipped / quarantined, per-error-class counts, first/last timestamps,
  out-of-order and gap detection). Every load produces one; it rides on
  the returned object and on the collector
  (:attr:`repro.collector.rex.RouteExplorer.ingest_reports`).
* :class:`IngestPolicy` — the strictness knob. ``strict`` raises on the
  first undecodable record; ``max_error_rate`` skips up to a budget and
  aborts past it (:class:`IngestError`); the default skips everything
  but *counts it* and warns (:class:`IngestWarning`) when the skip rate
  crosses ``warn_threshold``.
* Quarantine — undecodable raw records can be written to a JSONL
  side-channel (:class:`QuarantineWriter`) and replayed later with
  :func:`read_quarantine`, e.g. after a codec fix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator, Optional

from repro.mrt.records import MRTError, MRTRecord

#: Gap entries kept verbatim on the report; beyond this only
#: ``gap_count`` grows (pathological feeds must not balloon memory).
MAX_RECORDED_GAPS = 20


class IngestError(MRTError):
    """The error budget of an :class:`IngestPolicy` was exceeded.

    Carries the partial :class:`IngestReport` so the caller can see how
    far the load got and what killed it.
    """

    def __init__(self, message: str, report: "IngestReport") -> None:
        super().__init__(message)
        self.report = report


class IngestWarning(UserWarning):
    """A non-strict load skipped more records than the warn threshold."""


@dataclass(frozen=True)
class IngestPolicy:
    """How a loader should treat undecodable input.

    *strict*: raise the decode error immediately (the historical
    ``strict=True`` flag). *max_error_rate*: tolerate skips up to this
    fraction of attempted records, then raise :class:`IngestError` —
    the check starts after *min_records* attempts so one bad record at
    the head of a file does not abort it. *warn_threshold*: in default
    (skip) mode, finish the load but emit an :class:`IngestWarning`
    when the final skip rate exceeds it. *gap_threshold*: seconds of
    silence between consecutive records that count as a feed gap.
    *quarantine*: JSONL path collecting the raw undecodable records for
    later replay (:func:`read_quarantine`).
    """

    strict: bool = False
    max_error_rate: Optional[float] = None
    min_records: int = 25
    warn_threshold: float = 0.01
    gap_threshold: float = 3600.0
    quarantine: Optional[str | Path] = None


@dataclass
class IngestReport:
    """Accounting for one ``load_updates`` / ``load_rib`` call.

    ``records_read`` counts every framed MRT record seen;
    ``records_ignored`` the ones of types the loader does not consume
    (state changes, other AFIs' subtypes); ``records_decoded`` and
    ``records_skipped`` partition the relevant ones. ``entries_read`` /
    ``entries_skipped`` count RIB sub-entries (TABLE_DUMP_V2 loads
    only). Timestamps, regressions and gaps describe the feed's shape;
    ``framing_error`` is set when the archive itself was truncated
    mid-record (nothing after that point is readable).
    """

    source: str
    kind: str = "updates"
    records_read: int = 0
    records_ignored: int = 0
    records_decoded: int = 0
    records_skipped: int = 0
    records_quarantined: int = 0
    entries_read: int = 0
    entries_skipped: int = 0
    events_produced: int = 0
    #: Withdrawals the collector dropped during *this* load (routes the
    #: archive never announced) — the delta of the rex counter.
    dropped_withdrawals: int = 0
    #: Unmodeled path-attribute type codes skipped by the BGP codec.
    unknown_attributes: int = 0
    error_counts: dict[str, int] = field(default_factory=dict)
    first_timestamp: Optional[float] = None
    last_timestamp: Optional[float] = None
    out_of_order_records: int = 0
    gap_count: int = 0
    #: Up to :data:`MAX_RECORDED_GAPS` of (timestamp, gap seconds).
    gaps: list[tuple[float, float]] = field(default_factory=list)
    framing_error: Optional[str] = None
    aborted: bool = False

    # -- accumulation (loader-side) ------------------------------------

    def note_error(self, exc: BaseException) -> None:
        name = type(exc).__name__
        self.error_counts[name] = self.error_counts.get(name, 0) + 1

    def observe_timestamp(self, timestamp: float, gap_threshold: float) -> None:
        if self.first_timestamp is None:
            self.first_timestamp = timestamp
        else:
            previous = self.last_timestamp
            assert previous is not None
            delta = timestamp - previous
            if delta < 0:
                self.out_of_order_records += 1
            elif delta > gap_threshold:
                self.gap_count += 1
                if len(self.gaps) < MAX_RECORDED_GAPS:
                    self.gaps.append((previous, delta))
        self.last_timestamp = timestamp

    # -- interpretation (caller-side) ----------------------------------

    @property
    def attempted(self) -> int:
        """Relevant records a decode was attempted for."""
        return self.records_decoded + self.records_skipped

    @property
    def skip_rate(self) -> float:
        return self.records_skipped / self.attempted if self.attempted else 0.0

    @property
    def ok(self) -> bool:
        """True when nothing was lost: every relevant record decoded,
        every RIB entry applied, and the archive framing was intact."""
        return (
            self.records_skipped == 0
            and self.entries_skipped == 0
            and self.framing_error is None
            and not self.aborted
        )

    @property
    def is_lossy(self) -> bool:
        return not self.ok

    @property
    def suspicious(self) -> bool:
        """Lossy, reordered, or gapped — anything a detector downstream
        should know about before trusting its own output."""
        return (
            self.is_lossy
            or self.out_of_order_records > 0
            or self.gap_count > 0
            or self.unknown_attributes > 0
        )

    def summary(self) -> str:
        """One-paragraph operator summary."""
        lines = [
            f"ingest {self.kind} from {self.source}:"
            f" {self.records_read} records read,"
            f" {self.records_decoded} decoded,"
            f" {self.records_skipped} skipped"
            f" ({self.skip_rate:.1%} of attempted),"
            f" {self.records_ignored} ignored,"
            f" {self.events_produced} events",
        ]
        if self.kind == "rib":
            lines.append(
                f"  rib entries: {self.entries_read} read,"
                f" {self.entries_skipped} skipped"
            )
        if self.error_counts:
            per_class = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.error_counts.items())
            )
            lines.append(f"  errors: {per_class}")
        if self.records_quarantined:
            lines.append(f"  quarantined: {self.records_quarantined}")
        if self.dropped_withdrawals:
            lines.append(
                f"  dropped withdrawals: {self.dropped_withdrawals}"
            )
        if self.unknown_attributes:
            lines.append(
                f"  unmodeled attributes skipped: {self.unknown_attributes}"
            )
        if self.first_timestamp is not None:
            lines.append(
                f"  time: {self.first_timestamp:.1f}"
                f" .. {self.last_timestamp:.1f},"
                f" {self.out_of_order_records} out-of-order,"
                f" {self.gap_count} gap(s)"
            )
        if self.framing_error:
            lines.append(f"  FRAMING ERROR (file cut short): {self.framing_error}")
        if self.aborted:
            lines.append("  ABORTED: error budget exceeded")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable view (artifact / logging friendly)."""
        return {
            "source": self.source,
            "kind": self.kind,
            "records_read": self.records_read,
            "records_ignored": self.records_ignored,
            "records_decoded": self.records_decoded,
            "records_skipped": self.records_skipped,
            "records_quarantined": self.records_quarantined,
            "entries_read": self.entries_read,
            "entries_skipped": self.entries_skipped,
            "events_produced": self.events_produced,
            "dropped_withdrawals": self.dropped_withdrawals,
            "unknown_attributes": self.unknown_attributes,
            "error_counts": dict(sorted(self.error_counts.items())),
            "first_timestamp": self.first_timestamp,
            "last_timestamp": self.last_timestamp,
            "out_of_order_records": self.out_of_order_records,
            "gap_count": self.gap_count,
            "gaps": [list(gap) for gap in self.gaps],
            "framing_error": self.framing_error,
            "aborted": self.aborted,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IngestReport":
        """Rebuild a report from :meth:`to_dict` output.

        The pipeline checkpoints a source's ingest report alongside the
        stream offset so a resumed monitor still knows how trustworthy
        its input was. ``ok`` is derived, not stored.
        """
        report = cls(
            source=str(data.get("source", "unknown")),
            kind=str(data.get("kind", "updates")),
        )
        for name in (
            "records_read",
            "records_ignored",
            "records_decoded",
            "records_skipped",
            "records_quarantined",
            "entries_read",
            "entries_skipped",
            "events_produced",
            "dropped_withdrawals",
            "unknown_attributes",
            "out_of_order_records",
            "gap_count",
        ):
            setattr(report, name, int(data.get(name, 0)))
        report.error_counts = {
            str(name): int(count)
            for name, count in dict(data.get("error_counts", {})).items()
        }
        report.first_timestamp = data.get("first_timestamp")
        report.last_timestamp = data.get("last_timestamp")
        report.gaps = [
            (float(gap[0]), float(gap[1])) for gap in data.get("gaps", [])
        ]
        report.framing_error = data.get("framing_error")
        report.aborted = bool(data.get("aborted", False))
        return report


class QuarantineWriter:
    """Append undecodable raw records to a JSONL side-channel.

    Each line holds the record's framing fields, the error that killed
    the decode, and the payload as hex — enough to replay the exact
    bytes later (:func:`read_quarantine`). The file opens lazily on the
    first write, so a clean load leaves no empty quarantine behind.
    """

    def __init__(self, path: Optional[str | Path]) -> None:
        self._path = Path(path) if path is not None else None
        self._handle: Optional[IO[str]] = None
        self.count = 0

    def write(self, record: MRTRecord, error: BaseException) -> None:
        if self._path is None:
            return
        if self._handle is None:
            self._handle = open(self._path, "w", encoding="utf-8")
        line = json.dumps(
            {
                "t": record.timestamp,
                "type": record.type,
                "subtype": record.subtype,
                "error": type(error).__name__,
                "message": str(error),
                "payload": record.payload.hex(),
            },
            separators=(",", ":"),
        )
        self._handle.write(line + "\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "QuarantineWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_quarantine(path: str | Path) -> Iterator[MRTRecord]:
    """Replay a quarantine file as :class:`MRTRecord` objects.

    The records carry the exact original payload bytes, so they can be
    re-framed with :func:`repro.mrt.records.write_records` or pushed
    back through a (fixed) decoder.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            yield MRTRecord(
                timestamp=float(entry["t"]),
                type=int(entry["type"]),
                subtype=int(entry["subtype"]),
                payload=bytes.fromhex(entry["payload"]),
            )
