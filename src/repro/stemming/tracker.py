"""Incident lifecycle tracking across successive detector reports.

A deployed detector reports every few minutes; operators care about the
*delta*: which incidents are new, which are ongoing (and for how long),
which have resolved. The tracker keys components by their stem (the
problem location) and maintains that lifecycle, turning a stream of
decompositions into a stream of operational state changes — the piece
that makes the Section III real-time story usable on a pager.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.stemming.detector import DetectorReport
from repro.stemming.encode import format_stem
from repro.stemming.stemmer import Component


class IncidentState(enum.Enum):
    NEW = "new"
    ONGOING = "ongoing"
    RESOLVED = "resolved"


@dataclass
class TrackedIncident:
    """One problem location's lifecycle."""

    location: tuple[object, object]
    first_seen: float
    last_seen: float
    state: IncidentState
    #: The most recent component observed for this location.
    component: Component
    #: Peak correlation strength over the incident's lifetime.
    peak_strength: int
    observations: int = 1

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    def describe(self) -> str:
        return (
            f"[{self.state.value:8}] {format_stem(self.component.stem)}"
            f" — seen {self.observations}x over {self.duration:.0f}s,"
            f" peak strength {self.peak_strength}"
        )


@dataclass(slots=True)
class IncidentTracker:
    """Folds successive :class:`DetectorReport`s into incident lifecycles.

    *resolve_after* is the grace period: a location absent from reports
    for that many seconds flips to RESOLVED (flapping detectors would
    otherwise thrash between new/resolved). *min_strength* ignores
    weak components entirely.
    """

    resolve_after: float = 600.0
    min_strength: int = 3
    #: Bound on retained RESOLVED incidents (None = keep forever). A
    #: long-running monitor folds reports indefinitely; without a
    #: bound the resolved tail grows without limit.
    max_resolved: Optional[int] = None
    _incidents: dict[tuple[object, object], TrackedIncident] = field(
        default_factory=dict
    )

    def observe(self, report: DetectorReport) -> list[TrackedIncident]:
        """Fold one report in; returns incidents whose state changed."""
        now = report.at
        seen: set[tuple[object, object]] = set()
        changed: list[TrackedIncident] = []
        # repro: allow[DET002] by_window is keyed by the detector's
        # fixed window ladder, inserted shortest-first every report.
        for result in report.by_window.values():
            for component in result.components:
                if component.strength < self.min_strength:
                    continue
                location = component.location
                if location in seen:
                    # Already updated from a shorter window this round;
                    # keep the stronger observation.
                    incident = self._incidents[location]
                    if component.strength > incident.component.strength:
                        incident.component = component
                        incident.peak_strength = max(
                            incident.peak_strength, component.strength
                        )
                    continue
                seen.add(location)
                incident = self._incidents.get(location)
                if incident is None:
                    incident = TrackedIncident(
                        location=location,
                        first_seen=now,
                        last_seen=now,
                        state=IncidentState.NEW,
                        component=component,
                        peak_strength=component.strength,
                    )
                    self._incidents[location] = incident
                    changed.append(incident)
                else:
                    was = incident.state
                    incident.last_seen = now
                    incident.component = component
                    incident.peak_strength = max(
                        incident.peak_strength, component.strength
                    )
                    incident.observations += 1
                    incident.state = IncidentState.ONGOING
                    if was is IncidentState.RESOLVED:
                        # A relapse is operationally a state change.
                        changed.append(incident)
        # Resolve incidents that went quiet.
        for location, incident in self._incidents.items():
            if location in seen:
                continue
            if (
                incident.state is not IncidentState.RESOLVED
                and now - incident.last_seen >= self.resolve_after
            ):
                incident.state = IncidentState.RESOLVED
                changed.append(incident)
        self.evict_resolved()
        return changed

    def evict_resolved(
        self, max_resolved: Optional[int] = None
    ) -> list[TrackedIncident]:
        """Drop the oldest RESOLVED incidents beyond the retention cap.

        Eviction order is deterministic regardless of dict insertion
        history: oldest ``last_seen`` first, ties broken by the
        formatted stem (a total order — two incidents never share a
        location key). Evicting an incident only forgets its
        *lifecycle*; if the location acts up again it re-enters as NEW,
        exactly as if the tracker were fresh. Returns the evicted
        incidents, oldest first.
        """
        cap = self.max_resolved if max_resolved is None else max_resolved
        if cap is None:
            return []
        resolved = [
            (location, incident)
            for location, incident in self._incidents.items()
            if incident.state is IncidentState.RESOLVED
        ]
        excess = len(resolved) - cap
        if excess <= 0:
            return []
        resolved.sort(
            key=lambda item: (
                item[1].last_seen,
                format_stem(item[1].component.stem),
            )
        )
        evicted = []
        for location, incident in resolved[:excess]:
            del self._incidents[location]
            evicted.append(incident)
        return evicted

    def active(self) -> list[TrackedIncident]:
        """Incidents not yet resolved, strongest first."""
        return sorted(
            (
                i
                for i in self._incidents.values()
                if i.state is not IncidentState.RESOLVED
            ),
            key=lambda i: -i.peak_strength,
        )

    def incident_at(
        self, location: tuple[object, object]
    ) -> Optional[TrackedIncident]:
        return self._incidents.get(location)

    def all_incidents(self) -> list[TrackedIncident]:
        # repro: allow[DET002] first-seen order is the intended
        # presentation order and the tracker is fed deterministically.
        return list(self._incidents.values())

    def summary(self) -> str:
        if not self._incidents:
            return "no incidents tracked"
        return "\n".join(
            incident.describe()
            for incident in sorted(
                self._incidents.values(), key=lambda i: i.first_seen
            )
        )
