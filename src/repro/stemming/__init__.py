"""Stemming: root-cause anomaly detection over BGP event streams.

Section III-B of the paper. Each BGP event is encoded as the sequence
``c = x h a1 … an p`` (peer, nexthop, AS path, prefix). Stemming counts
every contiguous subsequence across the stream, takes the strongest one,
and reads the *last adjacent pair* of that subsequence as the problem
location (the "stem"). The prefixes carried by the winning subsequence
select the correlated component of events; removing it and repeating
decomposes a million-event stream into a handful of ranked incidents.

Key property (Section III-B): temporal independence. Correlation is
well-defined at any timescale, so the same algorithm finds second-scale
session resets and week-scale single-prefix oscillations — the latter
invisible to every rate-threshold detector.
"""

from repro.stemming.counter import (
    NaiveSubsequenceCounter,
    SubsequenceCounter,
)
from repro.stemming.stemmer import Component, Stemmer, StemmingResult
from repro.stemming.detector import StreamingDetector, DetectorReport
from repro.stemming.tracker import (
    IncidentState,
    IncidentTracker,
    TrackedIncident,
)
from repro.stemming.weighted import TrafficWeightedStemmer
from repro.stemming.encode import format_stem, format_token

__all__ = [
    "SubsequenceCounter",
    "NaiveSubsequenceCounter",
    "Stemmer",
    "Component",
    "StemmingResult",
    "StreamingDetector",
    "DetectorReport",
    "IncidentTracker",
    "IncidentState",
    "TrackedIncident",
    "TrafficWeightedStemmer",
    "format_token",
    "format_stem",
]
