"""Token formatting for Stemming output.

Sequence tokens are (namespace, value) pairs produced by
:meth:`repro.collector.events.BGPEvent.sequence`. These helpers render
them the way an operator reads them: peers and nexthops as dotted quads,
ASes as ``AS209``, prefixes as CIDR text.
"""

from __future__ import annotations

from repro.collector.events import Token
from repro.net.prefix import format_address


def format_token(token: Token) -> str:
    """Operator-readable rendering of one sequence token."""
    namespace, value = token
    if namespace == "peer":
        return f"peer {format_address(value)}"  # type: ignore[arg-type]
    if namespace == "nh":
        return f"nexthop {format_address(value)}"  # type: ignore[arg-type]
    if namespace == "as":
        return f"AS{value}"
    if namespace == "pfx":
        return str(value)
    raise ValueError(f"unknown token namespace {namespace!r}")


def format_stem(stem: tuple[Token, Token]) -> str:
    """Render a stem (problem-location edge), e.g. ``AS11423--AS209``."""
    left, right = stem
    return f"{format_token(left)}--{format_token(right)}"


def stem_values(stem: tuple[Token, Token]) -> tuple[object, object]:
    """The bare values of a stem, for comparison against ground truth.

    Scenario ground truth records locations as value pairs (e.g.
    ``(11423, 209)``); this strips the namespaces for matching.
    """
    return (stem[0][1], stem[1][1])
