"""Traffic-weighted Stemming (Section III-D.2).

Stemming's prefix counts weigh every prefix equally, but Internet traffic
is elephants-and-mice: 10% of prefixes can carry 90% of the bytes. A
routing problem on a few elephant prefixes matters far more than one on a
thousand idle mice. The weighted stemmer multiplies each event's
contribution by the traffic volume of its prefix, so the decomposition
ranks incidents by *impact* rather than by event count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.collector.events import BGPEvent, Token
from repro.collector.stream import EventStream
from repro.net.prefix import Prefix
from repro.stemming.counter import _subsequences
from repro.stemming.stemmer import Component, StemmingResult, _contains


@dataclass(slots=True)
class TrafficWeightedStemmer:
    """Stemming where correlation strength is traffic volume.

    *volumes* maps prefix → traffic volume (bytes/sec or any consistent
    unit); prefixes absent from the map get *default_volume*. Strengths
    in the result are volume sums rounded to int, so
    :class:`Component` stays shared with the unweighted stemmer.
    """

    volumes: Mapping[Prefix, float]
    default_volume: float = 1.0
    min_strength: float = 1e-9
    max_components: int = 16

    def volume_of(self, prefix: Prefix) -> float:
        return self.volumes.get(prefix, self.default_volume)

    def decompose(self, events: Iterable[BGPEvent]) -> StemmingResult:
        remaining = list(events)
        total = len(remaining)
        components: list[Component] = []
        while remaining and len(components) < self.max_components:
            component = self._extract_strongest(remaining, len(components) + 1)
            if component is None:
                break
            components.append(component)
            affected = component.prefixes
            remaining = [e for e in remaining if e.prefix not in affected]
        return StemmingResult(
            components=tuple(components),
            residual_events=len(remaining),
            total_events=total,
        )

    def _extract_strongest(
        self, events: list[BGPEvent], rank: int
    ) -> Optional[Component]:
        weights: Counter[tuple[Token, ...]] = Counter()
        # Deduplicate (sequence, weight) pairs like the unweighted
        # counter; identical sequences always share a prefix, hence a
        # weight.
        sequence_weight: dict[tuple[Token, ...], float] = {}
        sequence_count: Counter[tuple[Token, ...]] = Counter()
        for event in events:
            sequence_count[event.sequence] += 1
            sequence_weight[event.sequence] = self.volume_of(event.prefix)
        for sequence, count in sequence_count.items():
            weight = sequence_weight[sequence] * count
            for subsequence in _subsequences(sequence, None):
                weights[subsequence] += weight
        if not weights:
            return None
        subsequence, strength = max(
            weights.items(), key=lambda item: (item[1], len(item[0]))
        )
        if strength < self.min_strength:
            return None
        prefixes = frozenset(
            e.prefix for e in events if _contains(e.sequence, subsequence)
        )
        component_events = EventStream(
            e for e in events if e.prefix in prefixes
        )
        return Component(
            rank=rank,
            subsequence=subsequence,
            strength=int(round(strength)),
            stem=(subsequence[-2], subsequence[-1]),
            prefixes=prefixes,
            events=component_events,
        )
