"""The Stemming decomposition.

Applies the subsequence counter recursively: find the strongest
subsequence s′, read its last adjacent pair as the stem (problem
location), collect the affected prefix set P (prefixes of events
containing s′) and the component E (every event touching P), remove E,
repeat. The result is a ranked list of :class:`Component`s — the "few
incidents" hidden in the million events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.collector.events import BGPEvent, Token
from repro.collector.stream import EventStream
from repro.interning import SymbolTable
from repro.net.prefix import Prefix
from repro.perf import gc_paused
from repro.stemming.counter import IdSequence, SubsequenceCounter
from repro.stemming.encode import format_stem, stem_values


@dataclass(frozen=True)
class Component:
    """One correlated component: a diagnosed incident."""

    rank: int
    #: The winning subsequence s′.
    subsequence: tuple[Token, ...]
    #: Number of events containing s′ (the correlation strength).
    strength: int
    #: The problem location: the last adjacent pair of s′.
    stem: tuple[Token, Token]
    #: Prefixes affected by the problem.
    prefixes: frozenset[Prefix]
    #: The events making up the component.
    events: EventStream

    @property
    def event_count(self) -> int:
        return len(self.events)

    @property
    def location(self) -> tuple[object, object]:
        """Bare stem values, for ground-truth comparison."""
        return stem_values(self.stem)

    def describe(self) -> str:
        return (
            f"#{self.rank}: {format_stem(self.stem)} — "
            f"{len(self.prefixes)} prefixes, {self.event_count} events, "
            f"strength {self.strength}"
        )


@dataclass(frozen=True)
class StemmingResult:
    """The full decomposition of a stream."""

    components: tuple[Component, ...]
    residual_events: int
    total_events: int

    @property
    def strongest(self) -> Optional[Component]:
        return self.components[0] if self.components else None

    def component_at(self, location: tuple[object, object]) -> Optional[Component]:
        """The component whose stem matches *location*, if any."""
        for component in self.components:
            if component.location == location:
                return component
        return None

    def coverage(self) -> float:
        """Fraction of events explained by some component."""
        if self.total_events == 0:
            return 0.0
        return 1.0 - self.residual_events / self.total_events

    def summary(self) -> str:
        lines = [
            f"{self.total_events} events -> {len(self.components)} components"
            f" ({self.coverage():.0%} explained)"
        ]
        lines.extend(c.describe() for c in self.components)
        return "\n".join(lines)


@dataclass(slots=True)
class Stemmer:
    """Configurable recursive decomposition.

    *min_strength* stops recursion once the strongest remaining
    correlation falls to background level (default 2: a subsequence seen
    once explains nothing). *max_components* bounds output for
    pathological streams. *max_subsequence_length* is forwarded to the
    counter (None = unbounded; see the ablation for the trade-off).
    """

    min_strength: int = 2
    max_components: int = 16
    max_subsequence_length: Optional[int] = None
    #: Worker processes for the counter's subsequence expansion (None =
    #: the ``REPRO_WORKERS`` environment variable; see ``repro.perf``).
    workers: Optional[int] = None

    def decompose(self, events: Iterable[BGPEvent]) -> StemmingResult:
        """Decompose *events* into ranked correlated components.

        Two deduplication tricks keep a million-event decomposition fast:
        the counter is built once and component extraction *subtracts*
        sequences instead of recounting the residual, and every
        per-component scan (which prefixes match s′, which events belong
        to the component) runs over *unique sequences*, of which real
        streams have orders of magnitude fewer than events.

        The whole decomposition runs interned (DESIGN.md §10): events
        encode once into the counter's id space
        (:func:`_group_by_ids` — the sequence head is memoized per
        (peer, attributes), so a flapping route's thousandth event is
        two dict probes, not a re-render), the unique-sequence index is
        keyed by id tuples, and matching/removal compare ints. Tokens
        reappear only inside the :class:`Component` results.
        """
        counter = SubsequenceCounter(
            self.max_subsequence_length, workers=self.workers
        )
        with gc_paused():
            by_ids, total = _group_by_ids(events, counter.symbols)
            counter.add_id_counts(
                (ids, len(bucket)) for ids, bucket in by_ids.items()
            )
            components: list[Component] = []
            remaining = total
            while by_ids and len(components) < self.max_components:
                extracted = self._component_from_top(
                    counter, by_ids, len(components) + 1
                )
                if extracted is None:
                    break
                component_of, affected_ids = extracted
                # One pass pops the component's sequences, collecting
                # its events and the counter removals together.
                removals: list[tuple[IdSequence, int]] = []
                component_events: list[BGPEvent] = []
                for ids in [s for s in by_ids if s[-1] in affected_ids]:
                    bucket = by_ids.pop(ids)
                    removals.append((ids, len(bucket)))
                    component_events.extend(bucket)
                    remaining -= len(bucket)
                components.append(component_of(component_events))
                counter.subtract_id_sequences(removals)
        return StemmingResult(
            components=tuple(components),
            residual_events=remaining,
            total_events=total,
        )

    def strongest_component(
        self, events: Iterable[BGPEvent]
    ) -> Optional[Component]:
        """Just the top component (cheaper than a full decomposition)."""
        counter = SubsequenceCounter(
            self.max_subsequence_length, workers=self.workers
        )
        by_ids, _ = _group_by_ids(events, counter.symbols)
        counter.add_id_counts(
            (ids, len(bucket)) for ids, bucket in by_ids.items()
        )
        extracted = self._component_from_top(counter, by_ids, rank=1)
        if extracted is None:
            return None
        component_of, affected_ids = extracted
        return component_of(
            [
                event
                for ids, bucket in by_ids.items()
                if ids[-1] in affected_ids
                for event in bucket
            ]
        )

    def _component_from_top(
        self,
        counter: SubsequenceCounter,
        by_ids: dict[IdSequence, list[BGPEvent]],
        rank: int,
    ) -> Optional[tuple]:
        """The next component (minus its events) plus the affected
        prefix *token ids*.

        The id set drives removal matching in :meth:`decompose` (int
        membership instead of Prefix hashing), and the caller collects
        the component's events while popping matched sequences — one
        scan where separate collect-then-remove passes would take two.
        Returns ``(build, affected_ids)`` where ``build(events)``
        finishes the :class:`Component`; its decoded tokens and
        prefixes are identical to what the object-level pipeline
        produced.
        """
        top = counter.top_ids()
        if top is None:
            return None
        top_ids, strength = top
        if strength < self.min_strength:
            return None
        token = counter.symbols.token
        subsequence = tuple(token(tid) for tid in top_ids)
        stem = (subsequence[-2], subsequence[-1])
        if len(top_ids) == 2:
            # The usual winner is a bare pair (see _pair_top): C-level
            # tuple membership rejects most sequences before any Python
            # adjacency walk.
            first, second = top_ids
            affected_ids = {
                ids[-1]
                for ids in by_ids
                if first in ids
                and second in ids
                and _adjacent(ids, first, second)
            }
        else:
            affected_ids = {
                ids[-1] for ids in by_ids if _contains(ids, top_ids)
            }
        prefixes = frozenset(
            token(tid)[1]  # the prefix token's value
            for tid in affected_ids
        )

        def component_of(events: Iterable[BGPEvent]) -> Component:
            return Component(
                rank=rank,
                subsequence=subsequence,
                strength=strength,
                stem=stem,
                prefixes=prefixes,
                events=EventStream(events),
            )

        return component_of, affected_ids


def _group_by_ids(
    events: Iterable[BGPEvent], symbols: SymbolTable
) -> tuple[dict[IdSequence, list[BGPEvent]], int]:
    """Interned unique-sequence index: id sequence -> events, plus total.

    An event's prefix is its last token, so events sharing a sequence
    share a prefix, and per-sequence grouping loses nothing. The
    sequence *head* (peer, nexthop, collapsed AS path) is a pure
    function of (peer, attributes), so its rendered-and-interned id
    tuple is memoized on that pair: the inner loop costs two dict
    probes and one small tuple build per event, never a re-render.
    Distinct attribute bundles that render to one sequence (MED or
    communities differ, say) produce the same id tuple and fold into
    one group automatically.
    """
    intern = symbols.intern_token
    #: peer -> attributes -> (head id tuple, pfx id -> event bucket).
    #: Nested so the per-event work is three small-key probes and an
    #: append — no tuple allocation, no re-render; the full id tuple is
    #: built once per group in the fold below.
    peer_memo: dict[int, dict] = {}
    pfx_ids: dict = {}
    for event in events:
        attributes = event.attributes
        attrs_memo = peer_memo.get(event.peer)
        if attrs_memo is None:
            attrs_memo = peer_memo[event.peer] = {}
        entry = attrs_memo.get(attributes)
        if entry is None:
            head = (
                intern(("peer", event.peer)),
                intern(("nh", attributes.nexthop)),
                *(
                    intern(token)
                    for token in attributes.as_path.collapsed_tokens()
                ),
            )
            entry = attrs_memo[attributes] = (head, {})
        prefix = event.prefix
        pfx_id = pfx_ids.get(prefix)
        if pfx_id is None:
            pfx_id = pfx_ids[prefix] = intern(("pfx", prefix))
        groups = entry[1]
        bucket = groups.get(pfx_id)
        if bucket is None:
            groups[pfx_id] = [event]
        else:
            bucket.append(event)
    by_ids: dict[IdSequence, list[BGPEvent]] = {}
    total = 0
    # Distinct attribute bundles can render to one head (MED or
    # communities differ, say), within or across peers sharing an
    # address token; the fold merges their buckets.
    # repro: allow[DET002] the memo is built by one sequential pass
    # over the event stream, so insertion order is event order — no
    # worker-count variation can reach it.
    for attrs_memo in peer_memo.values():
        # repro: allow[DET002] same single-pass memo ordering.
        for head, groups in attrs_memo.values():
            for pfx_id, bucket in groups.items():
                total += len(bucket)
                ids = head + (pfx_id,)
                existing = by_ids.get(ids)
                if existing is None:
                    by_ids[ids] = bucket
                else:
                    existing.extend(bucket)
    return by_ids, total


def _adjacent(sequence: tuple, first: object, second: object) -> bool:
    """True if *first* immediately precedes *second* in *sequence*.

    Callers pre-filter with ``in`` (C-level), so this only walks the
    rare sequences that contain both elements somewhere.
    """
    index = sequence.index
    last = len(sequence) - 1
    start = 0
    while True:
        try:
            i = index(first, start)
        except ValueError:
            return False
        if i == last:
            return False
        if sequence[i + 1] == second:
            return True
        start = i + 1


def _contains(sequence: tuple, needle: tuple) -> bool:
    """True if *needle* occurs contiguously inside *sequence*
    (generic: token tuples and id tuples compare alike)."""
    n, m = len(sequence), len(needle)
    if m > n:
        return False
    first = needle[0]
    for start in range(n - m + 1):
        if sequence[start] == first and sequence[start : start + m] == needle:
            return True
    return False
