"""The Stemming decomposition.

Applies the subsequence counter recursively: find the strongest
subsequence s′, read its last adjacent pair as the stem (problem
location), collect the affected prefix set P (prefixes of events
containing s′) and the component E (every event touching P), remove E,
repeat. The result is a ranked list of :class:`Component`s — the "few
incidents" hidden in the million events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.collector.events import BGPEvent, Token
from repro.collector.stream import EventStream
from repro.net.prefix import Prefix
from repro.stemming.counter import SubsequenceCounter
from repro.stemming.encode import format_stem, stem_values


@dataclass(frozen=True)
class Component:
    """One correlated component: a diagnosed incident."""

    rank: int
    #: The winning subsequence s′.
    subsequence: tuple[Token, ...]
    #: Number of events containing s′ (the correlation strength).
    strength: int
    #: The problem location: the last adjacent pair of s′.
    stem: tuple[Token, Token]
    #: Prefixes affected by the problem.
    prefixes: frozenset[Prefix]
    #: The events making up the component.
    events: EventStream

    @property
    def event_count(self) -> int:
        return len(self.events)

    @property
    def location(self) -> tuple[object, object]:
        """Bare stem values, for ground-truth comparison."""
        return stem_values(self.stem)

    def describe(self) -> str:
        return (
            f"#{self.rank}: {format_stem(self.stem)} — "
            f"{len(self.prefixes)} prefixes, {self.event_count} events, "
            f"strength {self.strength}"
        )


@dataclass(frozen=True)
class StemmingResult:
    """The full decomposition of a stream."""

    components: tuple[Component, ...]
    residual_events: int
    total_events: int

    @property
    def strongest(self) -> Optional[Component]:
        return self.components[0] if self.components else None

    def component_at(self, location: tuple[object, object]) -> Optional[Component]:
        """The component whose stem matches *location*, if any."""
        for component in self.components:
            if component.location == location:
                return component
        return None

    def coverage(self) -> float:
        """Fraction of events explained by some component."""
        if self.total_events == 0:
            return 0.0
        return 1.0 - self.residual_events / self.total_events

    def summary(self) -> str:
        lines = [
            f"{self.total_events} events -> {len(self.components)} components"
            f" ({self.coverage():.0%} explained)"
        ]
        lines.extend(c.describe() for c in self.components)
        return "\n".join(lines)


@dataclass(slots=True)
class Stemmer:
    """Configurable recursive decomposition.

    *min_strength* stops recursion once the strongest remaining
    correlation falls to background level (default 2: a subsequence seen
    once explains nothing). *max_components* bounds output for
    pathological streams. *max_subsequence_length* is forwarded to the
    counter (None = unbounded; see the ablation for the trade-off).
    """

    min_strength: int = 2
    max_components: int = 16
    max_subsequence_length: Optional[int] = None
    #: Worker processes for the counter's subsequence expansion (None =
    #: the ``REPRO_WORKERS`` environment variable; see ``repro.perf``).
    workers: Optional[int] = None

    def decompose(self, events: Iterable[BGPEvent]) -> StemmingResult:
        """Decompose *events* into ranked correlated components.

        Two deduplication tricks keep a million-event decomposition fast:
        the counter is built once and component extraction *subtracts*
        sequences instead of recounting the residual, and every
        per-component scan (which prefixes match s′, which events belong
        to the component) runs over *unique sequences*, of which real
        streams have orders of magnitude fewer than events.
        """
        by_sequence, total = _group_by_sequence(events)
        counter = SubsequenceCounter(
            self.max_subsequence_length, workers=self.workers
        )
        for sequence, bucket in by_sequence.items():
            counter.add_sequence(sequence, len(bucket))
        components: list[Component] = []
        remaining = total
        while by_sequence and len(components) < self.max_components:
            component = self._component_from_top(
                counter, by_sequence, len(components) + 1
            )
            if component is None:
                break
            components.append(component)
            affected = component.prefixes
            removals: list[tuple[tuple[Token, ...], int]] = []
            for sequence in [
                s for s in by_sequence if s[-1][1] in affected
            ]:
                bucket = by_sequence.pop(sequence)
                removals.append((sequence, len(bucket)))
                remaining -= len(bucket)
            counter.subtract_sequences(removals)
        return StemmingResult(
            components=tuple(components),
            residual_events=remaining,
            total_events=total,
        )

    def strongest_component(
        self, events: Iterable[BGPEvent]
    ) -> Optional[Component]:
        """Just the top component (cheaper than a full decomposition)."""
        by_sequence, _ = _group_by_sequence(events)
        counter = SubsequenceCounter(
            self.max_subsequence_length, workers=self.workers
        )
        for sequence, bucket in by_sequence.items():
            counter.add_sequence(sequence, len(bucket))
        return self._component_from_top(counter, by_sequence, rank=1)

    def _component_from_top(
        self,
        counter: SubsequenceCounter,
        by_sequence: dict[tuple[Token, ...], list[BGPEvent]],
        rank: int,
    ) -> Optional[Component]:
        top = counter.top()
        if top is None:
            return None
        subsequence, strength = top
        if strength < self.min_strength:
            return None
        stem = (subsequence[-2], subsequence[-1])
        prefixes = frozenset(
            sequence[-1][1]  # the prefix token's value
            for sequence in by_sequence
            if _contains(sequence, subsequence)
        )
        component_events = EventStream(
            event
            for sequence, bucket in by_sequence.items()
            if sequence[-1][1] in prefixes
            for event in bucket
        )
        return Component(
            rank=rank,
            subsequence=subsequence,
            strength=strength,
            stem=stem,
            prefixes=prefixes,
            events=component_events,
        )


def _group_by_sequence(
    events: Iterable[BGPEvent],
) -> tuple[dict[tuple[Token, ...], list[BGPEvent]], int]:
    """Unique-sequence index: sequence -> its events, plus the total.

    An event's prefix is its last token, so events sharing a sequence
    share a prefix, and per-sequence grouping loses nothing. The inner
    loop keys on ``(peer, attributes, prefix)`` — attribute bundles and
    prefixes cache their hashes, so this hashes three ints per event
    where keying on ``event.sequence`` directly would build and hash a
    six-token tuple per event; the sequence is rendered once per group.
    """
    by_key: dict[tuple, list[BGPEvent]] = {}
    total = 0
    for event in events:
        key = (event.peer, event.attributes, event.prefix)
        bucket = by_key.get(key)
        if bucket is None:
            by_key[key] = [event]
        else:
            bucket.append(event)
        total += 1
    # Distinct attribute bundles can render to one sequence (MED or
    # communities differ, say); fold those groups together.
    by_sequence: dict[tuple[Token, ...], list[BGPEvent]] = {}
    # repro: allow[DET002] by_key insertion order follows the event
    # stream, so group folding order is deterministic.
    for bucket in by_key.values():
        sequence = bucket[0].sequence
        existing = by_sequence.get(sequence)
        if existing is None:
            by_sequence[sequence] = bucket
        else:
            existing.extend(bucket)
    return by_sequence, total


def _contains(sequence: tuple[Token, ...], needle: tuple[Token, ...]) -> bool:
    """True if *needle* occurs contiguously inside *sequence*."""
    n, m = len(sequence), len(needle)
    if m > n:
        return False
    first = needle[0]
    for start in range(n - m + 1):
        if sequence[start] == first and sequence[start : start + m] == needle:
            return True
    return False
