"""Contiguous-subsequence counting.

The statistical heart of Stemming: for every contiguous subsequence *s*
(length ≥ 2 — a problem location is a pair, so shorter carries no signal)
of every event sequence *c*, count how many events contain *s*.

Two implementations share an interface:

* :class:`SubsequenceCounter` — the production counter. It exploits the
  fact that BGP event streams are massively repetitive (a million-event
  spike touches a few thousand distinct (peer, nexthop, path, prefix)
  combinations), counting unique sequences first and expanding each once.
  Complexity O(U·L²) for U unique sequences of length L, independent of
  the raw event count beyond one dict lookup per event. The expansion is
  embarrassingly parallel across unique sequences, so large tables shard
  across a :mod:`repro.perf` worker pool and merge in the parent.
* :class:`NaiveSubsequenceCounter` — the textbook O(N·L²) version, kept
  as the baseline for the ablation benchmark
  (``benchmarks/test_ablations.py``) and as the object-level reference
  the interned counter's equivalence suite pins against.

Internally the production counter is *interned* (DESIGN.md §10): event
tokens map to dense int ids through a
:class:`~repro.interning.SymbolTable`, sequences become int tuples,
adjacent pairs pack into single ``(a << 32) | b`` ints, and every hot
store — the pair table, the count buckets, the lazily-built full
expansion — is keyed on those ids. Token tuples exist only at the API
boundary: :meth:`SubsequenceCounter.top` and
:meth:`SubsequenceCounter.counts` decode on the way out, and the
decoded results are exactly what the object-level counter produces.
Bulk callers (the stemmer) skip the boundary entirely via the id-level
API (:meth:`~SubsequenceCounter.add_ids`,
:meth:`~SubsequenceCounter.top_ids`,
:meth:`~SubsequenceCounter.subtract_id_sequences`).

A subtlety the stemmer relies on: subsequence count is monotone
non-increasing under extension, so the maximum count over length ≥ 2 is
always attained by an adjacent pair; ranking prefers longer subsequences
among equal counts, which localizes the stem at the *end* of the longest
common context (the paper's Figure 4 walk-through).

That monotonicity is also the counter's main performance lever. The
production counter keeps an *adjacent-pair* count table — O(L) per
sequence instead of the O(L²) full expansion — bucketed by count, which
answers "what is the maximum count" directly. Any subsequence tying the
maximum must consist entirely of maximum-count pairs, so the finalists
longer than two tokens hide inside runs of consecutive winning pairs;
:meth:`SubsequenceCounter.top` enumerates exactly those runs and counts
their windows, which settles (count, length, tiebreak) ranking without
materializing the millions-of-entries expansion. The full expansion is
still available through :meth:`SubsequenceCounter.counts` — built
lazily, sharded across a :mod:`repro.perf` worker pool when large, and
maintained incrementally (count-bucketed index, per-sequence memo)
under :meth:`SubsequenceCounter.subtract_sequences` once built. Worker
shards receive already-interned id sequences, so the shard join is a
plain C-level ``Counter.update`` — ids are assigned by the parent
before the fan-out, leaving nothing to remap.
"""

from __future__ import annotations

from collections import Counter
from functools import partial
from typing import Iterable, Optional

from repro.collector.events import BGPEvent, Token
from repro.interning import SymbolTable
from repro.perf import effective_workers, gc_paused, map_shards, partition

Sequence_ = tuple[Token, ...]
Pair = tuple[Token, Token]
#: An interned sequence: dense token ids in sequence order.
IdSequence = tuple[int, ...]

#: The first token id of a packed adjacent-pair key occupies the bits
#: above the second. 32 bits per side matches the edge-id packing of
#: :mod:`repro.interning` — vastly above any real token table.
PAIR_SHIFT = 32
PAIR_MASK = (1 << PAIR_SHIFT) - 1

#: Bulk pair counting streams each sequence's distinct pairs once per
#: counted event through one C-level ``Counter.update``; past this
#: multiplicity the O(distinct) per-pair arithmetic add wins over the
#: O(events) stream repeat.
_STREAM_REPEAT_LIMIT = 8


class SubsequenceCounter:
    """Counts contiguous subsequences, deduplicating whole sequences."""

    def __init__(
        self,
        max_length: Optional[int] = None,
        workers: Optional[int] = None,
        symbols: Optional[SymbolTable] = None,
    ) -> None:
        """*max_length* bounds counted subsequence length (None = full).

        *workers* requests parallel expansion (None = the
        ``REPRO_WORKERS`` environment variable, see :mod:`repro.perf`);
        small tables fall back to the identical serial code path.

        *symbols* shares a caller's token table (the stemmer interns
        event streams once and feeds both its own index and the counter
        from the same ids); by default the counter owns a private one.
        """
        self.max_length = max_length
        self.workers = workers
        self.symbols = symbols if symbols is not None else SymbolTable()
        self._sequence_counts: Counter[IdSequence] = Counter()
        self._expanded: Optional[Counter[IdSequence]] = None
        #: count -> set of subsequences at that count; lazily built by
        #: top() and maintained incrementally thereafter.
        self._buckets: Optional[dict[int, set[IdSequence]]] = None
        #: sequence -> its distinct subsequences, memoized for sequences
        #: mutated after expansion (flapping streams re-add the same
        #: sequence thousands of times).
        self._expansions: dict[IdSequence, tuple[IdSequence, ...]] = {}
        #: packed adjacent pair -> number of events containing it.
        #: Maintained on every add/subtract (O(L) per sequence); with
        #: the pair buckets below it answers top() without the full
        #: expansion.
        self._pair_counts: Counter[int] = Counter()
        #: count -> set of packed pairs at that count; lazily built by
        #: top() and maintained incrementally thereafter.
        self._pair_buckets: Optional[dict[int, set[int]]] = None

    # ------------------------------------------------------------------
    # Token-level API (the decode boundary)
    # ------------------------------------------------------------------

    def add(self, event: BGPEvent) -> None:
        self.add_sequence(event.sequence)

    def add_sequence(self, sequence: Sequence_, multiplicity: int = 1) -> None:
        """Count *multiplicity* events sharing one sequence.

        Grouped callers (the stemmer's unique-sequence index) pass the
        whole group size at once instead of looping O(events) times.
        """
        self.add_ids(self.intern_sequence(sequence), multiplicity)

    def add_all(self, events: Iterable[BGPEvent]) -> None:
        for event in events:
            self.add(event)

    def intern_sequence(self, sequence: Sequence_) -> IdSequence:
        """Encode a token sequence into this counter's id space."""
        return tuple(map(self.symbols.intern_token, sequence))

    def subtract_sequence(self, sequence: Sequence_, multiplicity: int) -> None:
        """Remove *multiplicity* occurrences of a whole sequence.

        This is what makes recursive decomposition cheap: extracting a
        component subtracts its events from the counts instead of
        recounting the residual stream. The expanded subsequence counts
        are updated in place when they exist.
        """
        self.subtract_sequences(((sequence, multiplicity),))

    def subtract_sequences(
        self, removals: Iterable[tuple[Sequence_, int]]
    ) -> None:
        """Batched :meth:`subtract_sequence` over many sequences.

        One component extraction removes every sequence matching the
        component's prefixes; those sequences share most of their
        subsequence structure, so summing the deltas first and walking
        the expansion once touches each affected subsequence a single
        time instead of once per removed sequence.
        """
        token_id = self.symbols.token_id
        id_removals: list[tuple[IdSequence, int]] = []
        for sequence, multiplicity in removals:
            ids = tuple(token_id(token) for token in sequence)
            if None in ids:
                # A never-interned token means a never-added sequence.
                raise ValueError(
                    f"cannot subtract {multiplicity} of a sequence"
                    " counted 0 times"
                )
            id_removals.append((ids, multiplicity))
        self.subtract_id_sequences(id_removals)

    def counts(self) -> Counter[Sequence_]:
        """Subsequence → number of events containing it (length ≥ 2).

        A subsequence occurring twice inside one event (possible when a
        path revisits a token pattern, e.g. "1 2 1 2") still counts that
        event once: strength means "how many events share this
        structure", not "how many occurrences exist".

        Decoded snapshot: the live store is id-keyed
        (:meth:`id_counts`); this renders token tuples for the caller
        and is rebuilt per call, so mutate-then-compare sees current
        counts.
        """
        token = self.symbols.token
        return Counter(
            {
                tuple(token(tid) for tid in ids): count
                for ids, count in self.id_counts().items()
            }
        )

    def top(self) -> Optional[tuple[Sequence_, int]]:
        """The strongest subsequence: highest count, longest on ties.

        Ties on (count, length) break toward the lexicographically
        smallest rendering for determinism. Decodes
        :meth:`top_ids`' winner at the boundary.
        """
        top = self.top_ids()
        if top is None:
            return None
        ids, count = top
        token = self.symbols.token
        return tuple(token(tid) for tid in ids), count

    # ------------------------------------------------------------------
    # Id-level API (the stemmer's hot path)
    # ------------------------------------------------------------------

    def add_ids(self, ids: IdSequence, multiplicity: int = 1) -> None:
        """:meth:`add_sequence` for an already-interned sequence."""
        if multiplicity < 1:
            raise ValueError(
                f"multiplicity must be >= 1, got {multiplicity}"
            )
        self._sequence_counts[ids] += multiplicity
        self._shift_pairs(ids, multiplicity)
        if self._expanded is not None:
            # Keep the expansion current instead of invalidating it: a
            # rebuild is O(U·L²), this is O(L²).
            self._apply_delta(self._expansion(ids), multiplicity)

    def add_id_counts(
        self, items: Iterable[tuple[IdSequence, int]]
    ) -> None:
        """Bulk :meth:`add_ids` over a whole unique-sequence table.

        On a virgin counter (no expansion, no bucket index — the
        stemmer's initial load) the adjacent-pair table takes one
        C-level ``Counter.update`` over a packed-pair stream instead of
        a Python dict transaction per sequence; with indexes live it
        falls back to the incremental per-sequence path.
        """
        if self._expanded is not None or self._pair_buckets is not None:
            for ids, multiplicity in items:
                self.add_ids(ids, multiplicity)
            return
        sequence_counts = self._sequence_counts
        pair_counts = self._pair_counts
        stream: list[int] = []
        extend = stream.extend
        for ids, multiplicity in items:
            if multiplicity < 1:
                raise ValueError(
                    f"multiplicity must be >= 1, got {multiplicity}"
                )
            sequence_counts[ids] += multiplicity
            if len(ids) < 2:
                continue
            pairs = {(a << PAIR_SHIFT) | b for a, b in zip(ids, ids[1:])}
            if multiplicity <= _STREAM_REPEAT_LIMIT:
                for _ in range(multiplicity):
                    extend(pairs)
            else:
                # Heavily duplicated sequences (big flaps) add per pair
                # in O(distinct), not O(events).
                for pair in pairs:
                    pair_counts[pair] += multiplicity
        pair_counts.update(stream)

    def subtract_id_sequences(
        self, removals: Iterable[tuple[IdSequence, int]]
    ) -> None:
        """:meth:`subtract_sequences` over already-interned sequences."""
        removals = list(removals)
        for ids, multiplicity in removals:
            current = self._sequence_counts.get(ids, 0)
            if multiplicity > current:
                raise ValueError(
                    f"cannot subtract {multiplicity} of a sequence counted"
                    f" {current} times"
                )
            if multiplicity == current:
                del self._sequence_counts[ids]
            else:
                self._sequence_counts[ids] = current - multiplicity
        # When the removals outnumber the survivors (typical for the
        # first extracted component, which often explains most of a
        # spike), rebuilding from the survivors is cheaper than walking
        # the majority's pairs and subsequences.
        majority = len(removals) > len(self._sequence_counts)
        if majority:
            self._rebuild_pairs()
        elif self._pair_buckets is None:
            # No bucket index yet: batch the whole removal into one
            # C-counted delta and one short sweep over distinct pairs.
            pair_counts = self._pair_counts
            delta: Counter[int] = Counter()
            stream: list[int] = []
            extend = stream.extend
            for ids, multiplicity in removals:
                if len(ids) < 2:
                    continue
                pairs = {
                    (a << PAIR_SHIFT) | b for a, b in zip(ids, ids[1:])
                }
                if multiplicity <= _STREAM_REPEAT_LIMIT:
                    for _ in range(multiplicity):
                        extend(pairs)
                else:
                    for pair in pairs:
                        delta[pair] += multiplicity
            delta.update(stream)
            pair_counts.subtract(delta)
            for pair in delta:
                if pair_counts[pair] <= 0:
                    del pair_counts[pair]
        else:
            for ids, multiplicity in removals:
                self._shift_pairs(ids, -multiplicity)
        if self._expanded is None:
            return
        if majority:
            # Drop the expansion and let the next counts() rebuild it.
            self._expanded = None
            self._buckets = None
            self._expansions.clear()
            return
        if len(removals) == 1:
            ids, multiplicity = removals[0]
            self._apply_delta(self._expansion(ids), -multiplicity)
            self._forget_expansion(ids)
            return
        delta: Counter[IdSequence] = Counter()
        for ids, multiplicity in removals:
            for subsequence in self._expansion(ids):
                delta[subsequence] += multiplicity
            self._forget_expansion(ids)
        expanded = self._expanded
        buckets = self._buckets
        if buckets is None:
            # No index to maintain: let Counter.subtract run in C, then
            # sweep only the touched keys for empties.
            expanded.subtract(delta)
            for subsequence in delta:
                if expanded[subsequence] <= 0:
                    del expanded[subsequence]
            return
        for subsequence, removed in delta.items():
            before = expanded[subsequence]
            after = before - removed
            if after <= 0:
                del expanded[subsequence]
            else:
                expanded[subsequence] = after
            self._move_bucket(buckets, subsequence, before, after)

    @property
    def event_count(self) -> int:
        return sum(self._sequence_counts.values())

    @property
    def unique_sequence_count(self) -> int:
        return len(self._sequence_counts)

    def id_counts(self) -> Counter[IdSequence]:
        """The live expansion, keyed by interned id sequences."""
        if self._expanded is None:
            self._expanded = self._expand()
        return self._expanded

    def top_ids(self) -> Optional[tuple[IdSequence, int]]:
        """:meth:`top` without the decode: (id sequence, count).

        With the expansion materialized (someone called
        :meth:`counts`), this reads the full count-bucket index.
        Otherwise it answers from the adjacent-pair table alone: by
        count monotonicity the maximum count is attained by a pair, and
        any longer subsequence tying it must consist entirely of
        maximum-count pairs, so the only candidates are the windows of
        consecutive-winning-pair runs, which
        :meth:`_candidate_windows` counts exactly. Either way the
        stemmer gets its per-component top() without rescanning
        millions of expanded entries — and the pair path without ever
        building them.
        """
        if self._expanded is not None:
            if not self._expanded:
                return None
            buckets = self._ensure_buckets()
            best_count = max(buckets)
            bucket = buckets[best_count]
            best_length = max(map(len, bucket))
            finalists = [s for s in bucket if len(s) == best_length]
            return min(finalists, key=self._tiebreak_ids), best_count
        return self._pair_top()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _expand(self) -> Counter[IdSequence]:
        """Build the full subsequence expansion, sharded when large.

        Deduplicated sequences are independent, so the unique-sequence
        table partitions cleanly: each worker expands its shard into a
        local Counter and the parent merges with ``Counter.update``
        (which adds counts in C). Serial execution uses the exact same
        shard function on one shard. Shards carry id sequences interned
        by the parent *before* the fan-out, so — unlike the picture
        build's shard join — there are no worker-local symbol tables
        and nothing to remap: subsequences are slices, and a slice of
        parent ids is already in the parent's id space.
        """
        items = list(self._sequence_counts.items())
        workers = effective_workers(self.workers, units=len(items))
        expand = partial(_expand_shard, max_length=self.max_length)
        with gc_paused():
            if workers <= 1:
                return expand(items)
            partials = map_shards(expand, partition(items, workers), workers)
            merged = partials[0]
            for part in partials[1:]:
                merged.update(part)
        return merged

    def _expansion(self, ids: IdSequence) -> tuple[IdSequence, ...]:
        """The distinct subsequences of one sequence, memoized."""
        cached = self._expansions.get(ids)
        if cached is None:
            # repro: allow[DET002] memo order is private to the counter;
            # every consumer (Counter deltas, bucket sets, max/min top())
            # is order-insensitive, and sorting would tax the hot
            # mutate-after-expansion path for nothing.
            cached = tuple(set(_subsequences(ids, self.max_length)))
            self._expansions[ids] = cached
        return cached

    def _forget_expansion(self, ids: IdSequence) -> None:
        """Drop the memo once a sequence has fully left the table."""
        if ids not in self._sequence_counts:
            self._expansions.pop(ids, None)

    def _shift_pairs(self, ids: IdSequence, delta: int) -> None:
        """Shift the sequence's distinct adjacent pairs by *delta* events."""
        if len(ids) < 2:
            return
        pair_counts = self._pair_counts
        buckets = self._pair_buckets
        get = pair_counts.get
        if buckets is None:
            # Hot path: the bulk add/subtract phases run before top()
            # ever builds the bucket index.
            for pair in {
                (a << PAIR_SHIFT) | b for a, b in zip(ids, ids[1:])
            }:
                before = get(pair, 0)
                if before > -delta:
                    pair_counts[pair] = before + delta
                else:
                    del pair_counts[pair]
            return
        move = self._move_bucket
        for pair in {(a << PAIR_SHIFT) | b for a, b in zip(ids, ids[1:])}:
            before = get(pair, 0)
            after = before + delta
            if after > 0:
                pair_counts[pair] = after
            else:
                del pair_counts[pair]
                after = 0
            move(buckets, pair, before, after)

    def _rebuild_pairs(self) -> None:
        """Recount adjacent pairs from the surviving sequences.

        One C-level ``Counter.update`` over a packed-pair stream; the
        stream repeats each sequence's distinct pairs once per counted
        event, which is exactly the defining sum.
        """
        pair_counts: Counter[int] = Counter()
        stream: list[int] = []
        extend = stream.extend
        for ids, multiplicity in self._sequence_counts.items():
            if len(ids) < 2:
                continue
            pairs = {(a << PAIR_SHIFT) | b for a, b in zip(ids, ids[1:])}
            if multiplicity <= _STREAM_REPEAT_LIMIT:
                for _ in range(multiplicity):
                    extend(pairs)
            else:
                for pair in pairs:
                    pair_counts[pair] += multiplicity
        pair_counts.update(stream)
        self._pair_counts = pair_counts
        self._pair_buckets = None

    def _ensure_pair_buckets(self) -> dict[int, set[int]]:
        if self._pair_buckets is None:
            buckets: dict[int, set[int]] = {}
            for pair, count in self._pair_counts.items():
                bucket = buckets.get(count)
                if bucket is None:
                    bucket = buckets[count] = set()
                bucket.add(pair)
            self._pair_buckets = buckets
        return self._pair_buckets

    def _pair_top(self) -> Optional[tuple[IdSequence, int]]:
        """top_ids() from the pair table, without the full expansion.

        Monotonicity gives the winning *count* directly: it is the
        maximum pair count. The winning *subsequence* needs more care —
        ranking prefers longer on count ties, and a longer subsequence
        reaches the maximum only if every one of its adjacent pairs
        does. When a single winning pair of two distinct tokens tops the
        bucket index, no longer chain can exist and the pair wins
        outright (the common case: one top per extracted component).
        Otherwise the finalists hide inside runs of consecutive winning
        pairs; count those few windows exactly and rank.
        """
        if self.max_length is not None and self.max_length < 2:
            return None
        buckets = self._ensure_pair_buckets()
        if not buckets:
            return None
        best_count = max(buckets)
        winning = buckets[best_count]
        if len(winning) == 1:
            (pair,) = winning
            first, second = pair >> PAIR_SHIFT, pair & PAIR_MASK
            if first != second:
                return (first, second), best_count
        candidates = self._candidate_windows(winning)
        finalists_pool = [
            window
            for window, count in candidates.items()
            if count == best_count
        ]
        best_length = max(map(len, finalists_pool))
        finalists = [w for w in finalists_pool if len(w) == best_length]
        return min(finalists, key=self._tiebreak_ids), best_count

    def _candidate_windows(self, winning: set[int]) -> Counter[IdSequence]:
        """Exact counts for every window made solely of winning pairs.

        Any subsequence tying the maximum count lies inside a maximal
        run of consecutive winning pairs in every sequence containing
        it, so enumerating run windows (deduplicated per sequence, so an
        event counts once) and summing sequence multiplicities yields
        the candidates' true counts. Windows that fall short of the
        maximum are filtered by the caller; winning pairs themselves
        always appear, so the finalist pool is never empty.
        """
        candidates: Counter[IdSequence] = Counter()
        for ids, multiplicity in self._sequence_counts.items():
            n = len(ids)
            if n < 2:
                continue
            windows: Optional[set[IdSequence]] = None
            run_start = -1
            for i in range(n - 1):
                if ((ids[i] << PAIR_SHIFT) | ids[i + 1]) in winning:
                    if run_start < 0:
                        run_start = i
                    continue
                if run_start >= 0:
                    windows = self._run_windows(ids, run_start, i + 1, windows)
                    run_start = -1
            if run_start >= 0:
                windows = self._run_windows(ids, run_start, n, windows)
            if windows:
                for window in windows:
                    candidates[window] += multiplicity
        return candidates

    def _run_windows(
        self,
        ids: IdSequence,
        start: int,
        end: int,
        acc: Optional[set[IdSequence]],
    ) -> set[IdSequence]:
        """Collect the length ≥ 2 windows of ``ids[start:end]``."""
        if acc is None:
            acc = set()
        max_length = self.max_length
        for left in range(start, end - 1):
            limit = end if max_length is None else min(end, left + max_length)
            for right in range(left + 2, limit + 1):
                acc.add(ids[left:right])
        return acc

    def _ensure_buckets(self) -> dict[int, set[IdSequence]]:
        if self._buckets is None:
            buckets: dict[int, set[IdSequence]] = {}
            for subsequence, count in self.id_counts().items():
                bucket = buckets.get(count)
                if bucket is None:
                    bucket = buckets[count] = set()
                bucket.add(subsequence)
            self._buckets = buckets
        return self._buckets

    def _apply_delta(
        self, subsequences: Iterable[IdSequence], delta: int
    ) -> None:
        """Shift every listed subsequence's count by *delta* (±)."""
        expanded = self._expanded
        buckets = self._buckets
        assert expanded is not None
        for subsequence in subsequences:
            before = expanded.get(subsequence, 0)
            after = before + delta
            if after <= 0:
                if before:
                    del expanded[subsequence]
                after = 0
            else:
                expanded[subsequence] = after
            if buckets is not None:
                self._move_bucket(buckets, subsequence, before, after)

    def _tiebreak_ids(self, ids: IdSequence) -> tuple[str, ...]:
        """Decoded rendering, so ranking matches the object-level
        counter bit for bit (the finalist pool is always small)."""
        token = self.symbols.token
        return _tiebreak(tuple(token(tid) for tid in ids))

    @staticmethod
    def _move_bucket(
        buckets: dict[int, set],
        member,
        before: int,
        after: int,
    ) -> None:
        if before == after:
            return
        if before > 0:
            old = buckets.get(before)
            if old is not None:
                old.discard(member)
                if not old:
                    del buckets[before]
        if after > 0:
            new = buckets.get(after)
            if new is None:
                new = buckets[after] = set()
            new.add(member)


class NaiveSubsequenceCounter(SubsequenceCounter):
    """The O(N·L²) baseline: no sequence deduplication, no interning.

    Functionally identical to :class:`SubsequenceCounter`; exists so the
    ablation can quantify what deduplication buys on realistic streams,
    and as the object-level reference the interned counter's
    equivalence suite compares against.
    """

    def __init__(self, max_length: Optional[int] = None) -> None:
        super().__init__(max_length)
        self._raw: Counter[Sequence_] = Counter()
        self._events = 0

    def add_sequence(self, sequence: Sequence_, multiplicity: int = 1) -> None:
        if multiplicity < 1:
            raise ValueError(
                f"multiplicity must be >= 1, got {multiplicity}"
            )
        for subsequence in set(_subsequences(sequence, self.max_length)):
            self._raw[subsequence] += multiplicity
        self._events += multiplicity

    @property
    def event_count(self) -> int:
        return self._events

    @property
    def unique_sequence_count(self) -> int:
        raise NotImplementedError("naive counter does not deduplicate")

    def subtract_sequence(self, sequence: Sequence_, multiplicity: int) -> None:
        raise NotImplementedError(
            "the naive counter has no per-sequence bookkeeping to subtract"
        )

    def subtract_sequences(
        self, removals: Iterable[tuple[Sequence_, int]]
    ) -> None:
        raise NotImplementedError(
            "the naive counter has no per-sequence bookkeeping to subtract"
        )

    def counts(self) -> Counter[Sequence_]:
        return self._raw

    def top(self) -> Optional[tuple[Sequence_, int]]:
        # The naive counter maintains no bucket index; scan directly.
        return _scan_top(self.counts())


def _expand_shard(
    shard: list[tuple[IdSequence, int]], max_length: Optional[int] = None
) -> Counter[IdSequence]:
    """Expand one shard of (id sequence, multiplicity) pairs to counts.

    Module-level so worker processes can unpickle it.

    The expansion is head-factored: a sequence's windows split into the
    windows ending at its last token (the prefix — unique per sequence)
    and the windows of its head ``sequence[:-1]`` (the (peer, nexthop,
    AS path) context — shared by every prefix that context announces).
    Real streams have orders of magnitude fewer distinct heads than
    sequences, so aggregating head multiplicities first and recursing on
    distinct heads does O(U·L) work where the naive double loop does
    O(U·L²). Sequences with repeated tokens (a path revisiting a token
    pattern) fall back to per-sequence set deduplication, which the
    factored split cannot honor.
    """
    expanded: Counter[IdSequence] = Counter()
    heads: Counter[IdSequence] = Counter()
    for ids, multiplicity in shard:
        n = len(ids)
        if len(set(ids)) != n:
            # Repeated tokens: identical windows can arise at different
            # offsets and must count once per event.
            for subsequence in set(_subsequences(ids, max_length)):
                expanded[subsequence] += multiplicity
            continue
        longest = n if max_length is None else min(n, max_length)
        # Windows ending at the last token, lengths 2..longest.
        for start in range(max(0, n - longest), n - 1):
            expanded[ids[start:]] += multiplicity
        if n > 2:
            heads[ids[:-1]] += multiplicity
    # Distinct heads, processed level by level: each level counts the
    # windows ending at its last token, then hands its own head down.
    while heads:
        parents: Counter[IdSequence] = Counter()
        for head, multiplicity in heads.items():
            n = len(head)
            longest = n if max_length is None else min(n, max_length)
            for start in range(max(0, n - longest), n - 1):
                expanded[head[start:]] += multiplicity
            if n > 2:
                parents[head[:-1]] += multiplicity
        heads = parents
    return expanded


def _scan_top(
    counts: Counter[Sequence_],
) -> Optional[tuple[Sequence_, int]]:
    """Full-scan top(): the reference the bucket index must agree with."""
    if not counts:
        return None
    best_rank = max(
        (count, len(sequence)) for sequence, count in counts.items()
    )
    finalists = [
        sequence
        for sequence, count in counts.items()
        if (count, len(sequence)) == best_rank
    ]
    winner = min(finalists, key=_tiebreak)
    return winner, best_rank[0]


def _subsequences(sequence, max_length: Optional[int]):
    """All contiguous subsequences of length ≥ 2 (bounded by max_length).

    Generic over element type: token tuples and id tuples slice alike.
    """
    n = len(sequence)
    longest = n if max_length is None else min(n, max_length)
    for start in range(n - 1):
        stop_limit = min(n, start + longest)
        for stop in range(start + 2, stop_limit + 1):
            yield sequence[start:stop]


def _tiebreak(sequence: Sequence_) -> tuple[str, ...]:
    return tuple(f"{ns}:{value}" for ns, value in sequence)
