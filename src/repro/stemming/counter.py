"""Contiguous-subsequence counting.

The statistical heart of Stemming: for every contiguous subsequence *s*
(length ≥ 2 — a problem location is a pair, so shorter carries no signal)
of every event sequence *c*, count how many events contain *s*.

Two implementations share an interface:

* :class:`SubsequenceCounter` — the production counter. It exploits the
  fact that BGP event streams are massively repetitive (a million-event
  spike touches a few thousand distinct (peer, nexthop, path, prefix)
  combinations), counting unique sequences first and expanding each once.
  Complexity O(U·L²) for U unique sequences of length L, independent of
  the raw event count beyond one dict lookup per event.
* :class:`NaiveSubsequenceCounter` — the textbook O(N·L²) version, kept
  as the baseline for the ablation benchmark
  (``benchmarks/test_ablations.py``).

A subtlety the stemmer relies on: subsequence count is monotone
non-increasing under extension, so the maximum count over length ≥ 2 is
always attained by an adjacent pair; ranking prefers longer subsequences
among equal counts, which localizes the stem at the *end* of the longest
common context (the paper's Figure 4 walk-through).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from repro.collector.events import BGPEvent, Token

Sequence_ = tuple[Token, ...]


class SubsequenceCounter:
    """Counts contiguous subsequences, deduplicating whole sequences."""

    def __init__(self, max_length: Optional[int] = None) -> None:
        """*max_length* bounds counted subsequence length (None = full)."""
        self.max_length = max_length
        self._sequence_counts: Counter[Sequence_] = Counter()
        self._expanded: Optional[Counter[Sequence_]] = None

    def add(self, event: BGPEvent) -> None:
        self.add_sequence(event.sequence)

    def add_sequence(self, sequence: Sequence_) -> None:
        self._sequence_counts[sequence] += 1
        self._expanded = None

    def add_all(self, events: Iterable[BGPEvent]) -> None:
        for event in events:
            self.add(event)

    def subtract_sequence(self, sequence: Sequence_, multiplicity: int) -> None:
        """Remove *multiplicity* occurrences of a whole sequence.

        This is what makes recursive decomposition cheap: extracting a
        component subtracts its events from the counts instead of
        recounting the residual stream. The expanded subsequence counts
        are updated in place when they exist.
        """
        current = self._sequence_counts.get(sequence, 0)
        if multiplicity > current:
            raise ValueError(
                f"cannot subtract {multiplicity} of a sequence counted"
                f" {current} times"
            )
        if multiplicity == current:
            del self._sequence_counts[sequence]
        else:
            self._sequence_counts[sequence] = current - multiplicity
        if self._expanded is not None:
            for subsequence in set(_subsequences(sequence, self.max_length)):
                remaining = self._expanded[subsequence] - multiplicity
                if remaining <= 0:
                    del self._expanded[subsequence]
                else:
                    self._expanded[subsequence] = remaining

    @property
    def event_count(self) -> int:
        return sum(self._sequence_counts.values())

    @property
    def unique_sequence_count(self) -> int:
        return len(self._sequence_counts)

    def counts(self) -> Counter[Sequence_]:
        """Subsequence → number of events containing it (length ≥ 2).

        A subsequence occurring twice inside one event (possible when a
        path revisits a token pattern, e.g. "1 2 1 2") still counts that
        event once: strength means "how many events share this
        structure", not "how many occurrences exist".
        """
        if self._expanded is None:
            expanded: Counter[Sequence_] = Counter()
            for sequence, multiplicity in self._sequence_counts.items():
                for subsequence in set(
                    _subsequences(sequence, self.max_length)
                ):
                    expanded[subsequence] += multiplicity
            self._expanded = expanded
        return self._expanded

    def top(self) -> Optional[tuple[Sequence_, int]]:
        """The strongest subsequence: highest count, longest on ties.

        Ties on (count, length) break toward the lexicographically
        smallest rendering for determinism. The expensive rendering runs
        only over the (count, length)-tied finalists — on realistic
        streams a handful of entries out of millions.
        """
        counts = self.counts()
        if not counts:
            return None
        best_rank = max(
            (count, len(sequence)) for sequence, count in counts.items()
        )
        finalists = [
            sequence
            for sequence, count in counts.items()
            if (count, len(sequence)) == best_rank
        ]
        winner = min(finalists, key=_tiebreak)
        return winner, best_rank[0]


class NaiveSubsequenceCounter(SubsequenceCounter):
    """The O(N·L²) baseline: no sequence deduplication.

    Functionally identical to :class:`SubsequenceCounter`; exists so the
    ablation can quantify what deduplication buys on realistic streams.
    """

    def __init__(self, max_length: Optional[int] = None) -> None:
        super().__init__(max_length)
        self._raw: Counter[Sequence_] = Counter()
        self._events = 0

    def add_sequence(self, sequence: Sequence_) -> None:
        for subsequence in set(_subsequences(sequence, self.max_length)):
            self._raw[subsequence] += 1
        self._events += 1

    @property
    def event_count(self) -> int:
        return self._events

    @property
    def unique_sequence_count(self) -> int:
        raise NotImplementedError("naive counter does not deduplicate")

    def subtract_sequence(self, sequence: Sequence_, multiplicity: int) -> None:
        raise NotImplementedError(
            "the naive counter has no per-sequence bookkeeping to subtract"
        )

    def counts(self) -> Counter[Sequence_]:
        return self._raw


def _subsequences(sequence: Sequence_, max_length: Optional[int]):
    """All contiguous subsequences of length ≥ 2 (bounded by max_length)."""
    n = len(sequence)
    longest = n if max_length is None else min(n, max_length)
    for start in range(n - 1):
        stop_limit = min(n, start + longest)
        for stop in range(start + 2, stop_limit + 1):
            yield sequence[start:stop]


def _tiebreak(sequence: Sequence_) -> tuple[str, ...]:
    return tuple(f"{ns}:{value}" for ns, value in sequence)
