"""Real-time windowed anomaly detection.

The paper's operational deployment runs Stemming continuously. Because
correlation is timescale-independent, the detector analyzes *multiple*
window lengths at once: short windows (minutes) surface session resets
and leaks as they happen; long windows (hours–days) let a single-prefix
oscillation accumulate enough correlation mass to overwhelm everything
else, even though its instantaneous rate sits in the Figure 8 "grass".
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.collector.events import BGPEvent
from repro.stemming.stemmer import Component, Stemmer, StemmingResult

#: Default analysis windows, seconds: 10 minutes, 4 hours, 2 days.
DEFAULT_WINDOWS = (600.0, 14_400.0, 172_800.0)


@dataclass(frozen=True)
class DetectorReport:
    """Stemming results per window length at one point in time."""

    at: float
    by_window: dict[float, StemmingResult]

    def strongest(self, window: float) -> Optional[Component]:
        result = self.by_window.get(window)
        return result.strongest if result is not None else None

    def strongest_overall(self) -> Optional[Component]:
        """The strongest component across every window.

        Strength is normalized per window by the window's event count so
        a long window's sheer volume does not automatically win.
        """
        best: Optional[Component] = None
        best_score = -1.0
        for result in self.by_window.values():
            component = result.strongest
            if component is None or result.total_events == 0:
                continue
            score = component.strength / result.total_events
            if score > best_score:
                best, best_score = component, score
        return best

    def persistent_anomalies(self) -> list[Component]:
        """Components that dominate long windows but not short ones.

        This is the oscillation signature: invisible at spike timescales,
        overwhelming at day timescales (Section IV-E/F).
        """
        windows = sorted(self.by_window)
        if len(windows) < 2:
            return []
        short = self.by_window[windows[0]]
        longest = self.by_window[windows[-1]]
        short_locations = {
            c.location for c in short.components[:3]
        }
        return [
            c
            for c in longest.components[:3]
            if c.location not in short_locations
        ]


@dataclass(slots=True)
class StreamingDetector:
    """Ingests events; reports decompositions over trailing windows."""

    windows: tuple[float, ...] = DEFAULT_WINDOWS
    stemmer: Stemmer = field(default_factory=Stemmer)
    #: Worker processes forwarded to the stemmer's counter (None keeps
    #: the stemmer's own setting; see ``repro.perf``). Long windows are
    #: where the expansion tables grow large enough to shard.
    workers: Optional[int] = None
    _events: list[BGPEvent] = field(default_factory=list)
    _timestamps: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("detector needs at least one window")
        if any(w <= 0 for w in self.windows):
            raise ValueError("window lengths must be positive")
        if self.workers is not None:
            self.stemmer = replace(self.stemmer, workers=self.workers)

    def ingest(self, events: Iterable[BGPEvent]) -> None:
        """Add events (any order); old events beyond the longest window
        are discarded to bound memory."""
        for event in events:
            index = bisect.bisect_right(self._timestamps, event.timestamp)
            self._timestamps.insert(index, event.timestamp)
            self._events.insert(index, event)
        self._trim()

    @property
    def buffered(self) -> int:
        return len(self._events)

    def report(self, at: Optional[float] = None) -> DetectorReport:
        """Run Stemming over each trailing window ending at *at*."""
        if at is None:
            at = self._timestamps[-1] if self._timestamps else 0.0
        by_window: dict[float, StemmingResult] = {}
        for window in self.windows:
            start = at - window
            lo = bisect.bisect_left(self._timestamps, start)
            hi = bisect.bisect_right(self._timestamps, at)
            by_window[window] = self.stemmer.decompose(self._events[lo:hi])
        return DetectorReport(at=at, by_window=by_window)

    def _trim(self) -> None:
        if not self._timestamps:
            return
        horizon = self._timestamps[-1] - max(self.windows)
        cut = bisect.bisect_left(self._timestamps, horizon)
        if cut:
            del self._timestamps[:cut]
            del self._events[:cut]
