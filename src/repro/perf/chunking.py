"""Shard partitioning.

Contiguous, size-balanced chunks: contiguity keeps each shard's items in
the parent's insertion order (so sharded results merge deterministically)
and balanced sizes keep the pool's stragglers short — with one chunk per
worker, the slowest shard bounds the wall clock.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def partition(items: Sequence[T], shard_count: int) -> list[list[T]]:
    """Split *items* into at most *shard_count* contiguous chunks.

    Chunk sizes differ by at most one; empty chunks are dropped, so the
    result may be shorter than *shard_count* (never empty unless *items*
    is).
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    items = list(items)
    if not items:
        return []
    shard_count = min(shard_count, len(items))
    base, extra = divmod(len(items), shard_count)
    shards: list[list[T]] = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards
