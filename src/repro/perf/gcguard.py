"""Pause the cyclic GC across large batch builds.

A batch picture or expansion build allocates hundreds of thousands of
long-lived container objects while a multi-gigabyte input (the REX
tables) is already live. Every generational collection the allocation
spikes trigger walks that entire heap; at the 1.5M-route Table I(b)
scale the collector alone adds seconds to a build that creates no
reference cycles at all (interned int keys, tuples, flat dicts).

:func:`gc_paused` disables collection for the duration and restores
the caller's setting on the way out — including on error — so cycles
created elsewhere are still reclaimed by the next normal collection.
Nesting is safe: inner guards see collection already disabled and
leave it that way. When a fork pool starts inside the guard, workers
inherit the paused collector, which is exactly right: shard builders
have the same allocation profile as the serial build.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def gc_paused() -> Iterator[None]:
    """Disable cyclic GC for the duration, restoring the prior state."""
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
