"""Worker-count resolution and the serial-fallback policy.

The rules, in order:

1. An explicit worker count (CLI flag, constructor argument) wins over
   the ``REPRO_WORKERS`` environment variable, which wins over the
   default of 1 (serial — parallelism is opt-in).
2. Requests are capped at the machine's *usable* CPUs (the scheduler
   affinity mask, not the raw core count — containers routinely pin us
   to fewer cores than the host owns). Oversubscribing CPU-bound pure
   Python only adds pickling overhead. ``REPRO_FORCE_WORKERS=1`` lifts
   the cap, which the test suite uses to exercise the real pool on
   single-CPU machines.
3. :func:`effective_workers` applies the per-call fallback: below
   ``min_units`` work items the pool's fixed costs (fork, pickle, merge)
   exceed the win, and without the ``fork`` start method child processes
   would have to re-import and re-pickle everything, so both cases run
   serially.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

ENV_WORKERS = "REPRO_WORKERS"
ENV_FORCE_WORKERS = "REPRO_FORCE_WORKERS"

#: Below this many independent work items a pool never pays for itself.
DEFAULT_MIN_PARALLEL_UNITS = 4096


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int] = None) -> int:
    """Turn a request (or None) into a configured worker count.

    ``None`` falls back to ``REPRO_WORKERS``, then to 1. The result is
    capped at :func:`usable_cpus` unless ``REPRO_FORCE_WORKERS`` is set.
    """
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{ENV_WORKERS}={raw!r} is not an integer"
                ) from exc
        else:
            workers = 1
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    if os.environ.get(ENV_FORCE_WORKERS, "").strip() not in ("", "0"):
        return workers
    return min(workers, usable_cpus())


def effective_workers(
    workers: Optional[int] = None,
    units: Optional[int] = None,
    min_units: int = DEFAULT_MIN_PARALLEL_UNITS,
) -> int:
    """The worker count a hot path should really use for *units* items.

    Returns 1 (serial) when the resolved count is 1, when ``fork`` is
    unavailable, or when the input is too small to amortize the pool.
    """
    resolved = resolve_workers(workers)
    if resolved <= 1 or not fork_available():
        return 1
    if units is not None and units < max(min_units, 2 * resolved):
        return 1
    return resolved
