"""Shared parallel-execution plumbing for the hot paths.

Both engines that have to survive million-event spikes — Stemming's
subsequence expansion and the TAMP animation renderer — shard their work
across a ``multiprocessing`` pool through this package. It centralizes
the three decisions every parallel hot path otherwise reinvents badly:

* **How many workers?** :func:`resolve_workers` merges the explicit
  request (``--workers`` / constructor argument), the ``REPRO_WORKERS``
  environment variable, and the machine's usable CPU count.
* **Is parallelism worth it here?** :func:`effective_workers` adds the
  serial-fallback policy: small inputs, single-CPU hosts and platforms
  without ``fork`` all run serially — the sharded algorithms are written
  so that the serial path is the exact same code as one shard.
* **Pool lifecycle.** :func:`map_shards` owns pool creation and teardown
  so callers never leak worker processes.

It also hosts :func:`gc_paused`, the batch-build guard that keeps the
cyclic collector from repeatedly scanning a multi-gigabyte live heap
while a build allocates millions of acyclic containers.
"""

from repro.perf.chunking import partition
from repro.perf.config import (
    DEFAULT_MIN_PARALLEL_UNITS,
    ENV_FORCE_WORKERS,
    ENV_WORKERS,
    effective_workers,
    fork_available,
    resolve_workers,
    usable_cpus,
)
from repro.perf.gcguard import gc_paused
from repro.perf.pool import map_shards

__all__ = [
    "DEFAULT_MIN_PARALLEL_UNITS",
    "ENV_FORCE_WORKERS",
    "ENV_WORKERS",
    "effective_workers",
    "fork_available",
    "gc_paused",
    "map_shards",
    "partition",
    "resolve_workers",
    "usable_cpus",
]
