"""Pool lifecycle: map a function over shards, serially or forked.

One entry point, :func:`map_shards`, so every parallel hot path shares
the same guarantees: the serial path runs the identical function (the
property tests lean on this), pools are always torn down, and the fork
start method is used explicitly — never the platform default, which
could silently become ``spawn`` and re-import the world per task.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Sequence, TypeVar

from repro.perf.config import fork_available

S = TypeVar("S")
R = TypeVar("R")


def map_shards(
    func: Callable[[S], R], shards: Sequence[S], workers: int
) -> list[R]:
    """``[func(shard) for shard in shards]``, forked when it pays.

    Runs serially when *workers* <= 1, there is at most one shard, or
    ``fork`` is unavailable. The pool size never exceeds the shard
    count.
    """
    shards = list(shards)
    if workers <= 1 or len(shards) <= 1 or not fork_available():
        return [func(shard) for shard in shards]
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=min(workers, len(shards))) as pool:
        return pool.map(func, shards)
