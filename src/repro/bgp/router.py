"""A BGP speaker.

:class:`BGPRouter` composes everything in this package: per-neighbor
sessions and Adj-RIB-Ins, import/export policy, the decision process, and
route reflection. It is message-driven and deterministic — every call takes
the current time and returns the updates to send — so the discrete-event
simulator can schedule propagation however a scenario requires.

Propagation semantics implemented (the ones the paper's incidents hinge on):

* EBGP export prepends the local AS, rewrites NEXT_HOP to the session
  address, and strips LOCAL_PREF and MED (unless export policy re-sets
  them).
* IBGP speakers do not relay IBGP-learned routes — unless configured as a
  route reflector, which reflects client routes to everyone and non-client
  routes to clients, stamping ORIGINATOR_ID and CLUSTER_LIST.
* A session loss withdraws everything learned from that peer and triggers
  best-path reruns, which is exactly how "the most minor connectivity
  change produces hundreds of BGP messages".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.bgp.decision import DecisionProcess, RouteSource
from repro.bgp.errors import BGPError
from repro.bgp.policy import Policy, PolicyContext
from repro.bgp.rib import AdjRibIn, LocRib, Route
from repro.bgp.session import BGPSession
from repro.net.aspath import ASPath
from repro.net.attributes import DEFAULT_LOCAL_PREF, Origin, PathAttributes
from repro.net.message import Announcement, BGPUpdate, Withdrawal
from repro.net.prefix import Prefix

#: Sentinel peer address for locally originated routes.
LOCAL_PEER = 0


@dataclass(slots=True)
class Neighbor:
    """Everything the router tracks about one peering."""

    address: int
    asn: int
    router_id: int
    session: BGPSession
    policy: Policy = field(default_factory=Policy)
    is_rr_client: bool = False
    nexthop_self: bool = False
    adj_rib_in: AdjRibIn = field(init=False)
    adj_rib_out: dict[Prefix, PathAttributes] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adj_rib_in = AdjRibIn(self.address)

    @property
    def is_ebgp(self) -> bool:
        return self.session.is_ebgp

    def context(self) -> PolicyContext:
        return PolicyContext(neighbor_as=self.asn, peer_address=self.address)


class BGPRouter:
    """One BGP speaker in a simulated network.

    *cluster_id* defaults to the router id; setting *route_reflector* makes
    IBGP neighbors flagged ``is_rr_client`` reflection clients.
    """

    def __init__(
        self,
        name: str,
        asn: int,
        router_id: int,
        address: int,
        decision: Optional[DecisionProcess] = None,
        route_reflector: bool = False,
        cluster_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.asn = asn
        self.router_id = router_id
        self.address = address
        self.decision = decision if decision is not None else DecisionProcess()
        self.route_reflector = route_reflector
        self.cluster_id = cluster_id if cluster_id is not None else router_id
        self.loc_rib = LocRib()
        self.neighbors: dict[int, Neighbor] = {}
        self._local_routes: dict[Prefix, PathAttributes] = {}

    # ------------------------------------------------------------------
    # Topology wiring
    # ------------------------------------------------------------------

    def add_neighbor(
        self,
        address: int,
        asn: int,
        router_id: int,
        policy: Optional[Policy] = None,
        is_rr_client: bool = False,
        nexthop_self: bool = False,
        hold_time: Optional[float] = 90.0,
        max_prefixes: Optional[int] = None,
    ) -> Neighbor:
        """Configure a peering with the speaker at *address*."""
        if address in self.neighbors:
            raise BGPError(f"{self.name}: duplicate neighbor {address:#x}")
        session = BGPSession(
            local_address=self.address,
            peer_address=address,
            peer_asn=asn,
            local_asn=self.asn,
            hold_time=hold_time,
            max_prefixes=max_prefixes,
        )
        neighbor = Neighbor(
            address=address,
            asn=asn,
            router_id=router_id,
            session=session,
            policy=policy if policy is not None else Policy(),
            is_rr_client=is_rr_client,
            nexthop_self=nexthop_self,
        )
        self.neighbors[address] = neighbor
        return neighbor

    def neighbor(self, address: int) -> Neighbor:
        try:
            return self.neighbors[address]
        except KeyError:
            raise BGPError(
                f"{self.name}: no neighbor at address {address:#x}"
            ) from None

    # ------------------------------------------------------------------
    # Local origination
    # ------------------------------------------------------------------

    def originate(
        self,
        prefix: Prefix,
        med: Optional[int] = None,
        communities: Iterable = (),
        now: float = 0.0,
    ) -> list[tuple[int, BGPUpdate]]:
        """Originate *prefix* locally (empty AS path, self nexthop).

        Returns the updates to send to peers.
        """
        attrs = PathAttributes(
            nexthop=self.address,
            as_path=ASPath(),
            origin=Origin.IGP,
            med=med,
            communities=communities,
        )
        self._local_routes[prefix] = attrs
        self.loc_rib.add_candidate(Route(prefix, attrs, LOCAL_PEER))
        return self._reselect(prefix, now)

    def withdraw_origination(
        self, prefix: Prefix, now: float = 0.0
    ) -> list[tuple[int, BGPUpdate]]:
        """Stop originating *prefix*."""
        if prefix not in self._local_routes:
            raise BGPError(f"{self.name}: {prefix} is not locally originated")
        del self._local_routes[prefix]
        self.loc_rib.remove_candidate(prefix, LOCAL_PEER)
        return self._reselect(prefix, now)

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------

    def receive_update(
        self, from_address: int, update: BGPUpdate, now: float = 0.0
    ) -> list[tuple[int, BGPUpdate]]:
        """Process an UPDATE from a peer; return updates to propagate.

        Withdrawals are processed before announcements, matching the wire
        format's field order.
        """
        neighbor = self.neighbor(from_address)
        if not neighbor.session.is_established:
            # Messages racing a session teardown are dropped, as a real
            # speaker drops data on a closed TCP connection.
            return []
        touched: list[Prefix] = []
        for withdrawal in update.withdrawals:
            if self._apply_withdrawal(neighbor, withdrawal):
                touched.append(withdrawal.prefix)
        announced = 0
        for announcement in update.announcements:
            outcome = self._apply_announcement(neighbor, announcement)
            if outcome is not None:
                touched.append(announcement.prefix)
                announced += outcome
        outgoing: list[tuple[int, BGPUpdate]] = []
        if announced and neighbor.session.note_prefixes(announced, now):
            # Max-prefix tripped: the whole session collapses and takes
            # every route from this peer with it.
            outgoing.extend(self._flush_peer(neighbor, now))
            return outgoing
        for prefix in touched:
            outgoing.extend(self._reselect(prefix, now))
        return _merge_updates(outgoing)

    def session_up(
        self, peer_address: int, now: float = 0.0
    ) -> list[tuple[int, BGPUpdate]]:
        """Bring the session up and send our full table to that peer."""
        neighbor = self.neighbor(peer_address)
        if not neighbor.session.is_established:
            neighbor.session.establish_directly(now)
        announcements: list[Announcement] = []
        for route in self.loc_rib.best_routes():
            attrs = self._export_route(neighbor, route)
            if attrs is None:
                continue
            neighbor.adj_rib_out[route.prefix] = attrs
            announcements.append(Announcement(route.prefix, attrs))
        if not announcements:
            return []
        return [(peer_address, BGPUpdate(announcements=tuple(announcements)))]

    def session_down(
        self, peer_address: int, now: float = 0.0
    ) -> list[tuple[int, BGPUpdate]]:
        """Tear the session down; withdraw everything learned from it."""
        neighbor = self.neighbor(peer_address)
        neighbor.session.close(now)
        return self._flush_peer(neighbor, now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        return self.loc_rib.best(prefix)

    def table_size(self) -> int:
        """Number of prefixes with a selected route ('show ip bgp' lines)."""
        return len(self.loc_rib)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_withdrawal(self, neighbor: Neighbor, withdrawal: Withdrawal) -> bool:
        removed = neighbor.adj_rib_in.withdraw(withdrawal.prefix)
        if removed is None:
            return False
        neighbor.session.note_withdrawn(1)
        self.loc_rib.remove_candidate(withdrawal.prefix, neighbor.address)
        return True

    def _apply_announcement(
        self, neighbor: Neighbor, announcement: Announcement
    ) -> Optional[int]:
        """Install one announcement.

        Returns None if the route was rejected, else the number of *new*
        prefixes this added to the session count (0 for a replacement).
        """
        prefix, attrs = announcement.prefix, announcement.attributes
        if neighbor.is_ebgp and attrs.as_path.has_loop(self.asn):
            return None
        if not neighbor.is_ebgp and attrs.originator_id == self.router_id:
            # Reflection loop prevention: our own originated route came back.
            return None
        if not neighbor.is_ebgp and self.cluster_id in attrs.cluster_list:
            return None
        if neighbor.is_ebgp:
            # LOCAL_PREF is not valid across AS boundaries; reset before
            # import policy, which may assign one.
            attrs = attrs.replace(local_pref=DEFAULT_LOCAL_PREF)
        imported = neighbor.policy.import_route(
            prefix, attrs, neighbor.context()
        )
        previous = neighbor.adj_rib_in.get(prefix)
        if imported is None:
            # Filtered by import policy. If we previously held this route,
            # that is an implicit withdrawal.
            if previous is not None:
                neighbor.adj_rib_in.withdraw(prefix)
                neighbor.session.note_withdrawn(1)
                self.loc_rib.remove_candidate(prefix, neighbor.address)
                return 0
            return None
        neighbor.adj_rib_in.announce(prefix, imported)
        self.loc_rib.add_candidate(Route(prefix, imported, neighbor.address))
        return 0 if previous is not None else 1

    def _reselect(
        self, prefix: Prefix, now: float
    ) -> list[tuple[int, BGPUpdate]]:
        """Re-run best-path selection for *prefix*; propagate any change."""
        sources = [
            self._route_source(route)
            for route in self.loc_rib.candidates(prefix)
        ]
        best = self.decision.select(sources)
        previous = self.loc_rib.best(prefix)
        if best is None:
            if previous is None:
                return []
            self.loc_rib.clear_best(prefix)
            return self._propagate_withdrawal(prefix, previous)
        if previous is not None and previous == best.route:
            return []
        self.loc_rib.set_best(best.route)
        return self._propagate_best(best.route, previous)

    def _route_source(self, route: Route) -> RouteSource:
        if route.peer == LOCAL_PEER:
            return RouteSource(
                route=route,
                is_ebgp=False,
                peer_router_id=self.router_id,
                peer_address=self.address,
            )
        neighbor = self.neighbor(route.peer)
        return RouteSource(
            route=route,
            is_ebgp=neighbor.is_ebgp,
            peer_router_id=neighbor.router_id,
            peer_address=neighbor.address,
        )

    def _propagate_best(
        self, best: Route, previous: Optional[Route]
    ) -> list[tuple[int, BGPUpdate]]:
        outgoing: list[tuple[int, BGPUpdate]] = []
        # repro: allow[DET002] neighbors are registered in configuration
        # order, so propagation order is deterministic and meaningful.
        for neighbor in self.neighbors.values():
            if not neighbor.session.is_established:
                continue
            attrs = self._export_route(neighbor, best)
            previously_sent = best.prefix in neighbor.adj_rib_out
            if attrs is None:
                if previously_sent:
                    del neighbor.adj_rib_out[best.prefix]
                    outgoing.append(
                        (
                            neighbor.address,
                            BGPUpdate.withdraw([best.prefix]),
                        )
                    )
                continue
            if previously_sent and neighbor.adj_rib_out[best.prefix] == attrs:
                continue
            neighbor.adj_rib_out[best.prefix] = attrs
            outgoing.append(
                (
                    neighbor.address,
                    BGPUpdate(
                        announcements=(Announcement(best.prefix, attrs),)
                    ),
                )
            )
        return outgoing

    def _propagate_withdrawal(
        self, prefix: Prefix, previous: Route
    ) -> list[tuple[int, BGPUpdate]]:
        outgoing: list[tuple[int, BGPUpdate]] = []
        # repro: allow[DET002] neighbors are registered in configuration
        # order, so withdrawal order is deterministic and meaningful.
        for neighbor in self.neighbors.values():
            if prefix in neighbor.adj_rib_out:
                del neighbor.adj_rib_out[prefix]
                if neighbor.session.is_established:
                    outgoing.append(
                        (neighbor.address, BGPUpdate.withdraw([prefix]))
                    )
        return outgoing

    def _export_route(
        self, neighbor: Neighbor, route: Route
    ) -> Optional[PathAttributes]:
        """Attributes to announce to *neighbor*, or None if not exported."""
        if route.peer == neighbor.address:
            # Never echo a route back to the peer that taught it to us.
            return None
        if not self._may_relay(neighbor, route):
            return None
        attrs = route.attributes
        if neighbor.is_ebgp:
            attrs = attrs.replace(
                as_path=attrs.as_path.prepend(self.asn),
                nexthop=self.address,
                local_pref=DEFAULT_LOCAL_PREF,
                med=None,
                originator_id=None,
                cluster_list=(),
            )
        else:
            if neighbor.nexthop_self:
                attrs = attrs.replace(nexthop=self.address)
            attrs = self._reflection_attrs(attrs, route)
        exported = neighbor.policy.export_route(
            route.prefix, attrs, neighbor.context()
        )
        return exported

    def _may_relay(self, neighbor: Neighbor, route: Route) -> bool:
        """IBGP relay rules, including route reflection."""
        if route.peer == LOCAL_PEER:
            return True
        learned_from = self.neighbor(route.peer)
        if learned_from.is_ebgp or neighbor.is_ebgp:
            return True
        # IBGP-learned route toward an IBGP peer: only a route reflector
        # may relay, and only client→all or all→client.
        if not self.route_reflector:
            return False
        return learned_from.is_rr_client or neighbor.is_rr_client

    def _reflection_attrs(
        self, attrs: PathAttributes, route: Route
    ) -> PathAttributes:
        if not self.route_reflector or route.peer == LOCAL_PEER:
            return attrs
        learned_from = self.neighbor(route.peer)
        if learned_from.is_ebgp:
            return attrs
        originator = (
            attrs.originator_id
            if attrs.originator_id is not None
            else learned_from.router_id
        )
        return attrs.replace(
            originator_id=originator,
            cluster_list=(self.cluster_id,) + attrs.cluster_list,
        )

    def _flush_peer(
        self, neighbor: Neighbor, now: float
    ) -> list[tuple[int, BGPUpdate]]:
        """Remove all state learned from a dead peer; propagate fallout."""
        removed = neighbor.adj_rib_in.clear()
        neighbor.adj_rib_out.clear()
        outgoing: list[tuple[int, BGPUpdate]] = []
        for route in removed:
            self.loc_rib.remove_candidate(route.prefix, neighbor.address)
            outgoing.extend(self._reselect(route.prefix, now))
        return _merge_updates(outgoing)


def _merge_updates(
    outgoing: list[tuple[int, BGPUpdate]]
) -> list[tuple[int, BGPUpdate]]:
    """Coalesce per-prefix updates to the same peer into larger UPDATEs.

    Preserves per-peer ordering (withdrawal/announcement interleaving is
    kept by flushing whenever the message kind flips), which matters to
    receivers that process messages sequentially.
    """
    merged: list[tuple[int, BGPUpdate]] = []
    pending: dict[int, tuple[list[Withdrawal], list[Announcement]]] = {}
    order: list[int] = []

    def flush(address: int) -> None:
        withdrawals, announcements = pending.pop(address)
        merged.append(
            (
                address,
                BGPUpdate(
                    withdrawals=tuple(withdrawals),
                    announcements=tuple(announcements),
                ),
            )
        )
        order.remove(address)

    for address, update in outgoing:
        if address not in pending:
            pending[address] = ([], [])
            order.append(address)
        withdrawals, announcements = pending[address]
        # BGP UPDATEs carry withdrawals before announcements; a withdrawal
        # arriving after we queued announcements must not be reordered in
        # front of them.
        if update.withdrawals and announcements:
            flush(address)
            pending[address] = ([], [])
            order.append(address)
            withdrawals, announcements = pending[address]
        withdrawals.extend(update.withdrawals)
        announcements.extend(update.announcements)
    for address in list(order):
        flush(address)
    return merged
