"""Routing Information Bases.

A BGP speaker keeps one Adj-RIB-In per peer (routes as received, after
import policy) and a Loc-RIB (the selected best route per prefix plus the
candidate set). The REX collector in Section II of the paper relies on the
Adj-RIB-In to recover the attributes of withdrawn routes, since withdrawals
on the wire carry only the prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class Route:
    """A route: a prefix with attributes, remembered with its source peer.

    *peer* is the 32-bit address of the session the route arrived on (0 for
    locally originated routes).
    """

    prefix: Prefix
    attributes: PathAttributes
    peer: int = 0

    @property
    def nexthop(self) -> int:
        return self.attributes.nexthop


class AdjRibIn:
    """Routes received from one peer, keyed by prefix.

    This is deliberately a plain dict rather than a trie: the hot
    operations are exact-prefix insert/replace/remove driven by UPDATE
    messages, and iteration for table dumps. Trie queries (longest match,
    covered sets) belong to analysis layers that build their own index.
    """

    __slots__ = ("peer", "_routes", "_groups")

    def __init__(self, peer: int) -> None:
        self.peer = peer
        self._routes: dict[Prefix, PathAttributes] = {}
        #: Attribute-grouped view of the table, maintained per UPDATE:
        #: bundle -> the prefixes announced with it (an inner dict so a
        #: replacement evicts from the old group in O(1)). Each value is
        #: the prefix's packed interning id
        #: (:func:`repro.interning.pack_prefix`, inlined here) — ids are
        #: value-derived, so the RIB can maintain them per announce and
        #: a picture build reads ready-made id columns
        #: (:meth:`grouped_pid_entries`) instead of re-encoding millions
        #: of prefixes per picture. TAMP consumes whole tables *grouped
        #: by bundle* — all routes sharing one thread the same node
        #: chain — so keeping the grouping current per announce (one
        #: extra dict op on a path that already pays several) lets a
        #: picture build start from groups instead of re-bucketing
        #: millions of routes.
        self._groups: dict[PathAttributes, dict[Prefix, int]] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def get(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Attributes currently held for *prefix*, or None."""
        return self._routes.get(prefix)

    def announce(
        self, prefix: Prefix, attributes: PathAttributes
    ) -> Optional[PathAttributes]:
        """Install or replace the route for *prefix*.

        Returns the attributes that were displaced (an implicit withdrawal,
        in protocol terms), or None if the prefix was previously absent.
        """
        previous = self._routes.get(prefix)
        self._routes[prefix] = attributes
        if previous is not None:
            if previous == attributes:
                return previous
            self._evict_from_group(previous, prefix)
        self._groups.setdefault(attributes, {})[prefix] = (
            prefix.length << 32
        ) | (prefix.network >> (32 - prefix.length))
        return previous

    def withdraw(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Remove the route for *prefix*.

        Returns the withdrawn attributes — exactly the augmentation the
        REX collector performs — or None if the peer never announced it.
        """
        removed = self._routes.pop(prefix, None)
        if removed is not None:
            self._evict_from_group(removed, prefix)
        return removed

    def _evict_from_group(
        self, attributes: PathAttributes, prefix: Prefix
    ) -> None:
        members = self._groups.get(attributes)
        if members is not None:
            members.pop(prefix, None)
            if not members:
                del self._groups[attributes]

    def clear(self) -> list[Route]:
        """Drop everything (session loss). Returns the routes removed."""
        removed = [
            Route(prefix, attrs, self.peer)
            for prefix, attrs in self._routes.items()
        ]
        self._routes.clear()
        self._groups.clear()
        return removed

    def routes(self) -> Iterator[Route]:
        """Yield the current contents as :class:`Route` values."""
        for prefix, attrs in self._routes.items():
            yield Route(prefix, attrs, self.peer)

    def entries(self) -> Iterator[tuple[Prefix, PathAttributes]]:
        """Yield the table as raw (prefix, attributes) pairs.

        The batch TAMP builder walks entire tables once per picture;
        at ISP scale the :class:`Route` wrappers :meth:`routes` builds
        cost seconds of pure allocation, so bulk consumers read the
        native items instead.
        """
        return iter(self._routes.items())

    def grouped_entries(
        self,
    ) -> Iterator[tuple[PathAttributes, dict[Prefix, int]]]:
        """The table grouped by attribute bundle, as maintained per UPDATE.

        Yields (bundle, prefixes) where the prefixes arrive as a dict
        keyed by :class:`~repro.net.prefix.Prefix` (values are their
        packed interning ids) — iterate it like a set. The groups are
        the live index: callers must not mutate them, and must not
        interleave iteration with announcements. Bulk TAMP builds read
        this instead of re-grouping the whole table per picture.
        """
        return iter(self._groups.items())

    def grouped_pid_entries(self):
        """The grouped table as ready-made prefix-id columns.

        Yields (bundle, pid view) where the view iterates the group's
        packed prefix ids (:func:`repro.interning.pack_prefix`) — the
        values side of the live group index, maintained per UPDATE, so
        an interned TAMP build consumes id columns without touching a
        single :class:`~repro.net.prefix.Prefix` object. Same liveness
        caveats as :meth:`grouped_entries`.
        """
        for attributes, members in self._groups.items():
            yield attributes, members.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._routes


class LocRib:
    """The local RIB: per prefix, the chosen best route and all candidates.

    Candidates are kept because TAMP maps *sets of routes*, not just best
    paths, and because the decision process needs the full candidate set
    on every change.
    """

    __slots__ = ("_best", "_candidates")

    def __init__(self) -> None:
        self._best: dict[Prefix, Route] = {}
        self._candidates: dict[Prefix, dict[int, Route]] = {}

    def __len__(self) -> int:
        """Number of prefixes with a selected best route."""
        return len(self._best)

    @property
    def route_count(self) -> int:
        """Total candidate routes across all prefixes (paper's 'routes')."""
        return sum(len(c) for c in self._candidates.values())

    def add_candidate(self, route: Route) -> None:
        """Install *route* as the candidate from its peer."""
        self._candidates.setdefault(route.prefix, {})[route.peer] = route

    def remove_candidate(self, prefix: Prefix, peer: int) -> Optional[Route]:
        """Remove the candidate for *prefix* learned from *peer*."""
        candidates = self._candidates.get(prefix)
        if not candidates:
            return None
        removed = candidates.pop(peer, None)
        if not candidates:
            del self._candidates[prefix]
        return removed

    def candidates(self, prefix: Prefix) -> list[Route]:
        """All candidate routes for *prefix* (order unspecified)."""
        # repro: allow[DET002] arrival order; the RIB is fed by one
        # deterministic event stream and the decision process breaks
        # every tie explicitly (router-id last).
        return list(self._candidates.get(prefix, {}).values())

    def set_best(self, route: Route) -> Optional[Route]:
        """Record *route* as best for its prefix; returns the previous best."""
        return self._best_swap(route.prefix, route)

    def clear_best(self, prefix: Prefix) -> Optional[Route]:
        """Remove the best route for *prefix*; returns what was there."""
        return self._best_swap(prefix, None)

    def best(self, prefix: Prefix) -> Optional[Route]:
        return self._best.get(prefix)

    def best_routes(self) -> Iterator[Route]:
        """Yield the selected best route for every prefix."""
        yield from self._best.values()

    def all_routes(self) -> Iterator[Route]:
        """Yield every candidate route for every prefix."""
        # repro: allow[DET002] insertion order follows the one
        # deterministic event stream feeding this RIB.
        for candidates in self._candidates.values():
            yield from candidates.values()

    def prefixes(self) -> Iterator[Prefix]:
        yield from self._best

    def _best_swap(
        self, prefix: Prefix, route: Optional[Route]
    ) -> Optional[Route]:
        previous = self._best.get(prefix)
        if route is None:
            self._best.pop(prefix, None)
        else:
            self._best[prefix] = route
        return previous
