"""Exception hierarchy for the BGP substrate."""


class BGPError(Exception):
    """Base class for all BGP substrate errors."""


class SessionError(BGPError):
    """A BGP session operation was invalid in the current state."""


class PolicyError(BGPError):
    """A routing policy is malformed or referenced an unknown object."""
