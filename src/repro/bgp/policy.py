"""Routing policy: match conditions, actions, route-maps.

An AS realizes its business relationships by configuring policies on its
routers (Section I of the paper). We model the policy vocabulary the case
studies need: prefix-list and community matching, LOCAL_PREF / MED /
community-rewriting actions, and route-maps composed of permit/deny
clauses evaluated first-match. The config-language compiler in
:mod:`repro.config` produces these objects from IOS-like text; Section
III-D.1's policy correlation consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Optional, Protocol

from repro.bgp.errors import PolicyError
from repro.net.attributes import Community, PathAttributes
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class PolicyContext:
    """Session facts available to match conditions.

    *neighbor_as* is the AS of the peer the route is being imported from /
    exported to; *peer_address* its session address.
    """

    neighbor_as: int = 0
    peer_address: int = 0


class MatchCondition(Protocol):
    """One predicate of a route-map clause."""

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        """True if the route satisfies this condition."""
        ...


@dataclass(frozen=True, slots=True)
class PrefixListEntry:
    """One line of an ip prefix-list: a prefix with optional le/ge bounds.

    With no bounds the entry matches exactly. ``le``/``ge`` extend the
    match to more-specific routes whose length falls in range, as on real
    routers.
    """

    prefix: Prefix
    ge: Optional[int] = None
    le: Optional[int] = None

    def matches(self, candidate: Prefix) -> bool:
        if self.ge is None and self.le is None:
            return candidate == self.prefix
        if not self.prefix.contains(candidate):
            return False
        low = self.ge if self.ge is not None else self.prefix.length
        high = self.le if self.le is not None else 32
        return low <= candidate.length <= high


@dataclass(frozen=True, slots=True)
class MatchPrefixList:
    """Matches when the route's prefix hits any entry of the list."""

    entries: tuple[PrefixListEntry, ...]

    @classmethod
    def exact(cls, prefixes: Iterable[Prefix]) -> "MatchPrefixList":
        return cls(tuple(PrefixListEntry(p) for p in prefixes))

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        return any(entry.matches(prefix) for entry in self.entries)


@dataclass(frozen=True, slots=True)
class MatchCommunity:
    """Matches when the route carries any (or, if require_all, every) tag."""

    communities: frozenset[Community]
    require_all: bool = False

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        if self.require_all:
            return self.communities <= attrs.communities
        return bool(self.communities & attrs.communities)


@dataclass(frozen=True, slots=True)
class MatchNeighborAS:
    """Matches routes imported from / exported to a given neighbor AS."""

    asn: int

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        return context.neighbor_as == self.asn


@dataclass(frozen=True, slots=True)
class MatchASInPath:
    """Matches routes whose AS path traverses *asn*."""

    asn: int

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        return self.asn in attrs.as_path


def compile_as_path_regex(pattern: str):
    """Compile an IOS-style AS-path regex to a Python matcher.

    Router regexes match against the path rendered as space-separated AS
    numbers. The one IOS-specific token is ``_`` (underscore), which
    matches any delimiter: start of string, end of string, or the space
    between ASes. Everything else passes through as ordinary regex
    syntax. ``^$`` therefore matches the empty (locally originated) path
    and ``_701_`` matches AS 701 anywhere in the path.
    """
    import re

    translated = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "_":
            translated.append(r"(?:^|$|\s)")
        elif char == "\\" and index + 1 < len(pattern):
            translated.append(pattern[index : index + 2])
            index += 1
        else:
            translated.append(char)
        index += 1
    try:
        return re.compile("".join(translated))
    except re.error as exc:
        raise PolicyError(f"bad as-path regex {pattern!r}: {exc}") from exc


@dataclass(frozen=True, slots=True)
class MatchASPathRegex:
    """Matches routes whose AS path satisfies an IOS-style regex.

    The heavy hammer of operational policy: "deny everything that
    transited AS X", "permit only my customers' originations", etc.
    """

    pattern: str

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        matcher = _regex_cache_get(self.pattern)
        return matcher.search(str(attrs.as_path)) is not None


@lru_cache(maxsize=1024)
def _regex_cache_get(pattern: str):
    return compile_as_path_regex(pattern)


@dataclass(frozen=True, slots=True)
class MatchLocallyOriginated:
    """Matches routes with an empty AS path (originated by this AS).

    Enterprises export only these to avoid becoming transit (Section
    III-D.1).
    """

    def matches(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        return len(attrs.as_path) == 0


class PolicyAction(Protocol):
    """One attribute rewrite of a permit clause."""

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        ...


@dataclass(frozen=True, slots=True)
class SetLocalPref:
    value: int

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(local_pref=self.value)


@dataclass(frozen=True, slots=True)
class SetMED:
    value: Optional[int]

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(med=self.value)


@dataclass(frozen=True, slots=True)
class AddCommunity:
    community: Community

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.add_community(self.community)


@dataclass(frozen=True, slots=True)
class RemoveCommunity:
    community: Community

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.remove_community(self.community)


@dataclass(frozen=True, slots=True)
class ClearCommunities:
    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(communities=frozenset())


@dataclass(frozen=True, slots=True)
class PrependASPath:
    asn: int
    count: int = 1

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(as_path=attrs.as_path.prepend(self.asn, self.count))


@dataclass(frozen=True, slots=True)
class SetNexthop:
    address: int

    def apply(self, attrs: PathAttributes) -> PathAttributes:
        return attrs.replace(nexthop=self.address)


@dataclass(frozen=True, slots=True)
class RouteMapClause:
    """One permit/deny clause: all matches must hold; actions apply on permit.

    A clause with no match conditions matches everything, as on real
    routers.
    """

    permit: bool = True
    matches: tuple[MatchCondition, ...] = ()
    actions: tuple[PolicyAction, ...] = ()

    def matches_route(
        self, prefix: Prefix, attrs: PathAttributes, context: PolicyContext
    ) -> bool:
        return all(m.matches(prefix, attrs, context) for m in self.matches)

    def apply_actions(self, attrs: PathAttributes) -> PathAttributes:
        for action in self.actions:
            attrs = action.apply(attrs)
        return attrs


@dataclass(frozen=True, slots=True)
class RouteMap:
    """A named sequence of clauses, evaluated first-match.

    Router semantics: the first matching clause decides. If no clause
    matches, the route is denied (implicit deny at the end).
    """

    name: str
    clauses: tuple[RouteMapClause, ...] = ()

    def apply(
        self,
        prefix: Prefix,
        attrs: PathAttributes,
        context: PolicyContext = PolicyContext(),
    ) -> Optional[PathAttributes]:
        """Rewritten attributes on permit, None on deny."""
        for clause in self.clauses:
            if clause.matches_route(prefix, attrs, context):
                if not clause.permit:
                    return None
                return clause.apply_actions(attrs)
        return None


PERMIT_ALL = RouteMap("permit-all", (RouteMapClause(permit=True),))


@dataclass(slots=True)
class Policy:
    """The import/export policy attached to one neighbor.

    *max_prefixes* mirrors the max-prefix-limit safeguard from the route
    leak war story in Section I: when a peer announces more prefixes than
    the limit, the session is torn down.
    """

    import_map: RouteMap = PERMIT_ALL
    export_map: RouteMap = PERMIT_ALL
    max_prefixes: Optional[int] = None

    def import_route(
        self,
        prefix: Prefix,
        attrs: PathAttributes,
        context: PolicyContext = PolicyContext(),
    ) -> Optional[PathAttributes]:
        return self.import_map.apply(prefix, attrs, context)

    def export_route(
        self,
        prefix: Prefix,
        attrs: PathAttributes,
        context: PolicyContext = PolicyContext(),
    ) -> Optional[PathAttributes]:
        return self.export_map.apply(prefix, attrs, context)


def community_list(*tags: str) -> frozenset[Community]:
    """Convenience: parse community text into a frozen set.

    >>> sorted(str(c) for c in community_list("11423:65300", "11423:65350"))
    ['11423:65300', '11423:65350']
    """
    if not tags:
        raise PolicyError("community list needs at least one tag")
    return frozenset(Community.parse(tag) for tag in tags)
