"""The BGP session state machine.

A trimmed-down RFC 4271 FSM: Idle → Connect → OpenSent → Established, with
hold-timer expiry, administrative resets, and the max-prefix safeguard.
Session flaps are the engine behind several case studies — the continuous
customer flapping of Figure 9 is nothing but this FSM cycling once a
minute — so state transitions are recorded with timestamps for analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.bgp.errors import SessionError
from repro.net.message import NotificationCode


class SessionState(enum.Enum):
    IDLE = "idle"
    CONNECT = "connect"
    OPEN_SENT = "open-sent"
    ESTABLISHED = "established"


@dataclass(frozen=True, slots=True)
class SessionTransition:
    """One recorded state change, for flap analysis."""

    time: float
    old_state: SessionState
    new_state: SessionState
    reason: str = ""


class BGPSession:
    """One side of a BGP peering.

    The session is clock-driven: callers pass the current time into every
    method, which keeps the FSM deterministic under the discrete-event
    simulator. *hold_time* of None disables hold-timer expiry (useful for
    passive collector peerings that should never flap on their own).
    """

    def __init__(
        self,
        local_address: int,
        peer_address: int,
        peer_asn: int,
        local_asn: int,
        hold_time: Optional[float] = 90.0,
        max_prefixes: Optional[int] = None,
    ) -> None:
        self.local_address = local_address
        self.peer_address = peer_address
        self.peer_asn = peer_asn
        self.local_asn = local_asn
        self.hold_time = hold_time
        self.max_prefixes = max_prefixes
        self.state = SessionState.IDLE
        self.prefix_count = 0
        self.last_keepalive = 0.0
        self.transitions: list[SessionTransition] = []
        self.flap_count = 0

    @property
    def is_established(self) -> bool:
        return self.state is SessionState.ESTABLISHED

    @property
    def is_ebgp(self) -> bool:
        return self.local_asn != self.peer_asn

    def start(self, now: float) -> None:
        """Begin connecting (administrative up)."""
        if self.state is not SessionState.IDLE:
            raise SessionError(f"cannot start session in state {self.state}")
        self._transition(now, SessionState.CONNECT, "admin up")

    def open_sent(self, now: float) -> None:
        """TCP connected; OPEN exchanged."""
        if self.state is not SessionState.CONNECT:
            raise SessionError(f"cannot send OPEN in state {self.state}")
        self._transition(now, SessionState.OPEN_SENT, "open sent")

    def establish(self, now: float) -> None:
        """OPEN confirmed; session up."""
        if self.state is not SessionState.OPEN_SENT:
            raise SessionError(f"cannot establish in state {self.state}")
        self.last_keepalive = now
        self.prefix_count = 0
        self._transition(now, SessionState.ESTABLISHED, "established")

    def establish_directly(self, now: float) -> None:
        """Shortcut through Connect/OpenSent for simulation setup."""
        if self.state is not SessionState.IDLE:
            raise SessionError(f"cannot establish in state {self.state}")
        self.start(now)
        self.open_sent(now)
        self.establish(now)

    def keepalive(self, now: float) -> None:
        """Record a received KEEPALIVE (refreshes the hold timer)."""
        if not self.is_established:
            raise SessionError("keepalive on a session that is not up")
        self.last_keepalive = now

    def check_hold_timer(self, now: float) -> bool:
        """Tear the session down if the hold timer expired.

        Returns True if the session was closed by this check.
        """
        if not self.is_established or self.hold_time is None:
            return False
        if now - self.last_keepalive > self.hold_time:
            self.close(now, NotificationCode.HOLD_TIMER_EXPIRED)
            return True
        return False

    def note_prefixes(self, count: int, now: float) -> bool:
        """Account for *count* newly announced prefixes.

        Enforces the max-prefix limit: returns True if the limit tripped
        and the session was closed (the ISP-A/ISP-B leak incident from
        Section I).
        """
        if not self.is_established:
            raise SessionError("prefixes on a session that is not up")
        self.prefix_count += count
        if (
            self.max_prefixes is not None
            and self.prefix_count > self.max_prefixes
        ):
            self.close(now, NotificationCode.MAX_PREFIX_EXCEEDED)
            return True
        return False

    def note_withdrawn(self, count: int) -> None:
        """Account for withdrawn prefixes."""
        self.prefix_count = max(0, self.prefix_count - count)

    def close(
        self,
        now: float,
        code: NotificationCode = NotificationCode.CEASE,
    ) -> None:
        """Tear the session down (notification sent or received)."""
        if self.state is SessionState.IDLE:
            return
        if self.state is SessionState.ESTABLISHED:
            self.flap_count += 1
        self._transition(now, SessionState.IDLE, code.value)
        self.prefix_count = 0

    def flap(self, down_at: float, up_at: float) -> None:
        """Convenience: close and immediately re-establish.

        The Figure 9 customer dropped and re-established its session about
        once a minute for 1.5 months; scenarios drive that with this call.
        """
        if up_at < down_at:
            raise SessionError("session cannot come up before it went down")
        self.close(down_at)
        self.establish_directly(up_at)

    def _transition(self, now: float, new_state: SessionState, reason: str) -> None:
        self.transitions.append(
            SessionTransition(now, self.state, new_state, reason)
        )
        self.state = new_state
