"""The BGP substrate: RIBs, route selection, policy, sessions, speakers.

This package implements enough of BGP-4 (RFC 4271) semantics to reproduce
the paper's case studies: per-peer Adj-RIB-In and a Loc-RIB, the full
decision process (including the MED comparison rules behind RFC 3345
persistent oscillation), a route-map policy engine, a session state machine
with hold timers and max-prefix limits, and a :class:`BGPRouter` speaker
that composes them and supports route reflection.
"""

from repro.bgp.errors import BGPError, PolicyError, SessionError
from repro.bgp.rib import AdjRibIn, LocRib, Route
from repro.bgp.decision import DecisionProcess, RouteSource
from repro.bgp.policy import (
    MatchCommunity,
    MatchNeighborAS,
    MatchPrefixList,
    Policy,
    PolicyAction,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.session import BGPSession, SessionState
from repro.bgp.router import BGPRouter, Neighbor

__all__ = [
    "BGPError",
    "PolicyError",
    "SessionError",
    "AdjRibIn",
    "LocRib",
    "Route",
    "DecisionProcess",
    "RouteSource",
    "Policy",
    "PolicyAction",
    "RouteMap",
    "RouteMapClause",
    "MatchCommunity",
    "MatchNeighborAS",
    "MatchPrefixList",
    "BGPSession",
    "SessionState",
    "BGPRouter",
    "Neighbor",
]
