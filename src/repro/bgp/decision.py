"""The BGP decision process (best-path selection).

Implements the standard elimination sequence: LOCAL_PREF, AS-path length,
ORIGIN, MED, EBGP-over-IBGP, IGP cost to the NEXT_HOP, then router-id and
peer-address tie-breaks.

MED needs care because it is only comparable between routes learned from
the *same neighboring AS*. That restriction breaks total ordering over a
mixed candidate set and is the root cause of the persistent route
oscillation of RFC 3345 that the paper's Figure 3 animates. We implement
both evaluation modes real routers offer:

* ``deterministic_med=True`` — group candidates by neighbor AS, eliminate
  MED-inferior routes inside each group, then compare group winners. This
  restores a deterministic outcome.
* ``deterministic_med=False`` (default) — a full pairwise elimination
  pass. Unlike the grouped mode it lets a MED-eliminated route's other
  qualities go unused, but it is still order-independent.
* ``sequential_med=True`` — the old-IOS algorithm: walk the candidates in
  arrival order keeping a running best, comparing each pair with MED
  applied only when comparable. This is genuinely **order-dependent**
  (see ``tests/bgp/test_decision.py::TestSequentialMed`` for a triple of
  routes whose winner changes with arrival order) and is the lack of
  total ordering behind RFC 3345's persistent oscillation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.bgp.rib import Route

#: Returns the IGP cost from this router to a nexthop address, or None if
#: the nexthop is unreachable (which disqualifies the route entirely).
IgpCostFn = Callable[[int], Optional[int]]

_INFINITE_COST = 1 << 62


@dataclass(frozen=True, slots=True)
class RouteSource:
    """A candidate route plus the session facts the decision process needs.

    *peer_router_id* and *peer_address* identify the speaker the route came
    from; *is_ebgp* is True when the session crosses an AS boundary.
    """

    route: Route
    is_ebgp: bool
    peer_router_id: int
    peer_address: int

    @property
    def neighbor_as(self) -> Optional[int]:
        return self.route.attributes.as_path.neighbor_as


@dataclass(slots=True)
class DecisionProcess:
    """Configurable best-path selection.

    *compare_med_always* corresponds to ``bgp always-compare-med``;
    *med_missing_as_worst* to ``bgp bestpath med missing-as-worst``.
    """

    compare_med_always: bool = False
    deterministic_med: bool = False
    sequential_med: bool = False
    med_missing_as_worst: bool = False
    igp_cost: IgpCostFn = field(default=lambda nexthop: 0)

    def select(
        self, candidates: Sequence[RouteSource]
    ) -> Optional[RouteSource]:
        """Pick the best route among *candidates*, or None if none usable.

        Candidates whose NEXT_HOP is unreachable by IGP are excluded, per
        RFC 4271 section 9.1.2.
        """
        usable = [c for c in candidates if self._nexthop_cost(c) is not None]
        if not usable:
            return None
        if len(usable) == 1:
            return usable[0]
        if self.sequential_med:
            return self._select_sequential(usable)
        if self.deterministic_med:
            usable = self._deterministic_med_survivors(usable)
        survivors = usable
        for stage in (
            self._by_local_pref,
            self._by_path_length,
            self._by_origin,
            self._by_med,
            self._by_ebgp,
            self._by_igp_cost,
        ):
            survivors = stage(survivors)
            if len(survivors) == 1:
                return survivors[0]
        return min(survivors, key=self._final_tiebreak_key)

    @staticmethod
    def _final_tiebreak_key(source: RouteSource) -> tuple[int, int, int]:
        """RFC 4456 §9 tie-break: lowest ORIGINATOR_ID (falling back to
        the peer's router id), then shortest CLUSTER_LIST, then lowest
        peer address.

        Using the originator rather than the advertising reflector is
        what keeps a reflector mesh stable: with the plain router-id rule
        two reflectors can each prefer the other's reflection of the same
        route and oscillate forever.
        """
        attrs = source.route.attributes
        originator = (
            attrs.originator_id
            if attrs.originator_id is not None
            else source.peer_router_id
        )
        return (originator, len(attrs.cluster_list), source.peer_address)

    def _select_sequential(
        self, candidates: list[RouteSource]
    ) -> RouteSource:
        """Old-IOS evaluation: running best in arrival order.

        Because MED only applies between same-neighbor-AS pairs, the
        pairwise relation is not transitive, and the running-best walk
        inherits that: the winner can depend on arrival order. Real
        routers walk their table newest-first, which is how two route
        reflectors end up disagreeing forever (RFC 3345).
        """
        best = candidates[0]
        for challenger in candidates[1:]:
            if self._pairwise_better(challenger, best):
                best = challenger
        return best

    def _pairwise_better(self, a: RouteSource, b: RouteSource) -> bool:
        """True if *a* beats *b* head to head."""
        ka = a.route.attributes
        kb = b.route.attributes
        if ka.local_pref != kb.local_pref:
            return ka.local_pref > kb.local_pref
        if len(ka.as_path) != len(kb.as_path):
            return len(ka.as_path) < len(kb.as_path)
        if ka.origin != kb.origin:
            return ka.origin < kb.origin
        if self._med_comparable(a, b) and self.med_of(a) != self.med_of(b):
            return self.med_of(a) < self.med_of(b)
        if a.is_ebgp != b.is_ebgp:
            return a.is_ebgp
        cost_a = self._nexthop_cost(a)
        cost_b = self._nexthop_cost(b)
        if cost_a != cost_b:
            return (cost_a if cost_a is not None else _INFINITE_COST) < (
                cost_b if cost_b is not None else _INFINITE_COST
            )
        return self._final_tiebreak_key(a) < self._final_tiebreak_key(b)

    def med_of(self, source: RouteSource) -> int:
        """The effective MED, applying the missing-MED convention."""
        med = source.route.attributes.med
        if med is None:
            return _INFINITE_COST if self.med_missing_as_worst else 0
        return med

    def _nexthop_cost(self, source: RouteSource) -> Optional[int]:
        return self.igp_cost(source.route.attributes.nexthop)

    @staticmethod
    def _by_local_pref(survivors: list[RouteSource]) -> list[RouteSource]:
        best = max(s.route.attributes.local_pref for s in survivors)
        return [s for s in survivors if s.route.attributes.local_pref == best]

    @staticmethod
    def _by_path_length(survivors: list[RouteSource]) -> list[RouteSource]:
        best = min(len(s.route.attributes.as_path) for s in survivors)
        return [s for s in survivors if len(s.route.attributes.as_path) == best]

    @staticmethod
    def _by_origin(survivors: list[RouteSource]) -> list[RouteSource]:
        best = min(s.route.attributes.origin for s in survivors)
        return [s for s in survivors if s.route.attributes.origin == best]

    def _by_med(self, survivors: list[RouteSource]) -> list[RouteSource]:
        """Pairwise MED elimination in list order.

        Route *a* eliminates *b* when both are MED-comparable (same
        neighbor AS, or ``always-compare-med``) and *a*'s MED is lower.
        This is intentionally order-dependent when ``deterministic_med``
        is off — see the module docstring.
        """
        eliminated = [False] * len(survivors)
        for i, a in enumerate(survivors):
            if eliminated[i]:
                continue
            for j, b in enumerate(survivors):
                if i == j or eliminated[j]:
                    continue
                if not self._med_comparable(a, b):
                    continue
                if self.med_of(a) < self.med_of(b):
                    eliminated[j] = True
        remaining = [
            s for s, gone in zip(survivors, eliminated) if not gone
        ]
        return remaining or survivors

    def _med_comparable(self, a: RouteSource, b: RouteSource) -> bool:
        if self.compare_med_always:
            return True
        return (
            a.neighbor_as is not None
            and a.neighbor_as == b.neighbor_as
        )

    def _deterministic_med_survivors(
        self, candidates: list[RouteSource]
    ) -> list[RouteSource]:
        """Keep only the MED-best candidate(s) within each neighbor AS."""
        groups: dict[Optional[int], list[RouteSource]] = {}
        for candidate in candidates:
            groups.setdefault(candidate.neighbor_as, []).append(candidate)
        survivors: list[RouteSource] = []
        for neighbor_as, group in groups.items():
            if neighbor_as is None:
                survivors.extend(group)
                continue
            best = min(self.med_of(c) for c in group)
            survivors.extend(c for c in group if self.med_of(c) == best)
        return survivors

    @staticmethod
    def _by_ebgp(survivors: list[RouteSource]) -> list[RouteSource]:
        ebgp = [s for s in survivors if s.is_ebgp]
        return ebgp or survivors

    def _by_igp_cost(self, survivors: list[RouteSource]) -> list[RouteSource]:
        costs = [self._nexthop_cost(s) for s in survivors]
        best = min(cost for cost in costs if cost is not None)
        return [
            s
            for s, cost in zip(survivors, costs)
            if cost == best
        ]
