"""Fault-injection testkit: break the data so the pipeline can't lie.

The analyses consume event streams from a passive monitor that, in
production, faces truncated MRT archives, malformed UPDATEs, session
resets and out-of-order feeds. This package manufactures those
conditions deterministically:

* :mod:`repro.testkit.faults` — composable, seeded fault injectors
  over byte streams (truncate, bit-flip), MRT record lists (corrupt /
  duplicate / drop / reorder / flip attribute bytes) and event streams
  (drop / duplicate / timestamp jitter / stall-then-burst), plus the
  fault registry behind the ``repro faults`` CLI.
* :mod:`repro.testkit.corpus` — the golden malformed-MRT fixture
  corpus: one clean archive plus one deterministic variant per fault
  class, regenerable bit-for-bit from a pinned seed.

Everything here takes an explicit ``seed`` — the ``repro lint`` rule
TK001 enforces that no entropy enters the testkit any other way, so the
chaos suite's failures always replay.
"""

from repro.testkit.faults import (
    FAULTS,
    Fault,
    apply_plan_to_bytes,
    apply_plan_to_stream,
    corrupt_file,
    fault_names,
    parse_fault_spec,
)
from repro.testkit.corpus import (
    GOLDEN_SEED,
    build_clean_records,
    corpus_manifest,
    generate_corpus,
)
from repro.testkit.crash import CrashPlan, InjectedCrash

__all__ = [
    "FAULTS",
    "CrashPlan",
    "Fault",
    "InjectedCrash",
    "apply_plan_to_bytes",
    "apply_plan_to_stream",
    "corrupt_file",
    "fault_names",
    "parse_fault_spec",
    "GOLDEN_SEED",
    "build_clean_records",
    "corpus_manifest",
    "generate_corpus",
]
