"""Seeded fault injectors over bytes, MRT records and event streams.

Three levels, matching where real feeds break:

* **bytes** — the archive file itself: truncated downloads
  (:func:`truncate_bytes`), storage corruption (:func:`flip_bytes`).
* **records** — the MRT framing layer: malformed payloads
  (:func:`corrupt_payloads`, :func:`flip_attribute_bytes`), repeated
  deliveries (:func:`duplicate_records`), partial feeds
  (:func:`drop_records`, :func:`truncate_records`), out-of-order
  archives (:func:`reorder_records`).
* **events** — the decoded stream: lossy/repeating collectors
  (:func:`drop_events`, :func:`duplicate_events`), timestamp skew
  (:func:`reorder_events`), a monitor that stalls then floods
  (:func:`stall_then_burst`).

Every injector takes an explicit ``seed`` and derives all entropy from
``random.Random(seed)`` — same seed, same corruption, bit for bit
(``repro lint`` rule TK001 enforces this). Injectors compose through
*plans*: ``[("flip-attrs", {"rate": 0.3}), ("drop-records", {})]``
applied via :func:`apply_plan_to_bytes` /
:func:`apply_plan_to_stream`, each step seeded from the master seed.
The same registry backs the ``repro faults`` CLI.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.collector.events import BGPEvent
from repro.collector.stream import EventStream
from repro.mrt.records import MRTRecord, read_records, write_records

#: Seeds derived for plan steps live below this bound.
_SEED_SPACE = 2**32

#: BGP4MP_MESSAGE_AS4 envelope (20 bytes) + BGP header (19) + the
#: withdrawn-routes length field (2): byte offsets at or past this point
#: in an update record's payload sit in the withdrawn/attribute/NLRI
#: region — flipping them corrupts route data rather than framing.
_ATTR_REGION_OFFSET = 41


# ----------------------------------------------------------------------
# Byte-level faults
# ----------------------------------------------------------------------


def truncate_bytes(
    data: bytes,
    *,
    keep_min: float = 0.3,
    keep_max: float = 0.9,
    seed: int,
) -> bytes:
    """Cut the tail off, as an interrupted archive download would.

    The cut point is drawn uniformly from ``[keep_min, keep_max]`` of
    the original length, so it usually lands mid-record and exercises
    the framing-error path, not just "fewer records".
    """
    if not 0.0 <= keep_min <= keep_max <= 1.0:
        raise ValueError("need 0 <= keep_min <= keep_max <= 1")
    rng = random.Random(seed)
    lo = int(len(data) * keep_min)
    hi = int(len(data) * keep_max)
    return data[: rng.randint(lo, hi)]


def flip_bytes(
    data: bytes,
    *,
    rate: float = 0.01,
    start: int = 0,
    seed: int,
) -> bytes:
    """XOR random bytes with random nonzero masks (storage rot).

    Each byte at or past *start* is corrupted independently with
    probability *rate*; the mask is never zero, so a selected byte
    always actually changes.
    """
    rng = random.Random(seed)
    corrupted = bytearray(data)
    for index in range(start, len(corrupted)):
        if rng.random() < rate:
            corrupted[index] ^= rng.randrange(1, 256)
    return bytes(corrupted)


# ----------------------------------------------------------------------
# Record-level faults
# ----------------------------------------------------------------------


def truncate_records(
    records: Sequence[MRTRecord],
    *,
    keep_min: float = 0.3,
    keep_max: float = 0.9,
    seed: int,
) -> list[MRTRecord]:
    """Keep a seeded-random prefix of the record list (clean cut)."""
    if not 0.0 <= keep_min <= keep_max <= 1.0:
        raise ValueError("need 0 <= keep_min <= keep_max <= 1")
    rng = random.Random(seed)
    lo = int(len(records) * keep_min)
    hi = int(len(records) * keep_max)
    return list(records[: rng.randint(lo, hi)])


def corrupt_payloads(
    records: Sequence[MRTRecord],
    *,
    rate: float = 0.2,
    byte_rate: float = 0.05,
    seed: int,
) -> list[MRTRecord]:
    """Flip bytes anywhere inside a fraction of record payloads.

    Each record is selected with probability *rate*; within a selected
    record every payload byte flips with probability *byte_rate*. The
    framing (headers, lengths) stays intact, so the file still reads as
    MRT — the damage surfaces at decode time.
    """
    rng = random.Random(seed)
    out: list[MRTRecord] = []
    for record in records:
        if record.payload and rng.random() < rate:
            payload = flip_bytes(
                record.payload,
                rate=byte_rate,
                seed=rng.randrange(_SEED_SPACE),
            )
            record = MRTRecord(
                timestamp=record.timestamp,
                type=record.type,
                subtype=record.subtype,
                payload=payload,
            )
        out.append(record)
    return out


def flip_attribute_bytes(
    records: Sequence[MRTRecord],
    *,
    rate: float = 0.2,
    flips: int = 2,
    seed: int,
) -> list[MRTRecord]:
    """Flip bytes in the attribute/NLRI region of BGP4MP updates.

    Targets offsets past the envelope and BGP header
    (:data:`_ATTR_REGION_OFFSET`), modeling a peer that emits malformed
    path attributes rather than a broken file: the MRT layer decodes
    fine and the damage lands in ``decode_update``. Records that are
    not updates, or too short to have an attribute region, pass through
    untouched.
    """
    rng = random.Random(seed)
    out: list[MRTRecord] = []
    for record in records:
        eligible = (
            record.is_bgp4mp_update
            and len(record.payload) > _ATTR_REGION_OFFSET
        )
        if eligible and rng.random() < rate:
            payload = bytearray(record.payload)
            for _ in range(flips):
                index = rng.randrange(_ATTR_REGION_OFFSET, len(payload))
                payload[index] ^= rng.randrange(1, 256)
            record = MRTRecord(
                timestamp=record.timestamp,
                type=record.type,
                subtype=record.subtype,
                payload=bytes(payload),
            )
        out.append(record)
    return out


def duplicate_records(
    records: Sequence[MRTRecord],
    *,
    rate: float = 0.1,
    seed: int,
) -> list[MRTRecord]:
    """Repeat a fraction of records in place (replayed deliveries)."""
    rng = random.Random(seed)
    out: list[MRTRecord] = []
    for record in records:
        out.append(record)
        if rng.random() < rate:
            out.append(record)
    return out


def drop_records(
    records: Sequence[MRTRecord],
    *,
    rate: float = 0.1,
    seed: int,
) -> list[MRTRecord]:
    """Silently lose a fraction of records (a lossy feed)."""
    rng = random.Random(seed)
    return [record for record in records if rng.random() >= rate]


def reorder_records(
    records: Sequence[MRTRecord],
    *,
    window: int = 4,
    seed: int,
) -> list[MRTRecord]:
    """Shuffle records within consecutive windows (bounded reordering).

    Models multi-threaded dump writers and merged feeds: records stray
    at most *window* positions from home, so the archive is locally
    scrambled but globally recognizable.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    rng = random.Random(seed)
    out: list[MRTRecord] = []
    for begin in range(0, len(records), window):
        chunk = list(records[begin : begin + window])
        rng.shuffle(chunk)
        out.extend(chunk)
    return out


# ----------------------------------------------------------------------
# Event-level faults
# ----------------------------------------------------------------------


def drop_events(
    stream: EventStream,
    *,
    rate: float = 0.1,
    seed: int,
) -> EventStream:
    """Lose a fraction of decoded events (collector-side loss)."""
    rng = random.Random(seed)
    return EventStream(
        event for event in stream if rng.random() >= rate
    )


def duplicate_events(
    stream: EventStream,
    *,
    rate: float = 0.1,
    seed: int,
) -> EventStream:
    """Repeat a fraction of events at their own timestamp."""
    rng = random.Random(seed)
    out: list[BGPEvent] = []
    for event in stream:
        out.append(event)
        if rng.random() < rate:
            out.append(event)
    return EventStream(out)


def reorder_events(
    stream: EventStream,
    *,
    rate: float = 0.3,
    max_shift: float = 5.0,
    seed: int,
) -> EventStream:
    """Jitter a fraction of event timestamps by up to ±*max_shift* s.

    Because :class:`EventStream` orders by timestamp, shifting
    timestamps is what genuinely reorders the analyzed stream — a
    shuffled append order alone would be re-sorted away.
    """
    rng = random.Random(seed)
    out: list[BGPEvent] = []
    for event in stream:
        if rng.random() < rate:
            shift = rng.uniform(-max_shift, max_shift)
            event = replace(event, timestamp=event.timestamp + shift)
        out.append(event)
    return EventStream(out)


def stall_then_burst(
    stream: EventStream,
    *,
    stall_start: float,
    stall_seconds: float,
    seed: int,
) -> EventStream:
    """A feed that stalls, then delivers the backlog in one burst.

    Events timestamped inside ``[stall_start, stall_start +
    stall_seconds)`` all arrive at the stall's end, in their original
    order (the stream's stable sort keeps equal timestamps in arrival
    order). *seed* is accepted for plan/registry uniformity; the skew
    itself is fully determined by the window.
    """
    if stall_seconds <= 0:
        raise ValueError("stall_seconds must be positive")
    stall_end = stall_start + stall_seconds
    out: list[BGPEvent] = []
    for event in stream:
        if stall_start <= event.timestamp < stall_end:
            event = replace(event, timestamp=stall_end)
        out.append(event)
    return EventStream(out)


# ----------------------------------------------------------------------
# Registry, plans, and file corruption (the CLI surface)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Fault:
    """One registered fault class."""

    name: str
    level: str  # "bytes" | "records" | "events"
    func: Callable[..., object]
    params: tuple[str, ...]
    summary: str


FAULTS: dict[str, Fault] = {
    fault.name: fault
    for fault in (
        Fault(
            "truncate-bytes", "bytes", truncate_bytes,
            ("keep_min", "keep_max"),
            "cut the file's tail mid-record (interrupted download)",
        ),
        Fault(
            "flip-bytes", "bytes", flip_bytes,
            ("rate", "start"),
            "XOR random bytes anywhere in the file (storage rot)",
        ),
        Fault(
            "truncate-records", "records", truncate_records,
            ("keep_min", "keep_max"),
            "keep only a prefix of the records (clean cut)",
        ),
        Fault(
            "corrupt-payloads", "records", corrupt_payloads,
            ("rate", "byte_rate"),
            "flip bytes inside record payloads, framing intact",
        ),
        Fault(
            "flip-attrs", "records", flip_attribute_bytes,
            ("rate", "flips"),
            "flip bytes in the attribute/NLRI region of updates",
        ),
        Fault(
            "duplicate-records", "records", duplicate_records,
            ("rate",),
            "repeat records in place (replayed deliveries)",
        ),
        Fault(
            "drop-records", "records", drop_records,
            ("rate",),
            "silently lose records (lossy feed)",
        ),
        Fault(
            "reorder-records", "records", reorder_records,
            ("window",),
            "shuffle records within bounded windows",
        ),
        Fault(
            "drop-events", "events", drop_events,
            ("rate",),
            "lose decoded events (collector-side loss)",
        ),
        Fault(
            "duplicate-events", "events", duplicate_events,
            ("rate",),
            "repeat decoded events at their own timestamp",
        ),
        Fault(
            "reorder-events", "events", reorder_events,
            ("rate", "max_shift"),
            "jitter event timestamps (out-of-order delivery)",
        ),
        Fault(
            "stall-burst", "events", stall_then_burst,
            ("stall_start", "stall_seconds"),
            "stall a time window, deliver its backlog in one burst",
        ),
    )
}

#: One plan step: a registry name plus keyword parameters.
FaultStep = tuple[str, Mapping[str, float | int]]


def fault_names(level: str | None = None) -> list[str]:
    """Registered fault names, optionally filtered by level, sorted."""
    return sorted(
        name
        for name, fault in FAULTS.items()
        if level is None or fault.level == level
    )


def parse_fault_spec(text: str) -> FaultStep:
    """Parse CLI fault syntax ``name[:key=value,key=value...]``.

    Values parse as int when possible, else float. Unknown names and
    parameters raise :class:`ValueError` with the valid choices.
    """
    name, _, params_text = text.partition(":")
    name = name.strip()
    if name not in FAULTS:
        raise ValueError(
            f"unknown fault {name!r}; choose from"
            f" {', '.join(fault_names())}"
        )
    fault = FAULTS[name]
    params: dict[str, float | int] = {}
    if params_text:
        for item in params_text.split(","):
            key, sep, value_text = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(f"bad fault parameter {item!r} (want k=v)")
            if key not in fault.params:
                raise ValueError(
                    f"fault {name!r} takes {', '.join(fault.params)};"
                    f" got {key!r}"
                )
            value_text = value_text.strip()
            try:
                params[key] = int(value_text)
            except ValueError:
                params[key] = float(value_text)
    return name, params


def _step_seeds(seed: int, count: int) -> list[int]:
    """Per-step seeds derived from the master *seed* (order-stable)."""
    master = random.Random(seed)
    return [master.randrange(_SEED_SPACE) for _ in range(count)]


def apply_plan_to_bytes(
    data: bytes, plan: Sequence[FaultStep], *, seed: int
) -> bytes:
    """Run a byte/record-level fault plan over an MRT archive's bytes.

    Steps apply in order; record-level steps parse the current bytes
    into records and re-frame them afterwards. Event-level faults do
    not belong here (use :func:`apply_plan_to_stream`).
    """
    for step_seed, (name, params) in zip(
        _step_seeds(seed, len(plan)), plan
    ):
        fault = FAULTS[name]
        if fault.level == "bytes":
            data = fault.func(data, seed=step_seed, **params)  # type: ignore[assignment]
        elif fault.level == "records":
            records = list(read_records(io.BytesIO(data)))
            mutated = fault.func(records, seed=step_seed, **params)
            buffer = io.BytesIO()
            write_records(mutated, buffer)  # type: ignore[arg-type]
            data = buffer.getvalue()
        else:
            raise ValueError(
                f"fault {name!r} operates on events, not files;"
                " apply it to an EventStream"
            )
    return data


def apply_plan_to_stream(
    stream: EventStream, plan: Sequence[FaultStep], *, seed: int
) -> EventStream:
    """Run an event-level fault plan over a decoded stream."""
    for step_seed, (name, params) in zip(
        _step_seeds(seed, len(plan)), plan
    ):
        fault = FAULTS[name]
        if fault.level != "events":
            raise ValueError(
                f"fault {name!r} operates on {fault.level}, not events;"
                " apply it with apply_plan_to_bytes"
            )
        stream = fault.func(stream, seed=step_seed, **params)  # type: ignore[assignment]
    return stream


def corrupt_file(
    source: str | Path,
    destination: str | Path,
    plan: Sequence[FaultStep],
    *,
    seed: int,
) -> dict[str, int]:
    """Apply a fault plan to *source* and write *destination*.

    Returns ``{"bytes_in": ..., "bytes_out": ...}`` for reporting.
    """
    data = Path(source).read_bytes()
    corrupted = apply_plan_to_bytes(data, plan, seed=seed)
    Path(destination).write_bytes(corrupted)
    return {"bytes_in": len(data), "bytes_out": len(corrupted)}
