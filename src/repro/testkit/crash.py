"""Deterministic crash injection for the streaming pipeline.

The chaos suite's job is to prove the monitor's resume contract: kill
it at an inconvenient moment, restart from the last checkpoint, and
demand output bit-identical to an uninterrupted run. Real kills are
not reproducible; :class:`CrashPlan` is — it fires after an exact
number of processed events, at the most hostile point the monitor
offers (work pumped, outputs not yet persisted or checkpointed).

:class:`InjectedCrash` deliberately subclasses :class:`BaseException`,
not :class:`Exception`: it models SIGKILL, and a pipeline that catches
it with a broad ``except Exception`` handler and carries on is exactly
the bug this kit exists to expose.
"""

from __future__ import annotations

from dataclasses import dataclass


class InjectedCrash(BaseException):
    """A simulated hard kill raised mid-run by a :class:`CrashPlan`."""


@dataclass(frozen=True)
class CrashPlan:
    """Crash once, after exactly *after_events* processed events.

    The count is of events processed *by the current run* — on a
    resumed run the clock starts again at zero, so a test can schedule
    a second crash into the recovery if it wants to.
    """

    after_events: int

    def __post_init__(self) -> None:
        if self.after_events < 1:
            raise ValueError(
                f"after_events must be >= 1, got {self.after_events}"
            )

    def due(self, events_processed: int) -> bool:
        return events_processed >= self.after_events

    def fire(self, events_processed: int) -> None:
        """Raise :class:`InjectedCrash` if the plan is due."""
        if self.due(events_processed):
            raise InjectedCrash(
                f"injected crash after {events_processed} events"
                f" (planned at {self.after_events})"
            )
