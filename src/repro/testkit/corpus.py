"""The golden malformed-MRT corpus: fixtures the hard way, regenerable.

Real malformed archives are awkward fixtures — huge, unlicensed, and
never covering the failure you need. This module manufactures a small
archive of well-formed updates (:func:`build_clean_records`) and then
derives one corrupted variant per fault class
(:func:`generate_corpus`), all from one pinned seed
(:data:`GOLDEN_SEED`): regeneration is bit-for-bit identical, which
:func:`corpus_manifest` (SHA-256 per file) lets tests and reviewers
check. Regenerate on disk with ``repro faults --make-corpus DIR``.
"""

from __future__ import annotations

import hashlib
import random
from pathlib import Path

from repro.mrt.bgp_codec import encode_update
from repro.mrt.records import (
    SUBTYPE_BGP4MP_MESSAGE_AS4,
    TYPE_BGP4MP,
    TYPE_BGP4MP_ET,
    Bgp4mpMessage,
    MRTRecord,
    encode_bgp4mp,
    write_records,
)
from repro.net.aspath import ASPath
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix
from repro.testkit.faults import (
    drop_records,
    duplicate_records,
    flip_attribute_bytes,
    corrupt_payloads,
    reorder_records,
    truncate_bytes,
)

#: The corpus seed: pinned so the golden fixtures are stable across
#: machines and sessions (the date the source paper was presented).
GOLDEN_SEED = 20050628

#: AFI field offset inside a BGP4MP_MESSAGE_AS4 payload (!IIHH).
_AFI_OFFSET = 10

#: BGP marker offset inside a BGP4MP_MESSAGE_AS4 payload (20-byte
#: envelope, then the 16-byte all-ones marker).
_MARKER_OFFSET = 20


def build_clean_records(
    *, seed: int = GOLDEN_SEED, n_updates: int = 60
) -> list[MRTRecord]:
    """A deterministic, fully-decodable BGP4MP updates archive.

    Strictly increasing timestamps (so reordering faults are
    detectable), a mix of plain and extended-timestamp records, and
    attribute bundles that exercise every codec branch — communities,
    MED, AS sets, originator/cluster — plus announce-then-withdraw
    lifecycles so withdrawal augmentation has something to augment.
    """
    rng = random.Random(seed)
    peers = [0x0A000001 + i for i in range(3)]
    nexthops = [0x0B000001 + i for i in range(4)]
    records: list[MRTRecord] = []
    announced: list[Prefix] = []
    for index in range(n_updates):
        timestamp = 1000.0 + 3.0 * index + (0.25 if index % 2 else 0.0)
        peer = peers[index % len(peers)]
        withdraw = announced and rng.random() < 0.25
        if withdraw:
            prefix = announced.pop(rng.randrange(len(announced)))
            update = BGPUpdate.withdraw([prefix])
        else:
            prefix = Prefix(0x0A000000 + (index % 40) * 256, 24)
            attrs = PathAttributes(
                nexthop=rng.choice(nexthops),
                as_path=ASPath(
                    [25, rng.randrange(100, 500), rng.randrange(500, 900)],
                    as_set=(
                        [rng.randrange(900, 950)]
                        if rng.random() < 0.2
                        else ()
                    ),
                ),
                origin=Origin.IGP if index % 3 else Origin.EGP,
                med=rng.randrange(0, 50) if rng.random() < 0.3 else None,
                communities=(
                    [Community(25, rng.randrange(1, 200))]
                    if rng.random() < 0.4
                    else ()
                ),
                originator_id=(
                    0x0C000001 if rng.random() < 0.15 else None
                ),
                cluster_list=(
                    (0x0D000001,) if rng.random() < 0.15 else ()
                ),
            )
            update = BGPUpdate.announce([prefix], attrs)
            if prefix not in announced:
                announced.append(prefix)
        envelope = Bgp4mpMessage(
            peer_as=25,
            local_as=64512,
            interface_index=0,
            peer_address=peer,
            local_address=0x0A0000FE,
            bgp_message=encode_update(update),
        )
        records.append(
            MRTRecord(
                timestamp=timestamp,
                type=TYPE_BGP4MP_ET if index % 2 else TYPE_BGP4MP,
                subtype=SUBTYPE_BGP4MP_MESSAGE_AS4,
                payload=encode_bgp4mp(envelope),
            )
        )
    return records


def _patch_payload_bytes(
    records: list[MRTRecord], offset: int, value: bytes, every: int
) -> list[MRTRecord]:
    """Overwrite payload bytes at *offset* in every *every*-th record."""
    out: list[MRTRecord] = []
    for index, record in enumerate(records):
        if index % every == 0 and len(record.payload) >= offset + len(value):
            payload = bytearray(record.payload)
            payload[offset : offset + len(value)] = value
            record = MRTRecord(
                timestamp=record.timestamp,
                type=record.type,
                subtype=record.subtype,
                payload=bytes(payload),
            )
        out.append(record)
    return out


def _to_bytes(records: list[MRTRecord]) -> bytes:
    import io

    buffer = io.BytesIO()
    write_records(records, buffer)
    return buffer.getvalue()


def generate_corpus(
    directory: str | Path, *, seed: int = GOLDEN_SEED
) -> dict[str, Path]:
    """Write the golden corpus into *directory*; returns name → path.

    One clean archive plus one member per fault class. Every member is
    a deterministic function of *seed*: regenerating with the same seed
    reproduces every file bit-for-bit (see :func:`corpus_manifest`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = random.Random(seed)
    records = build_clean_records(seed=rng.randrange(2**32))
    clean = _to_bytes(records)

    members: dict[str, bytes] = {
        "clean": clean,
        "truncated-tail": truncate_bytes(
            clean, keep_min=0.4, keep_max=0.7, seed=rng.randrange(2**32)
        ),
        "truncated-header": clean[:8],
        "flipped-attrs": _to_bytes(
            flip_attribute_bytes(
                records, rate=0.5, flips=3, seed=rng.randrange(2**32)
            )
        ),
        "corrupt-payloads": _to_bytes(
            corrupt_payloads(
                records, rate=0.4, byte_rate=0.08,
                seed=rng.randrange(2**32),
            )
        ),
        "duplicated": _to_bytes(
            duplicate_records(records, rate=0.3, seed=rng.randrange(2**32))
        ),
        "dropped": _to_bytes(
            drop_records(records, rate=0.3, seed=rng.randrange(2**32))
        ),
        "reordered": _to_bytes(
            reorder_records(records, window=5, seed=rng.randrange(2**32))
        ),
        "bad-marker": _to_bytes(
            _patch_payload_bytes(
                records, _MARKER_OFFSET, b"\x00" * 4, every=4
            )
        ),
        "bad-afi": _to_bytes(
            _patch_payload_bytes(
                records, _AFI_OFFSET, b"\x00\x06", every=3
            )
        ),
    }
    paths: dict[str, Path] = {}
    for name in sorted(members):
        path = directory / f"{name}.mrt"
        path.write_bytes(members[name])
        paths[name] = path
    return paths


def corpus_manifest(directory: str | Path) -> dict[str, str]:
    """SHA-256 of every ``.mrt`` file in *directory*, keyed by name.

    Two corpus generations from the same seed must produce identical
    manifests — the determinism check the testkit holds itself to.
    """
    directory = Path(directory)
    manifest: dict[str, str] = {}
    for path in sorted(directory.glob("*.mrt")):
        manifest[path.stem] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return manifest
