"""A discrete-event simulator for BGP networks.

This package provides the testbed the paper had for real: networks of
:class:`repro.bgp.BGPRouter` speakers exchanging messages over links with
delay, observed by a passive :class:`repro.collector.RouteExplorer`. Two
workload builders reproduce the paper's vantage points — U.C. Berkeley
(four BGP edge routers behind CalREN) and "ISP-Anon" (a Tier-1 with a
route-reflector core). The case-study anomaly injectors live in
:mod:`repro.scenarios` (the labeled scenario library);
:mod:`repro.simulator.scenarios` remains as a back-compat shim.
"""

from repro.simulator.engine import Engine
from repro.simulator.network import Network
from repro.simulator.workloads import (
    BerkeleySite,
    IspAnonSite,
    build_berkeley,
    build_isp_anon,
)

__all__ = [
    "Engine",
    "Network",
    "BerkeleySite",
    "IspAnonSite",
    "build_berkeley",
    "build_isp_anon",
]
