"""Workload builders: the paper's two vantage points.

:class:`BerkeleySite` reproduces the U.C. Berkeley deployment of Section
II: four BGP edge routers behind CalREN (AS 11423), with the commodity
Internet arriving through QWest (AS 209), Internet2 through Abilene, and
CENIC regional routes — including the community tags (11423:65350 for ISP
routes, 11423:65300 otherwise) that Berkeley's rate-limiting policies key
on. Edge router policies are built from actual configuration text and
compiled through :mod:`repro.config`, so the case-study incidents emerge
from genuine route-map mechanics.

:class:`IspAnonSite` reproduces the Tier-1 deployment: a route-reflector
core observed by REX, fed by injected access routers, with hundreds of
neighbor ASes.

Both builders are scale-parameterized: unit tests run at a few hundred
prefixes, benchmarks at the published scale (12,600 prefixes for
Berkeley; 200k prefixes / 1.5M routes for ISP-Anon).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collector.rex import RouteExplorer
from repro.config.compiler import compile_config
from repro.config.parser import parse_config
from repro.net.aspath import ASPath
from repro.net.attributes import Community, PathAttributes
from repro.collector.stream import EventStream
from repro.net.message import Announcement, BGPUpdate
from repro.net.prefix import Prefix, cidr_cover, parse_address
from repro.simulator.network import Network

# ----------------------------------------------------------------------
# Berkeley constants (Section II / IV)
# ----------------------------------------------------------------------

AS_BERKELEY = 25
AS_CALREN = 11423
AS_CALREN2 = 11422  # secondary CalREN AS, pre-consolidation
AS_QWEST = 209
AS_ABILENE = 11537
AS_CENIC = 2152
AS_LOS_NETTOS = 226
AS_KDDI = 2516
AS_ATT = 7018
AS_LEVEL3 = 3356

#: The 6-AS-hop leaked path of Figure 7: Packet Clearing House, Alpha NAP,
#: San Diego Supercomputing Center, CENIC, then Level3.
LEAK_PATH_ASES = (AS_CALREN, AS_CALREN2, 10927, 1909, 195, AS_CENIC, AS_LEVEL3)

#: Tier-1 transit providers seen beyond QWest in Berkeley's table.
TIER1_POOL = (701, 1239, 3561, 7018, 2914, 3356, 6461, 1299)

COMM_ISP = Community(AS_CALREN, 65350)  # commodity Internet routes
COMM_OTHER = Community(AS_CALREN, 65300)  # Internet2 / CalREN members
COMM_CENIC_LAAP = Community(AS_CENIC, 65297)  # Figure 6's mis-tagged value

EDGE_13 = "128.32.1.3"
EDGE_200 = "128.32.1.200"
EDGE_222 = "128.32.1.222"
RL_66 = "128.32.0.66"  # rate limiter nexthop A (edge 1.3)
RL_70 = "128.32.0.70"  # rate limiter nexthop B (edge 1.3)
NH_90 = "128.32.0.90"  # non-rate-limited nexthop (edge 1.200)
NH_BACKDOOR = "169.229.0.157"  # Figure 5 backdoor nexthop (edge 1.222)
CALREN_FEED_13 = "128.32.0.1"  # injected CalREN peer toward 1.3
CALREN_FEED_200 = "128.32.0.2"  # injected CalREN peer toward 1.200
ATT_FEED_222 = "169.229.0.1"  # injected AT&T backdoor peer toward 1.222
REX_ADDRESS = "128.32.255.1"

#: Fractions of the advertised prefix space, chosen to reproduce the
#: published picture: rate limiter .66 carries 78% and .70 carries 5%
#: (the Section IV-A misconfiguration; the intent was an even split of
#: the commodity space), Abilene ~6%, CENIC regional routes the rest.
FRACTION_COMMODITY_66 = 0.78
FRACTION_COMMODITY_70 = 0.05
FRACTION_INTERNET2 = 0.06
FRACTION_CENIC = 0.11
#: Within the CENIC/LAAP-tagged routes, the Figure 6 mis-tag split.
FRACTION_LAAP_LOS_NETTOS = 0.32  # correctly tagged
# remaining 68% arrive from KDDI, incorrectly carrying the LAAP tag


@dataclass(slots=True)
class RouteFamily:
    """A group of prefixes sharing one attribute bundle from the feed.

    Families keep full-table injection cheap (one UPDATE per family) and
    give scenarios stable handles ("the commodity routes on the lower
    half") to manipulate.
    """

    name: str
    klass: str  # commodity-66 | commodity-70 | internet2 | cenic-ln | cenic-kddi
    prefixes: list[Prefix]
    as_path: ASPath
    communities: frozenset[Community]

    def announcement(self, nexthop: int) -> BGPUpdate:
        attrs = PathAttributes(
            nexthop=nexthop,
            as_path=self.as_path,
            communities=self.communities,
        )
        return BGPUpdate.announce(self.prefixes, attrs)

    def withdrawal(self) -> BGPUpdate:
        return BGPUpdate.withdraw(self.prefixes)


def _family_partition(total: int) -> dict[str, int]:
    """Prefix counts per class, honouring the published fractions."""
    n66 = round(total * FRACTION_COMMODITY_66)
    n70 = round(total * FRACTION_COMMODITY_70)
    n_i2 = round(total * FRACTION_INTERNET2)
    n_cenic = total - n66 - n70 - n_i2
    n_ln = round(n_cenic * FRACTION_LAAP_LOS_NETTOS)
    return {
        "commodity-66": n66,
        "commodity-70": n70,
        "internet2": n_i2,
        "cenic-ln": n_ln,
        "cenic-kddi": n_cenic - n_ln,
    }


#: Base of the synthetic prefix universe. Successive /24s from here.
PREFIX_UNIVERSE_BASE = parse_address("64.0.0.0")


def synthetic_prefixes(count: int, offset: int = 0) -> list[Prefix]:
    """Deterministic /24s: the i-th prefix of the universe."""
    return [
        Prefix(PREFIX_UNIVERSE_BASE + (offset + i) * 256, 24)
        for i in range(count)
    ]


class BerkeleySite:
    """The Berkeley vantage point, ready for scenarios.

    After construction the site is converged: the full table has been
    injected from CalREN and propagated to REX. ``site.rex.events``
    contains the initial announcements; scenarios usually snapshot or
    clear it before injecting their incident.
    """

    def __init__(self, n_prefixes: int = 1200) -> None:
        if n_prefixes < 100:
            raise ValueError("Berkeley workload needs at least 100 prefixes")
        self.n_prefixes = n_prefixes
        self.network = Network()
        self.rex = RouteExplorer("berkeley-rex")
        self.families = self._build_families(n_prefixes)
        self._build_routers()
        self.announce_full_table()

    # ------------------------------------------------------------------
    # Universe
    # ------------------------------------------------------------------

    @staticmethod
    def _build_families(total: int) -> list[RouteFamily]:
        counts = _family_partition(total)
        families: list[RouteFamily] = []
        offset = 0
        # Commodity prefixes occupy one contiguous run so the edge
        # router's "split the space in half" prefix-lists can cover them
        # with CIDR ranges, exactly like Berkeley's misconfigured split.
        for klass in ("commodity-66", "commodity-70"):
            count = counts[klass]
            per_tier1 = max(1, count // len(TIER1_POOL))
            taken = 0
            for slot, tier1 in enumerate(TIER1_POOL):
                size = min(per_tier1, count - taken)
                if slot == len(TIER1_POOL) - 1:
                    size = count - taken
                if size <= 0:
                    break
                origin = 20000 + slot + (0 if klass == "commodity-66" else 50)
                families.append(
                    RouteFamily(
                        name=f"{klass}-via-{tier1}",
                        klass=klass,
                        prefixes=synthetic_prefixes(size, offset),
                        as_path=ASPath((AS_CALREN, AS_QWEST, tier1, origin)),
                        communities=frozenset({COMM_ISP}),
                    )
                )
                offset += size
                taken += size
        # Internet2: via CalREN's research AS to Abilene.
        families.append(
            RouteFamily(
                name="internet2",
                klass="internet2",
                prefixes=synthetic_prefixes(counts["internet2"], offset),
                as_path=ASPath((AS_CALREN, AS_CALREN2, AS_ABILENE, 30001)),
                communities=frozenset({COMM_OTHER}),
            )
        )
        offset += counts["internet2"]
        # CENIC regional routes carrying the LAAP community: a correctly
        # tagged Los Nettos portion and the mis-tagged KDDI portion.
        families.append(
            RouteFamily(
                name="cenic-los-nettos",
                klass="cenic-ln",
                prefixes=synthetic_prefixes(counts["cenic-ln"], offset),
                as_path=ASPath((AS_CALREN, AS_CENIC, AS_LOS_NETTOS, 30002)),
                communities=frozenset({COMM_OTHER, COMM_CENIC_LAAP}),
            )
        )
        offset += counts["cenic-ln"]
        families.append(
            RouteFamily(
                name="cenic-kddi",
                klass="cenic-kddi",
                prefixes=synthetic_prefixes(counts["cenic-kddi"], offset),
                as_path=ASPath((AS_CALREN, AS_CENIC, AS_KDDI, 30003)),
                communities=frozenset({COMM_OTHER, COMM_CENIC_LAAP}),
            )
        )
        return families

    # ------------------------------------------------------------------
    # Routers and policy
    # ------------------------------------------------------------------

    def _commodity_boundary(self) -> int:
        """First address *after* the .66 share of the commodity run."""
        count66 = sum(
            len(f.prefixes) for f in self.families if f.klass == "commodity-66"
        )
        return PREFIX_UNIVERSE_BASE + count66 * 256

    def _commodity_end(self) -> int:
        count = sum(
            len(f.prefixes)
            for f in self.families
            if f.klass in ("commodity-66", "commodity-70")
        )
        return PREFIX_UNIVERSE_BASE + count * 256

    def _edge13_config(self) -> str:
        lower = cidr_cover(PREFIX_UNIVERSE_BASE, self._commodity_boundary())
        lower_lines = "\n".join(
            f"ip prefix-list LOWER-HALF seq {5 * (i + 1)} permit {p} le 32"
            for i, p in enumerate(lower)
        )
        return f"""\
hostname edge-1-3
ip community-list standard ISP-ROUTES permit {COMM_ISP}
{lower_lines}
route-map FROM-CALREN permit 10
 match community ISP-ROUTES
 match ip address prefix-list LOWER-HALF
 set local-preference 80
 set ip next-hop {RL_66}
route-map FROM-CALREN permit 20
 match community ISP-ROUTES
 set local-preference 80
 set ip next-hop {RL_70}
router bgp {AS_BERKELEY}
 bgp router-id {EDGE_13}
 neighbor {CALREN_FEED_13} remote-as {AS_CALREN}
 neighbor {CALREN_FEED_13} route-map FROM-CALREN in
"""

    def _edge200_config(self) -> str:
        return f"""\
hostname edge-1-200
ip community-list standard ISP-ROUTES permit {COMM_ISP}
route-map FROM-CALREN permit 10
 match community ISP-ROUTES
 set local-preference 70
 set ip next-hop {NH_90}
route-map FROM-CALREN permit 20
 set local-preference 100
 set ip next-hop {NH_90}
router bgp {AS_BERKELEY}
 bgp router-id {EDGE_200}
 neighbor {CALREN_FEED_200} remote-as {AS_CALREN}
 neighbor {CALREN_FEED_200} route-map FROM-CALREN in
"""

    def _build_routers(self) -> None:
        net = self.network
        edge13_cfg = compile_config(parse_config(self._edge13_config()))
        edge200_cfg = compile_config(parse_config(self._edge200_config()))
        self.edge13 = net.add_router("edge-1-3", AS_BERKELEY, parse_address(EDGE_13))
        self.edge200 = net.add_router(
            "edge-1-200", AS_BERKELEY, parse_address(EDGE_200)
        )
        self.edge222 = net.add_router(
            "edge-1-222", AS_BERKELEY, parse_address(EDGE_222)
        )
        # IBGP mesh between the edges.
        net.connect(self.edge13, self.edge200)
        net.connect(self.edge13, self.edge222)
        net.connect(self.edge200, self.edge222)
        # Injected CalREN feeds, with compiled import policy.
        net.add_external_peer(
            self.edge13,
            parse_address(CALREN_FEED_13),
            AS_CALREN,
            policy=edge13_cfg.neighbor(CALREN_FEED_13).policy,
            name="calren-feed-13",
        )
        net.add_external_peer(
            self.edge200,
            parse_address(CALREN_FEED_200),
            AS_CALREN,
            policy=edge200_cfg.neighbor(CALREN_FEED_200).policy,
            name="calren-feed-200",
        )
        # The Figure 5 backdoor: an unfiltered AT&T peering on edge .222,
        # nexthop rewritten to the backdoor address.
        net.add_external_peer(
            self.edge222,
            parse_address(ATT_FEED_222),
            AS_ATT,
            name="att-backdoor",
        )
        # REX passively peers with every edge.
        rex_addr = parse_address(REX_ADDRESS)
        for edge in (self.edge13, self.edge200, self.edge222):
            net.attach_collector(self.rex, edge, rex_addr)

    # ------------------------------------------------------------------
    # Full-table injection
    # ------------------------------------------------------------------

    def announce_full_table(self) -> None:
        """Inject every family from CalREN into both fed edges; converge."""
        feed13 = parse_address(CALREN_FEED_13)
        feed200 = parse_address(CALREN_FEED_200)
        for family in self.families:
            self.network.inject(
                self.edge13, feed13, family.announcement(feed13)
            )
            self.network.inject(
                self.edge200, feed200, family.announcement(feed200)
            )
        self.network.run()

    def family(self, name: str) -> RouteFamily:
        for family in self.families:
            if family.name == name:
                return family
        raise KeyError(f"no route family named {name}")

    def families_of(self, klass: str) -> list[RouteFamily]:
        return [f for f in self.families if f.klass == klass]

    def commodity_prefixes(self) -> list[Prefix]:
        prefixes: list[Prefix] = []
        for family in self.families:
            if family.klass.startswith("commodity"):
                prefixes.extend(family.prefixes)
        return prefixes


def build_berkeley(n_prefixes: int = 1200) -> BerkeleySite:
    """Convenience constructor used by examples and benchmarks."""
    return BerkeleySite(n_prefixes)


# ----------------------------------------------------------------------
# ISP-Anon constants (Section II / IV-E,F)
# ----------------------------------------------------------------------

AS_ISP = 7000  # anonymized Tier-1
AS_CUSTOMER = 65001  # the Figure 9 flapping customer
AS_NAP = 65002  # exchange fabric the customer's backup traverses
TIER1_PEERS = (1, 2, 3, 4, 5)  # anonymized Tier-1 peer ASes ("AS1", "AS2", …)

#: The Figure 3 oscillating prefix.
MED_PREFIX = Prefix.parse("4.5.0.0/16")

ISP_REX_ADDRESS = parse_address("10.255.255.1")


def _rr_address(index: int) -> int:
    """Address of core route reflector *index* (10.0.X.1)."""
    return parse_address("10.0.0.1") + (index << 8)


def _access_address(index: int) -> int:
    """Address of the injected access router feeding RR *index*."""
    return parse_address("10.100.0.1") + (index << 8)


@dataclass(slots=True)
class IspFeedFamily:
    """A group of prefixes fed into one RR from its access router."""

    name: str
    rr_index: int
    prefixes: list[Prefix]
    as_path: ASPath
    med: int | None = None
    local_pref: int = 100


class IspAnonSite:
    """The Tier-1 vantage point: a route-reflector core observed by REX.

    *n_reflectors* defaults to 8 for tests; the paper's deployment had 67.
    *n_prefixes* is the table size fed across the core. Reflectors form a
    full IBGP mesh (standard for a reflector backbone) and each also
    serves one injected access-router client, through which workload
    routes arrive.
    """

    def __init__(
        self,
        n_reflectors: int = 8,
        n_prefixes: int = 2000,
        neighbor_as_count: int = 850,
    ) -> None:
        if n_reflectors < 2:
            raise ValueError("need at least two route reflectors")
        self.n_reflectors = n_reflectors
        self.n_prefixes = n_prefixes
        self.neighbor_as_count = neighbor_as_count
        self.network = Network()
        self.rex = RouteExplorer("isp-rex")
        self.reflectors: list = []
        self._build_core()
        self.feed_families = self._build_feed(n_prefixes, neighbor_as_count)
        self.announce_full_table()

    def _build_core(self) -> None:
        net = self.network
        for index in range(self.n_reflectors):
            router = net.add_router(
                f"rr-{index:02d}",
                AS_ISP,
                _rr_address(index),
                route_reflector=True,
            )
            self.reflectors.append(router)
        # Full mesh between reflectors (non-client IBGP).
        for i, a in enumerate(self.reflectors):
            for b in self.reflectors[i + 1 :]:
                net.connect(a, b)
        # One injected access-router client per reflector.
        for index, router in enumerate(self.reflectors):
            net.add_external_peer(
                router,
                _access_address(index),
                AS_ISP,
                is_rr_client=True,
                name=f"access-{index:02d}",
            )
        # REX peers with the full reflector mesh.
        for router in self.reflectors:
            net.attach_collector(self.rex, router, ISP_REX_ADDRESS)

    def _build_feed(
        self, total: int, neighbor_as_count: int
    ) -> list[IspFeedFamily]:
        """Spread *total* prefixes across reflectors and neighbor ASes.

        Every family is fed to exactly one reflector's access router; the
        reflector mesh spreads it core-wide, so REX sees roughly
        ``n_reflectors`` routes per prefix — how 200k prefixes become
        1.5M routes in the paper's inventory.
        """
        families: list[IspFeedFamily] = []
        family_count = max(1, min(neighbor_as_count, total // 4))
        base = total // family_count
        remainder = total - base * family_count
        offset = 0
        for slot in range(family_count):
            size = base + (1 if slot < remainder else 0)
            if size == 0:
                continue
            neighbor_as = 100 + (slot % neighbor_as_count)
            origin_as = 40000 + slot
            rr_index = slot % self.n_reflectors
            families.append(
                IspFeedFamily(
                    name=f"feed-{slot:04d}",
                    rr_index=rr_index,
                    prefixes=synthetic_prefixes(size, offset),
                    as_path=ASPath((neighbor_as, origin_as)),
                )
            )
            offset += size
        return families

    def announce_full_table(self) -> None:
        for family in self.feed_families:
            self.inject_from_access(
                family.rr_index,
                BGPUpdate.announce(
                    family.prefixes,
                    PathAttributes(
                        nexthop=_access_address(family.rr_index),
                        as_path=family.as_path,
                        med=family.med,
                        local_pref=family.local_pref,
                    ),
                ),
            )
        self.network.run()

    def inject_from_access(
        self, rr_index: int, update: BGPUpdate, at: float | None = None
    ) -> None:
        """Deliver a crafted update from RR *rr_index*'s access router."""
        self.network.inject(
            self.reflectors[rr_index],
            _access_address(rr_index),
            update,
            at=at,
        )

    def access_address(self, rr_index: int) -> int:
        return _access_address(rr_index)


def build_isp_anon(
    n_reflectors: int = 8, n_prefixes: int = 2000
) -> IspAnonSite:
    """Convenience constructor used by examples and benchmarks."""
    return IspAnonSite(n_reflectors=n_reflectors, n_prefixes=n_prefixes)


# ----------------------------------------------------------------------
# EBGP vantage (RouteViews style)
# ----------------------------------------------------------------------

#: Vantage peers' own ASes (RouteViews-style multi-AS view).
EBGP_VANTAGE_ASES = (7018, 3356, 1239, 701, 2914, 3561, 6461, 1299)

_EBGP_PEER_BASE = parse_address("192.168.100.1")


class EbgpVantage:
    """A RouteViews-style EBGP vantage point.

    Section II notes the algorithms "are general and designed to apply
    to EBGP as well": most published BGP studies use multi-AS feeds from
    public collectors. This builder EBGP-peers the collector with one
    router in each of several Tier-1 ASes; every peer announces its own
    view of the same prefix universe (its own AS first on the path), so
    TAMP pictures and Stemming components span administrative domains.
    """

    def __init__(
        self,
        n_peers: int = 8,
        n_prefixes: int = 2000,
        mean_path_length: int = 3,
    ) -> None:
        if not 1 <= n_peers <= len(EBGP_VANTAGE_ASES):
            raise ValueError(
                f"n_peers must be 1..{len(EBGP_VANTAGE_ASES)}"
            )
        self.n_peers = n_peers
        self.n_prefixes = n_prefixes
        self.rex = RouteExplorer("ebgp-vantage")
        self.peer_ases = EBGP_VANTAGE_ASES[:n_peers]
        self.prefixes = synthetic_prefixes(n_prefixes)
        self._populate(mean_path_length)

    @staticmethod
    def peer_address(index: int) -> int:
        return _EBGP_PEER_BASE + index

    def _populate(self, mean_path_length: int) -> None:
        for index, asn in enumerate(self.peer_ases):
            peer = self.peer_address(index)
            announcements = []
            for slot, prefix in enumerate(self.prefixes):
                origin = 40000 + (slot % 500)
                # The transit AS depends on the prefix only: every
                # vantage reaches a destination through the same transit
                # network, as multi-vantage data really looks when a
                # destination is single-homed behind one provider.
                middle = 200 + (slot % 97)
                path = [asn] + [middle] * max(0, mean_path_length - 2) + [origin]
                announcements.append(
                    (prefix, PathAttributes(nexthop=peer, as_path=ASPath(path)))
                )
            update = BGPUpdate(
                announcements=tuple(
                    Announcement(p, a) for p, a in announcements
                )
            )
            self.rex.observe(peer, update, now=0.0)

    def withdraw_via(self, transit_as: int, now: float) -> EventStream:
        """Every peer withdraws its routes traversing *transit_as*.

        Models a failure inside one transit network, observed from every
        vantage AS simultaneously — the cross-domain correlation case.
        Returns the events produced.
        """
        produced = []
        for index in range(self.n_peers):
            peer = self.peer_address(index)
            doomed = [
                route.prefix
                for route in self.rex.rib(peer).routes()
                if transit_as in route.attributes.as_path
            ]
            if doomed:
                produced.extend(
                    self.rex.observe(peer, BGPUpdate.withdraw(doomed), now)
                )
        return EventStream(produced)
