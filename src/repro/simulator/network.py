"""A simulated network of BGP speakers under one engine.

:class:`Network` owns the routers, the links between them (with delay),
the passive collector attachments, and the plumbing that turns a router's
"updates to send" into scheduled deliveries. It also supports *feed
injection*: crafting UPDATE messages that appear to come from an external
peer (the Internet beyond the site's border), which is how workloads
replay Internet-scale routing into a site without simulating the whole
Internet.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bgp.policy import Policy
from repro.bgp.router import BGPRouter
from repro.collector.rex import RouteExplorer
from repro.net.message import BGPUpdate
from repro.simulator.engine import Engine

DEFAULT_LINK_DELAY = 0.01


class Network:
    """Routers + links + collectors, driven by a shared engine."""

    def __init__(self, engine: Optional[Engine] = None) -> None:
        self.engine = engine if engine is not None else Engine()
        self.routers: dict[int, BGPRouter] = {}
        self.by_name: dict[str, BGPRouter] = {}
        self._delays: dict[tuple[int, int], float] = {}
        self._collectors: dict[int, RouteExplorer] = {}
        self._external_peers: dict[int, str] = {}
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_router(
        self,
        name: str,
        asn: int,
        address: int,
        **kwargs,
    ) -> BGPRouter:
        if name in self.by_name:
            raise ValueError(f"duplicate router name {name}")
        if address in self.routers:
            raise ValueError(f"duplicate router address {address:#x}")
        router = BGPRouter(
            name=name,
            asn=asn,
            router_id=len(self.routers) + 1,
            address=address,
            **kwargs,
        )
        self.routers[address] = router
        self.by_name[name] = router
        return router

    def router(self, name: str) -> BGPRouter:
        try:
            return self.by_name[name]
        except KeyError:
            raise KeyError(f"no router named {name}") from None

    def connect(
        self,
        a: BGPRouter,
        b: BGPRouter,
        a_policy: Optional[Policy] = None,
        b_policy: Optional[Policy] = None,
        a_sees_client: bool = False,
        b_sees_client: bool = False,
        a_nexthop_self: bool = False,
        b_nexthop_self: bool = False,
        a_max_prefixes: Optional[int] = None,
        b_max_prefixes: Optional[int] = None,
        delay: float = DEFAULT_LINK_DELAY,
        established: bool = True,
    ) -> None:
        """Create the peering a↔b; bring the session up unless told not to."""
        a.add_neighbor(
            b.address, b.asn, b.router_id, policy=a_policy,
            is_rr_client=a_sees_client, nexthop_self=a_nexthop_self,
            max_prefixes=a_max_prefixes,
        )
        b.add_neighbor(
            a.address, a.asn, a.router_id, policy=b_policy,
            is_rr_client=b_sees_client, nexthop_self=b_nexthop_self,
            max_prefixes=b_max_prefixes,
        )
        self._delays[(a.address, b.address)] = delay
        self._delays[(b.address, a.address)] = delay
        if established:
            out_a = a.session_up(b.address, self.engine.now)
            out_b = b.session_up(a.address, self.engine.now)
            self.dispatch(a, out_a)
            self.dispatch(b, out_b)

    def add_external_peer(
        self,
        router: BGPRouter,
        address: int,
        asn: int,
        policy: Optional[Policy] = None,
        max_prefixes: Optional[int] = None,
        is_rr_client: bool = False,
        name: str = "",
    ) -> None:
        """Register an *injected* peer: a border neighbor whose messages
        are scripted by the workload rather than produced by a simulated
        router. The session starts established. With *is_rr_client* the
        peer plays an IBGP access router hanging off a route reflector."""
        router.add_neighbor(
            address,
            asn,
            router_id=address,
            policy=policy,
            max_prefixes=max_prefixes,
            is_rr_client=is_rr_client,
        )
        router.neighbor(address).session.establish_directly(self.engine.now)
        self._external_peers[address] = name or f"external-{address:#x}"

    # ------------------------------------------------------------------
    # Collector attachment
    # ------------------------------------------------------------------

    def attach_collector(
        self,
        rex: RouteExplorer,
        router: BGPRouter,
        rex_address: int,
        as_rr_client: bool = True,
        delay: float = DEFAULT_LINK_DELAY,
    ) -> None:
        """Passively IBGP-peer *rex* with *router*.

        The router is given an IBGP neighbor for REX (flagged as a
        reflection client so route reflectors relay their IBGP-learned
        routes, matching how REX peers with an ISP's core). Deliveries to
        the REX address are turned into ``rex.observe`` calls instead of
        router message processing.
        """
        if rex_address in self.routers:
            raise ValueError("collector address collides with a router")
        router.add_neighbor(
            rex_address,
            router.asn,
            router_id=rex_address,
            is_rr_client=as_rr_client,
        )
        rex.peer_with(router.address)
        self._collectors[rex_address] = rex
        self._delays[(router.address, rex_address)] = delay
        out = router.session_up(rex_address, self.engine.now)
        self.dispatch(router, out)

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------

    def inject(
        self,
        router: BGPRouter,
        from_address: int,
        update: BGPUpdate,
        at: Optional[float] = None,
    ) -> None:
        """Schedule delivery of a crafted *update* to *router* as if sent
        by the external peer at *from_address*."""
        when = at if at is not None else self.engine.now
        self.engine.schedule_at(
            when, lambda: self._deliver(from_address, router.address, update)
        )

    def originate(
        self,
        router: BGPRouter,
        prefixes,
        at: Optional[float] = None,
        **kwargs,
    ) -> None:
        """Schedule local origination of *prefixes* at *router*."""
        when = at if at is not None else self.engine.now

        def fire() -> None:
            for prefix in prefixes:
                out = router.originate(prefix, now=self.engine.now, **kwargs)
                self.dispatch(router, out)

        self.engine.schedule_at(when, fire)

    def fail_session(
        self, a: BGPRouter, b_address: int, at: Optional[float] = None
    ) -> None:
        """Schedule an administrative session teardown of a↔b.

        Both sides drop their state; withdrawals propagate from each.
        """
        when = at if at is not None else self.engine.now

        def fire() -> None:
            out_a = a.session_down(b_address, self.engine.now)
            self.dispatch(a, out_a)
            other = self.routers.get(b_address)
            if other is not None:
                out_b = other.session_down(a.address, self.engine.now)
                self.dispatch(other, out_b)

        self.engine.schedule_at(when, fire)

    def restore_session(
        self, a: BGPRouter, b_address: int, at: Optional[float] = None
    ) -> None:
        """Schedule re-establishment of a↔b with full table exchange."""
        when = at if at is not None else self.engine.now

        def fire() -> None:
            other = self.routers.get(b_address)
            # Bring both FSMs up before either side's table is pumped, as
            # the real protocol's OPEN/OPEN-confirm exchange guarantees.
            out_a = a.session_up(b_address, self.engine.now)
            out_b = (
                other.session_up(a.address, self.engine.now)
                if other is not None
                else []
            )
            self.dispatch(a, out_a)
            if other is not None:
                self.dispatch(other, out_b)

        self.engine.schedule_at(when, fire)

    def run(self, max_events: Optional[int] = None) -> int:
        """Run the engine until quiescent (BGP convergence)."""
        return self.engine.run(max_events)

    def run_until(self, deadline: float) -> int:
        return self.engine.run_until(deadline)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def dispatch(
        self, sender: BGPRouter, outgoing: Iterable[tuple[int, BGPUpdate]]
    ) -> None:
        """Schedule delivery of a router's outgoing updates over its links.

        Public because scenario code that drives a router directly (e.g.
        tearing down an external session) must hand the fallout back to
        the network.
        """
        for to_address, update in outgoing:
            delay = self._delays.get(
                (sender.address, to_address), DEFAULT_LINK_DELAY
            )
            self.engine.schedule_after(
                delay,
                lambda f=sender.address, t=to_address, u=update: self._deliver(
                    f, t, u
                ),
            )

    def _deliver(self, from_address: int, to_address: int, update: BGPUpdate) -> None:
        self.messages_delivered += 1
        collector = self._collectors.get(to_address)
        if collector is not None:
            collector.observe(from_address, update, self.engine.now)
            return
        receiver = self.routers.get(to_address)
        if receiver is None:
            # Updates to external (scripted) peers vanish into the void:
            # the script decides what, if anything, comes back.
            return
        out = receiver.receive_update(from_address, update, self.engine.now)
        self.dispatch(receiver, out)
