"""The discrete-event engine.

A classic calendar queue: callbacks scheduled at absolute times, executed
in time order with FIFO tie-breaking (a monotone sequence number), so runs
are fully deterministic. All randomness in workloads comes from explicitly
seeded :class:`random.Random` instances, never from the engine.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

Callback = Callable[[], None]


class Engine:
    """Priority-queue scheduler with a virtual clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._sequence = 0
        self._queue: list[tuple[float, int, Callback]] = []
        self.executed = 0

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def schedule_at(self, when: float, callback: Callback) -> None:
        """Run *callback* at absolute virtual time *when*."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        heapq.heappush(self._queue, (when, self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Run *callback* after *delay* seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def step(self) -> bool:
        """Execute the earliest queued event. Returns False when empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self._now = when
        self.executed += 1
        callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or *max_events* executed).

        Returns the number of events executed by this call. The cap is a
        guard against livelock: a persistently oscillating scenario never
        drains its queue, by design.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed

    def run_until(self, deadline: float) -> int:
        """Run events with time ≤ *deadline*; advance the clock to it.

        Returns the number of events executed.
        """
        if deadline < self._now:
            raise ValueError(
                f"deadline {deadline} before current time {self._now}"
            )
        executed = 0
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
            executed += 1
        self._now = deadline
        return executed
