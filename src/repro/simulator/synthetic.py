"""Synthetic collector views and event generators at published scale.

Simulating a 67-reflector full mesh carrying 1.5 million routes through
pure-Python BGP speakers is computationally out of reach (hundreds of
millions of route operations). But the paper's Table I doesn't measure
router dynamics — it measures the TAMP and Stemming *algorithms* on the
collector's data: RIB snapshots and event streams. This module generates
that collector-side view directly, calibrated to the published inventory
(ISP-Anon: ~9150 nexthops, ~850 neighbor ASes, ~200k prefixes, 1.5M
routes; Berkeley: 13 nexthops, ~12.6k prefixes, ~23k routes), and event
streams with the published shapes (session-reset spikes, leak storms,
low-grade oscillation grass).

The small-scale :class:`repro.simulator.workloads.IspAnonSite` retains
full router dynamics for the correctness-critical case studies; this
module exists purely so the benchmarks can run at paper scale. See
DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.collector.events import BGPEvent, EventKind
from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix, parse_address
from repro.simulator.workloads import synthetic_prefixes


@dataclass(frozen=True, slots=True)
class ViewProfile:
    """Inventory targets for a synthetic collector view."""

    name: str
    peer_count: int  # IBGP peers REX holds (edge routers / reflectors)
    nexthop_count: int  # distinct BGP nexthops
    neighbor_as_count: int  # distinct first-hop ASes
    origin_as_count: int  # distinct originating ASes
    mean_path_length: int  # AS hops per route (before origin)


#: Section II inventory, August 2003.
BERKELEY_PROFILE = ViewProfile(
    name="berkeley",
    peer_count=4,
    nexthop_count=13,
    neighbor_as_count=3,  # CalREN's ASes dominate a single-provider site
    origin_as_count=400,
    mean_path_length=3,
)

#: Section II inventory, late June 2002.
ISP_ANON_PROFILE = ViewProfile(
    name="isp-anon",
    peer_count=67,
    nexthop_count=9150,
    neighbor_as_count=850,
    origin_as_count=316,
    mean_path_length=3,
)

_PEER_BASE = parse_address("10.200.0.1")
_NEXTHOP_BASE = parse_address("10.64.0.1")


def _peer_address(index: int) -> int:
    return _PEER_BASE + (index << 8)


def _nexthop_address(index: int) -> int:
    return _NEXTHOP_BASE + index


def populate_view(
    rex: RouteExplorer,
    n_routes: int,
    profile: ViewProfile = ISP_ANON_PROFILE,
    routes_per_prefix: float = 7.5,
    seed: int = 2002,
) -> list[Prefix]:
    """Fill *rex* with *n_routes* routes matching *profile*'s inventory.

    Routes per prefix follow the ISP pattern: each prefix is reachable
    through several peers/nexthops (multi-homing plus the reflector mesh),
    averaging *routes_per_prefix*. Returns the prefix universe.

    Deterministic for a given *seed*.
    """
    rng = random.Random(seed)
    n_prefixes = max(1, int(n_routes / routes_per_prefix))
    prefixes = synthetic_prefixes(n_prefixes)
    attrs_pool = _attribute_pool(profile, rng)
    routes_placed = 0
    prefix_index = 0
    skips = 0
    used_peers: list[set[int]] = [set() for _ in prefixes]
    batch: dict[int, list[tuple[Prefix, PathAttributes]]] = {}
    while routes_placed < n_routes:
        slot = prefix_index % n_prefixes
        prefix = prefixes[slot]
        prefix_index += 1
        available = [
            p for p in range(profile.peer_count) if p not in used_peers[slot]
        ]
        if not available:
            skips += 1
            if skips >= n_prefixes:
                raise ValueError(
                    f"cannot place {n_routes} routes over {n_prefixes}"
                    f" prefixes x {profile.peer_count} peers"
                )
            continue
        skips = 0
        copies = min(
            n_routes - routes_placed,
            max(1, int(rng.gauss(routes_per_prefix, routes_per_prefix / 3))),
            len(available),
        )
        for peer_index in rng.sample(available, copies):
            attrs = rng.choice(attrs_pool)
            batch.setdefault(peer_index, []).append((prefix, attrs))
            used_peers[slot].add(peer_index)
            routes_placed += 1
    for peer_index, entries in batch.items():
        peer = _peer_address(peer_index)
        rex.peer_with(peer)
        rib = rex.rib(peer)
        for prefix, attrs in entries:
            rib.announce(prefix, attrs)
    # The RIBs are written directly rather than through rex.observe so
    # table population does not pollute rex.events; the view represents
    # converged state, not an incident.
    return prefixes


def _attribute_pool(
    profile: ViewProfile, rng: random.Random
) -> list[PathAttributes]:
    """A pool of shared attribute bundles matching the profile counts.

    Sharing bundles keeps 1.5M-route views affordable: routes reference a
    few thousand distinct attribute objects, exactly like a real RIB where
    most routes reuse common paths.
    """
    pool_size = max(profile.nexthop_count, profile.neighbor_as_count, 64)
    pool: list[PathAttributes] = []
    for i in range(pool_size):
        nexthop = _nexthop_address(i % profile.nexthop_count)
        neighbor_as = 100 + (i % profile.neighbor_as_count)
        origin_as = 40000 + rng.randrange(profile.origin_as_count)
        middle = [
            200 + rng.randrange(900)
            for _ in range(max(0, profile.mean_path_length - 2))
        ]
        pool.append(
            PathAttributes(
                nexthop=nexthop,
                as_path=ASPath([neighbor_as, *middle, origin_as]),
            )
        )
    return pool


# ----------------------------------------------------------------------
# Event-stream generators (the Table I / Figure 8 shapes)
# ----------------------------------------------------------------------


def session_reset_events(
    rex: RouteExplorer,
    peer_index: int,
    start: float,
    convergence_seconds: float,
    seed: int = 7,
) -> EventStream:
    """A session reset at one peer: mass withdrawal, then re-announcement.

    This is the canonical event spike: every route learned from the peer
    is withdrawn, then (after the session re-establishes) re-announced.
    Withdrawal and re-announcement times are spread over
    *convergence_seconds*, matching BGP's bursty convergence.
    """
    rng = random.Random(seed)
    peer = _peer_address(peer_index)
    routes = list(rex.rib(peer).routes())
    events = EventStream()
    for route in routes:
        when = start + rng.uniform(0, convergence_seconds / 2)
        events.append(
            BGPEvent(when, EventKind.WITHDRAW, peer, route.prefix, route.attributes)
        )
    reup = start + convergence_seconds / 2
    for route in routes:
        when = reup + rng.uniform(0, convergence_seconds / 2)
        events.append(
            BGPEvent(when, EventKind.ANNOUNCE, peer, route.prefix, route.attributes)
        )
    return events


def path_exploration_events(
    prefixes: list[Prefix],
    peer_index: int,
    failed_edge: tuple[int, int],
    alternates: list[ASPath],
    start: float,
    spread_seconds: float,
    seed: int = 13,
) -> EventStream:
    """A failure beyond *failed_edge*: per-prefix path exploration.

    Each prefix is withdrawn (old path crossing the failed AS edge), then
    re-announced over a sequence of alternate paths — BGP's notorious
    exploration of invalid paths before convergence.
    """
    rng = random.Random(seed)
    peer = _peer_address(peer_index)
    nexthop = _nexthop_address(peer_index)
    upstream, downstream = failed_edge
    events = EventStream()
    for i, prefix in enumerate(prefixes):
        origin = 40000 + (i % 300)
        dead_path = ASPath([upstream, downstream, origin])
        t = start + rng.uniform(0, spread_seconds / 4)
        events.append(
            BGPEvent(
                t,
                EventKind.WITHDRAW,
                peer,
                prefix,
                PathAttributes(nexthop=nexthop, as_path=dead_path),
            )
        )
        explore_count = rng.randrange(1, max(2, len(alternates) + 1))
        for step in range(explore_count):
            alternate = alternates[step % len(alternates)]
            t += rng.uniform(0, spread_seconds / (2 * max(1, explore_count)))
            events.append(
                BGPEvent(
                    t,
                    EventKind.ANNOUNCE,
                    peer,
                    prefix,
                    PathAttributes(
                        nexthop=nexthop,
                        as_path=ASPath(
                            list(alternate.sequence) + [origin]
                        ),
                    ),
                )
            )
    return events


def oscillation_events(
    prefix: Prefix,
    peer_indices: list[int],
    paths: list[ASPath],
    start: float,
    duration: float,
    period: float,
) -> EventStream:
    """Persistent route oscillation on one prefix (Figures 3 and 9 shape).

    Each *period*, every peer withdraws the prefix and re-announces it on
    the next path in its rotation. Event volume is 2 events per peer per
    period — the "grass" that hides serious problems from rate-based
    detectors.
    """
    if period <= 0:
        raise ValueError("oscillation period must be positive")
    events = EventStream()
    t = start
    cycle = 0
    while t < start + duration:
        for k, peer_index in enumerate(peer_indices):
            peer = _peer_address(peer_index)
            nexthop = _nexthop_address(peer_index)
            old = paths[(cycle + k) % len(paths)]
            new = paths[(cycle + k + 1) % len(paths)]
            events.append(
                BGPEvent(
                    t,
                    EventKind.WITHDRAW,
                    peer,
                    prefix,
                    PathAttributes(nexthop=nexthop, as_path=old),
                )
            )
            events.append(
                BGPEvent(
                    t + period / 2,
                    EventKind.ANNOUNCE,
                    peer,
                    prefix,
                    PathAttributes(nexthop=nexthop, as_path=new),
                )
            )
        cycle += 1
        t += period
    return events


def background_churn_events(
    prefixes: list[Prefix],
    peer_count: int,
    start: float,
    duration: float,
    events_per_second: float,
    seed: int = 99,
) -> EventStream:
    """Uncorrelated low-rate churn: the noise floor under every analysis.

    Random prefixes flap at random peers with diverse paths — no shared
    structure for Stemming to find, which is precisely what makes it good
    background for detection tests.
    """
    rng = random.Random(seed)
    events = EventStream()
    count = int(duration * events_per_second)
    for _ in range(count):
        t = start + rng.uniform(0, duration)
        prefix = rng.choice(prefixes)
        peer_index = rng.randrange(peer_count)
        origin = 40000 + rng.randrange(300)
        path = ASPath([100 + rng.randrange(850), 200 + rng.randrange(900), origin])
        kind = EventKind.WITHDRAW if rng.random() < 0.5 else EventKind.ANNOUNCE
        events.append(
            BGPEvent(
                t,
                kind,
                _peer_address(peer_index),
                prefix,
                PathAttributes(
                    nexthop=_nexthop_address(peer_index), as_path=path
                ),
            )
        )
    return events


def sized_event_stream(
    rex: RouteExplorer,
    count: int,
    timerange: float,
    start: float = 0.0,
    seed: int = 31,
) -> EventStream:
    """Exactly *count* events spanning exactly *timerange* seconds.

    Used by the Table I benchmarks, whose rows fix both the event count
    and the timerange. The mix mirrors real spikes: ~40% session-reset
    churn (withdraw + re-announce of routes from one peer), ~30%
    persistent oscillation on a handful of prefixes (the dominant source
    of volume in real groups — the paper's Figure 3 oscillation alone was
    95% of the ISP's BGP traffic, endlessly repeating the same few
    sequences), ~20% path exploration after an AS-edge failure, ~10%
    uncorrelated background. The first and last events are pinned to the
    window edges so the stream's timerange is exact.
    """
    if count < 2:
        raise ValueError("need at least two events to span a timerange")
    rng = random.Random(seed)
    peers = rex.peers()
    if not peers:
        raise ValueError("collector holds no routes to churn")
    reset_peer = peers[0]
    routes = list(rex.rib(reset_peer).routes())
    if not routes:
        raise ValueError("reset peer has an empty table")
    events: list[BGPEvent] = []
    oscillation_target = int(count * 0.3)
    oscillating = routes[: max(1, min(3, len(routes)))]
    slot = 0
    while len(events) < oscillation_target:
        route = oscillating[slot % len(oscillating)]
        t = start + (slot / max(1, oscillation_target)) * timerange
        kind = EventKind.WITHDRAW if slot % 2 else EventKind.ANNOUNCE
        events.append(
            BGPEvent(t, kind, reset_peer, route.prefix, route.attributes)
        )
        slot += 1
    reset_target = len(events) + int(count * 0.4)
    index = 0
    while len(events) < reset_target:
        route = routes[index % len(routes)]
        t = start + rng.uniform(0, timerange)
        events.append(
            BGPEvent(
                t, EventKind.WITHDRAW, reset_peer, route.prefix, route.attributes
            )
        )
        if len(events) < reset_target:
            events.append(
                BGPEvent(
                    min(start + timerange, t + rng.uniform(1.0, 30.0)),
                    EventKind.ANNOUNCE,
                    reset_peer,
                    route.prefix,
                    route.attributes,
                )
            )
        index += 1
    explore_target = int(count * 0.2)
    explore_prefixes = [r.prefix for r in routes[: max(1, explore_target // 3)]]
    exploration = path_exploration_events(
        explore_prefixes,
        peer_index=1 % len(peers),
        failed_edge=(209, 7018),
        alternates=[ASPath([209, 1239]), ASPath([209, 701, 1299])],
        start=start,
        spread_seconds=timerange,
        seed=seed + 1,
    )
    events.extend(list(exploration)[:explore_target])
    churn_needed = count - len(events)
    if churn_needed > 0:
        # Over-generate slightly, then trim: int() truncation in the
        # churn generator must not leave the stream short.
        churn = background_churn_events(
            [r.prefix for r in routes[:200]],
            peer_count=len(peers),
            start=start,
            duration=timerange,
            events_per_second=(churn_needed + 2) / timerange,
            seed=seed + 2,
        )
        events.extend(list(churn)[:churn_needed])
    events = events[:count]
    if len(events) < count:
        raise AssertionError("sized stream generation fell short")
    # Pin the window edges for an exact timerange.
    events.sort(key=lambda e: e.timestamp)
    first, last = events[0], events[-1]
    events[0] = BGPEvent(start, first.kind, first.peer, first.prefix,
                         first.attributes)
    events[-1] = BGPEvent(start + timerange, last.kind, last.peer,
                          last.prefix, last.attributes)
    return EventStream(events)


def replay_into(rex: RouteExplorer, events: EventStream) -> EventStream:
    """Replay a synthetic stream through REX's augmentation machinery.

    Useful when a test wants collector semantics (withdrawal
    augmentation, RIB maintenance) applied to generated events. Returns
    the stream REX recorded.
    """
    for event in events:
        if event.is_withdrawal:
            update = BGPUpdate.withdraw([event.prefix])
        else:
            update = BGPUpdate.announce([event.prefix], event.attributes)
        rex.observe(event.peer, update, event.timestamp)
    return rex.events
