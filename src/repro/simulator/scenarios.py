"""Back-compat shim: the scenario injectors moved to ``repro.scenarios``.

The Section IV case-study anomalies now live in
:mod:`repro.scenarios.paper` (labeled with the v2 schema), alongside
the related-work anomaly catalog (:mod:`repro.scenarios.catalog`), the
registry, and the precision/recall scorer. Import from
``repro.scenarios`` in new code; this module keeps the original paths
working.

``Incident`` here is the legacy constructor: it accepts the old
positional shape (single optional ``true_stem``, plain ``dict``
details) and returns a :class:`repro.scenarios.labels.LabeledIncident`.
"""

from repro.scenarios.labels import (
    Incident,
    IncidentClass,
    LabeledIncident,
    ScenarioDetails,
    TimeWindow,
)
from repro.scenarios.paper import (
    AS_ATT,
    AS_CALREN,
    AS_CUSTOMER,
    AS_ISP,
    AS_NAP,
    AS_QWEST,
    ATT_FEED_222,
    CALREN_FEED_13,
    CALREN_FEED_200,
    COMM_OTHER,
    ISP_REX_ADDRESS,
    LEAK_PATH_ASES,
    MED_PREFIX,
    NH_BACKDOOR,
    TIER1_PEERS,
    MedOscillationLab,
    _after_now,
    _events_after,
    backdoor_routes,
    build_med_oscillation_lab,
    community_mistag,
    customer_flap,
    full_table_hijack,
    max_prefix_leak,
    med_oscillation,
    route_leak,
    session_reset,
)

__all__ = [
    "AS_ATT",
    "AS_CALREN",
    "AS_CUSTOMER",
    "AS_ISP",
    "AS_NAP",
    "AS_QWEST",
    "ATT_FEED_222",
    "CALREN_FEED_13",
    "CALREN_FEED_200",
    "COMM_OTHER",
    "ISP_REX_ADDRESS",
    "Incident",
    "IncidentClass",
    "LEAK_PATH_ASES",
    "LabeledIncident",
    "MED_PREFIX",
    "MedOscillationLab",
    "NH_BACKDOOR",
    "ScenarioDetails",
    "TIER1_PEERS",
    "TimeWindow",
    "backdoor_routes",
    "build_med_oscillation_lab",
    "community_mistag",
    "customer_flap",
    "full_table_hijack",
    "max_prefix_leak",
    "med_oscillation",
    "route_leak",
    "session_reset",
    "_after_now",
    "_events_after",
]
