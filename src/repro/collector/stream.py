"""Event streams: ordered collections of BGP events.

The stream is the interface between data collection and analysis: TAMP
animations replay one, Stemming decomposes one, and the Figure 8 event-rate
plot bins one. Streams support time slicing, predicate filtering, merging
and JSONL persistence.
"""

from __future__ import annotations

import bisect
import hashlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

from repro.collector.events import BGPEvent
from repro.net.attributes import Community
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.mrt.ingest import IngestReport


class EventStream:
    """A time-ordered sequence of :class:`BGPEvent`.

    Events may be appended out of order; the stream sorts lazily on first
    read access and stays sorted until the next append. Sorting is stable,
    so simultaneous events keep arrival order — which matters when a
    withdrawal and re-announcement share a timestamp.
    """

    def __init__(self, events: Iterable[BGPEvent] = ()) -> None:
        self._events: list[BGPEvent] = list(events)
        self._sorted = False
        #: Set by :func:`repro.mrt.loader.load_updates` on the stream it
        #: returns: the accounting of the MRT load that produced these
        #: events. Derived streams (``between``/``filter``/...) do not
        #: inherit it — the report describes one load, not a view.
        self.ingest_report: Optional["IngestReport"] = None
        #: Timestamps of the sorted events, built lazily for bisection
        #: (time slicing hits this hard: a 750-frame animation cuts the
        #: same stream 750 times).
        self._keys: Optional[list[float]] = None
        self._ensure_sorted()

    # ------------------------------------------------------------------
    # Collection basics
    # ------------------------------------------------------------------

    def append(self, event: BGPEvent) -> None:
        if self._sorted and self._events and event.timestamp < self._events[-1].timestamp:
            self._sorted = False
        self._events.append(event)
        self._keys = None

    def extend(self, events: Iterable[BGPEvent]) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BGPEvent]:
        self._ensure_sorted()
        return iter(self._events)

    def __getitem__(self, index: int) -> BGPEvent:
        self._ensure_sorted()
        return self._events[index]

    # ------------------------------------------------------------------
    # Time properties
    # ------------------------------------------------------------------

    @property
    def start_time(self) -> Optional[float]:
        self._ensure_sorted()
        return self._events[0].timestamp if self._events else None

    @property
    def end_time(self) -> Optional[float]:
        self._ensure_sorted()
        return self._events[-1].timestamp if self._events else None

    @property
    def timerange(self) -> float:
        """Seconds between first and last event (the paper's 'timerange')."""
        if not self._events:
            return 0.0
        self._ensure_sorted()
        return self._events[-1].timestamp - self._events[0].timestamp

    # ------------------------------------------------------------------
    # Slicing and filtering
    # ------------------------------------------------------------------

    def between(self, start: float, end: float) -> "EventStream":
        """Events with start ≤ timestamp < end."""
        keys = self._timestamp_keys()
        lo = bisect.bisect_left(keys, start)
        hi = bisect.bisect_left(keys, end)
        return EventStream(self._events[lo:hi])

    def slice_indices(self, boundaries: Iterable[float]) -> list[int]:
        """Event indices at which each time boundary falls.

        For each boundary *b* (boundaries must be non-decreasing, as an
        animation's frame edges are), the returned index is the first
        event with ``timestamp >= b`` — so consecutive boundaries bound
        the half-open slices ``start ≤ timestamp < end`` that
        :meth:`between` would return, without building 750 intermediate
        streams.
        """
        keys = self._timestamp_keys()
        bisect_left = bisect.bisect_left
        indices: list[int] = []
        lo = 0
        for boundary in boundaries:
            lo = bisect_left(keys, boundary, lo)
            indices.append(lo)
        return indices

    def filter(self, predicate: Callable[[BGPEvent], bool]) -> "EventStream":
        return EventStream(e for e in self if predicate(e))

    def for_peer(self, peer: int) -> "EventStream":
        return self.filter(lambda e: e.peer == peer)

    def for_prefix(self, prefix: Prefix) -> "EventStream":
        return self.filter(lambda e: e.prefix == prefix)

    def for_prefixes(self, prefixes: set[Prefix]) -> "EventStream":
        return self.filter(lambda e: e.prefix in prefixes)

    def with_community(self, community: Community) -> "EventStream":
        return self.filter(lambda e: community in e.attributes.communities)

    def traversing_as(self, asn: int) -> "EventStream":
        return self.filter(lambda e: asn in e.attributes.as_path)

    def merged_with(self, other: "EventStream") -> "EventStream":
        return EventStream(list(self) + list(other))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def prefixes(self) -> set[Prefix]:
        return {e.prefix for e in self._events}

    def peers(self) -> set[int]:
        return {e.peer for e in self._events}

    def nexthops(self) -> set[int]:
        return {e.attributes.nexthop for e in self._events}

    def announce_count(self) -> int:
        return sum(1 for e in self._events if not e.is_withdrawal)

    def withdraw_count(self) -> int:
        return sum(1 for e in self._events if e.is_withdrawal)

    def fingerprint(self) -> str:
        """SHA-256 over the sorted events' canonical JSON encoding.

        Two streams with identical events (same timestamps, kinds,
        peers, prefixes, attributes) have identical fingerprints — the
        chaos suite uses this to assert bit-identical detector *input*
        across ingest paths without holding both streams in memory.
        """
        return fingerprint_events(self)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the stream as JSONL."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self:
                handle.write(event.to_json())
                handle.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "EventStream":
        """Read a JSONL stream written by :meth:`save`."""
        events = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(BGPEvent.from_json(line))
        return cls(events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._events.sort(key=lambda e: e.timestamp)
            self._sorted = True
            self._keys = None

    def _timestamp_keys(self) -> list[float]:
        self._ensure_sorted()
        if self._keys is None:
            self._keys = [e.timestamp for e in self._events]
        return self._keys


def fingerprint_events(events: Iterable[BGPEvent]) -> str:
    """SHA-256 over *events* in the order given, one JSON line each.

    The digest a stream of exactly these events would report from
    :meth:`EventStream.fingerprint` — provided *events* is already in
    timestamp order. The pipeline uses this to fingerprint individual
    windows without materializing each as a stream.
    """
    digest = hashlib.sha256()
    for event in events:
        digest.update(event.to_json().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
