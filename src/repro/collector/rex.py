"""The passive Route Explorer collector.

REX IBGP-peers with every BGP edge router at a site (or every core route
reflector at an ISP) and keeps one Adj-RIB-In per peer. When a peer sends
an explicit withdrawal — or an announcement that implicitly replaces a
route — the Adj-RIB-In supplies the attributes being displaced, producing
the augmented event stream of Section II. REX also records session
statistics matching the paper's inventory numbers (nexthops, prefixes,
routes seen).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.bgp.rib import AdjRibIn, Route
from repro.collector.events import BGPEvent, EventKind
from repro.collector.stream import EventStream
from repro.igp.topology import IGPTopology
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix

if TYPE_CHECKING:
    from repro.mrt.ingest import IngestReport


class RouteExplorer:
    """A passive collector with per-peer withdrawal augmentation.

    *emit_implicit_withdrawals* controls whether a replacement
    announcement additionally produces a withdrawal event for the old
    route. The paper's event streams record announcements and withdrawals;
    an implicit replacement is a single announcement on the wire, so the
    default is off — analysis that wants the old attributes can still get
    them from the returned event's ``replaced`` field.
    """

    def __init__(
        self,
        name: str = "rex",
        igp: Optional[IGPTopology] = None,
        emit_implicit_withdrawals: bool = False,
    ) -> None:
        self.name = name
        self.igp = igp
        self.emit_implicit_withdrawals = emit_implicit_withdrawals
        self.events = EventStream()
        self._ribs: dict[int, AdjRibIn] = {}
        self._dropped_withdrawals = 0
        #: One :class:`repro.mrt.ingest.IngestReport` per MRT load that
        #: fed this collector, in load order (the feed's health record).
        self.ingest_reports: list["IngestReport"] = []

    # ------------------------------------------------------------------
    # Peering
    # ------------------------------------------------------------------

    def peer_with(self, peer: int) -> None:
        """Establish a passive IBGP peering with *peer*."""
        self._ribs.setdefault(peer, AdjRibIn(peer))

    def peers(self) -> list[int]:
        return list(self._ribs)

    def rib(self, peer: int) -> AdjRibIn:
        try:
            return self._ribs[peer]
        except KeyError:
            raise KeyError(f"{self.name}: not peered with {peer:#x}") from None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(
        self, peer: int, update: BGPUpdate, now: float
    ) -> list[BGPEvent]:
        """Ingest one UPDATE from *peer*; return the events it produced."""
        self.peer_with(peer)
        rib = self._ribs[peer]
        produced: list[BGPEvent] = []
        for withdrawal in update.withdrawals:
            old_attrs = rib.withdraw(withdrawal.prefix)
            if old_attrs is None:
                # A withdrawal for a route the peer never announced: real
                # collectors see these after their own session resets.
                self._dropped_withdrawals += 1
                continue
            produced.append(
                BGPEvent(
                    timestamp=now,
                    kind=EventKind.WITHDRAW,
                    peer=peer,
                    prefix=withdrawal.prefix,
                    attributes=old_attrs,
                )
            )
        for announcement in update.announcements:
            displaced = rib.announce(announcement.prefix, announcement.attributes)
            if displaced is not None and self.emit_implicit_withdrawals:
                produced.append(
                    BGPEvent(
                        timestamp=now,
                        kind=EventKind.WITHDRAW,
                        peer=peer,
                        prefix=announcement.prefix,
                        attributes=displaced,
                    )
                )
            produced.append(
                BGPEvent(
                    timestamp=now,
                    kind=EventKind.ANNOUNCE,
                    peer=peer,
                    prefix=announcement.prefix,
                    attributes=announcement.attributes,
                )
            )
        self.events.extend(produced)
        return produced

    def observe_session_loss(self, peer: int, now: float) -> list[BGPEvent]:
        """The peering to *peer* dropped: synthesize withdrawals for its RIB.

        When REX's own session to a peer resets, every route in that
        peer's Adj-RIB-In is implicitly gone.
        """
        rib = self.rib(peer)
        produced = [
            BGPEvent(
                timestamp=now,
                kind=EventKind.WITHDRAW,
                peer=peer,
                prefix=route.prefix,
                attributes=route.attributes,
            )
            for route in rib.clear()
        ]
        self.events.extend(produced)
        return produced

    # ------------------------------------------------------------------
    # Inventory (the Section II numbers)
    # ------------------------------------------------------------------

    def route_count(self) -> int:
        """Total routes across all peers (paper: 23k Berkeley, 1.5M ISP)."""
        return sum(len(rib) for rib in self._ribs.values())

    def prefix_count(self) -> int:
        """Distinct prefixes across all peers."""
        prefixes: set[Prefix] = set()
        for rib in self._ribs.values():
            prefixes.update(rib.prefixes())
        return len(prefixes)

    def nexthop_count(self) -> int:
        """Distinct BGP nexthops across all peers."""
        nexthops = {
            route.attributes.nexthop
            for rib in self._ribs.values()
            for route in rib.routes()
        }
        return len(nexthops)

    def neighbor_as_count(self) -> int:
        """Distinct neighbor ASes across all routes."""
        ases = {
            route.attributes.as_path.neighbor_as
            for rib in self._ribs.values()
            for route in rib.routes()
        }
        ases.discard(None)
        return len(ases)

    def all_routes(self) -> Iterable[Route]:
        """Every (peer, prefix, attributes) route currently held."""
        # repro: allow[DET002] per-peer RIBs are created in peering
        # order; the event stream that fills them is single-threaded.
        for rib in self._ribs.values():
            yield from rib.routes()

    @property
    def dropped_withdrawals(self) -> int:
        """Withdrawals for routes never announced (diagnostic counter)."""
        return self._dropped_withdrawals

    # ------------------------------------------------------------------
    # Ingest accounting (the feed-health record)
    # ------------------------------------------------------------------

    def record_ingest(self, report: "IngestReport") -> None:
        """Attach one MRT load's accounting to this collector."""
        self.ingest_reports.append(report)

    @property
    def last_ingest(self) -> Optional["IngestReport"]:
        return self.ingest_reports[-1] if self.ingest_reports else None

    def ingest_ok(self) -> bool:
        """True when every load into this collector was lossless."""
        return all(report.ok for report in self.ingest_reports)

    def ingest_summary(self) -> str:
        """Feed-health text: every load's report plus collector drops."""
        if not self.ingest_reports:
            return (
                f"{self.name}: no MRT ingests recorded"
                f" ({self._dropped_withdrawals} dropped withdrawals)"
            )
        lines = [report.summary() for report in self.ingest_reports]
        lines.append(
            f"{self.name}: {len(self.ingest_reports)} ingest(s),"
            f" {self._dropped_withdrawals} dropped withdrawals total"
        )
        return "\n".join(lines)
