"""Event-rate time series.

Figure 8 of the paper plots the BGP event rate at ISP-Anon over three
months: tall spikes (session resets, leaks) over low-grade "grass" in
which the most serious problem — a persistent customer route oscillation —
hides. Binning a stream into a rate series is the first thing an operator
looks at, and the thing Stemming improves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.collector.events import BGPEvent


@dataclass(frozen=True, slots=True)
class EventRateSeries:
    """Events-per-bin over a time range."""

    start: float
    bin_seconds: float
    counts: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.counts)

    def bin_start(self, index: int) -> float:
        return self.start + index * self.bin_seconds

    def peak(self) -> tuple[float, int]:
        """(bin start time, count) of the busiest bin."""
        if not self.counts:
            return (self.start, 0)
        index = max(range(len(self.counts)), key=self.counts.__getitem__)
        return (self.bin_start(index), self.counts[index])

    def mean(self) -> float:
        if not self.counts:
            return 0.0
        return sum(self.counts) / len(self.counts)

    def spikes(self, threshold_factor: float = 10.0) -> list[int]:
        """Indices of bins exceeding *threshold_factor* × mean rate.

        This is the naive spike detector the paper contrasts with
        Stemming: it finds the Figure 8 spikes and completely misses the
        grass-level oscillation.
        """
        mean = self.mean()
        if mean == 0:
            return []
        return [
            i
            for i, count in enumerate(self.counts)
            if count > threshold_factor * mean
        ]

    def grass_level(self) -> float:
        """Median bin count: the background churn level."""
        if not self.counts:
            return 0.0
        ordered = sorted(self.counts)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[middle])
        return (ordered[middle - 1] + ordered[middle]) / 2


def bin_events(
    events: Iterable[BGPEvent],
    bin_seconds: float,
    start: float | None = None,
    end: float | None = None,
) -> EventRateSeries:
    """Bin *events* into an :class:`EventRateSeries`.

    *start*/*end* default to the event range. Events outside an explicit
    range are dropped.
    """
    if bin_seconds <= 0:
        raise ValueError(f"bin width {bin_seconds} must be positive")
    timestamps: Sequence[float] = sorted(e.timestamp for e in events)
    if not timestamps:
        return EventRateSeries(start or 0.0, bin_seconds, ())
    lo = start if start is not None else timestamps[0]
    hi = end if end is not None else timestamps[-1]
    if hi < lo:
        raise ValueError("end before start")
    bin_count = max(1, int((hi - lo) / bin_seconds) + 1)
    counts = [0] * bin_count
    for timestamp in timestamps:
        if timestamp < lo or timestamp > hi:
            continue
        index = min(int((timestamp - lo) / bin_seconds), bin_count - 1)
        counts[index] += 1
    return EventRateSeries(lo, bin_seconds, tuple(counts))
