"""BGP events: the unit of analysis.

A BGP event is one route announcement or withdrawal from a peer, with
full path attributes — for withdrawals, the attributes of the route being
withdrawn, recovered from the collector's Adj-RIB-In. Section III-B
expresses an event as the sequence ``c = x h a1 … an p`` (peer, nexthop,
AS path, prefix); :meth:`BGPEvent.sequence` produces exactly that encoding
for the Stemming algorithm.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from functools import cached_property

from repro.net.aspath import ASPath
from repro.net.attributes import Community, Origin, PathAttributes
from repro.net.prefix import Prefix, format_address, parse_address

#: One element of a Stemming sequence: a (namespace, value) pair. The
#: namespace tag keeps peers, nexthops, ASes and prefixes from colliding
#: (an AS number could otherwise equal an encoded address).
Token = tuple[str, object]


class EventKind(enum.Enum):
    ANNOUNCE = "A"
    WITHDRAW = "W"


@dataclass(frozen=True)
class BGPEvent:
    """One routing change seen by the collector.

    *peer* is the IBGP peer (edge router / route reflector) that reported
    the change; *attributes* always present (withdrawals are augmented).
    """

    timestamp: float
    kind: EventKind
    peer: int
    prefix: Prefix
    attributes: PathAttributes

    @property
    def is_withdrawal(self) -> bool:
        return self.kind is EventKind.WITHDRAW

    @property
    def nexthop(self) -> int:
        return self.attributes.nexthop

    @property
    def as_path(self) -> ASPath:
        return self.attributes.as_path

    @cached_property
    def sequence(self) -> tuple[Token, ...]:
        """The Stemming encoding ``x h a1 … an p`` of this event.

        Consecutive duplicate ASes (path prepending) collapse to one
        token: a prepended path traverses the AS once, and keeping the
        repeats would let a single event count a subsequence twice.

        The AS tokens come from :meth:`ASPath.collapsed_tokens`, which
        caches on the (shared) path instance — a flapping route's
        thousandth event reuses the first event's token tuple.
        """
        return (
            ("peer", self.peer),
            ("nh", self.attributes.nexthop),
            *self.attributes.as_path.collapsed_tokens(),
            ("pfx", self.prefix),
        )

    # ------------------------------------------------------------------
    # Figure 4 text format
    # ------------------------------------------------------------------

    def format_line(self) -> str:
        """Render in the paper's Figure 4 style::

            W 128.32.1.3 NEXT_HOP: 128.32.0.70 ASPATH: 11423 209 ... PREFIX: 192.96.10.0/24
        """
        return (
            f"{self.kind.value} {format_address(self.peer)} "
            f"NEXT_HOP: {format_address(self.attributes.nexthop)} "
            f"ASPATH: {self.attributes.as_path} "
            f"PREFIX: {self.prefix}"
        )

    @classmethod
    def parse_line(cls, line: str, timestamp: float = 0.0) -> "BGPEvent":
        """Parse a Figure 4 style line back into an event."""
        kind_text, _, rest = line.strip().partition(" ")
        kind = EventKind(kind_text)
        peer_text, _, rest = rest.partition(" NEXT_HOP: ")
        nexthop_text, _, rest = rest.partition(" ASPATH: ")
        path_text, _, prefix_text = rest.partition(" PREFIX: ")
        return cls(
            timestamp=timestamp,
            kind=kind,
            peer=parse_address(peer_text.strip()),
            prefix=Prefix.parse(prefix_text.strip()),
            attributes=PathAttributes(
                nexthop=parse_address(nexthop_text.strip()),
                as_path=ASPath.parse(path_text),
            ),
        )

    # ------------------------------------------------------------------
    # JSONL serialization
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """One-line JSON record (stable field order for diffs)."""
        attrs = self.attributes
        record: dict = {
            "t": self.timestamp,
            "k": self.kind.value,
            "peer": format_address(self.peer),
            "pfx": str(self.prefix),
            "nh": format_address(attrs.nexthop),
            "path": str(attrs.as_path),
        }
        if attrs.local_pref != 100:
            record["lp"] = attrs.local_pref
        if attrs.med is not None:
            record["med"] = attrs.med
        if attrs.communities:
            record["comm"] = sorted(str(c) for c in attrs.communities)
        if attrs.origin is not Origin.IGP:
            record["origin"] = int(attrs.origin)
        return json.dumps(record, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "BGPEvent":
        record = json.loads(line)
        return cls(
            timestamp=record["t"],
            kind=EventKind(record["k"]),
            peer=parse_address(record["peer"]),
            prefix=Prefix.parse(record["pfx"]),
            attributes=PathAttributes(
                nexthop=parse_address(record["nh"]),
                as_path=ASPath.parse(record["path"]),
                local_pref=record.get("lp", 100),
                med=record.get("med"),
                communities=[
                    Community.parse(c) for c in record.get("comm", [])
                ],
                origin=Origin(record.get("origin", 0)),
            ),
        )
