"""The passive route collector and its event stream.

Section II of the paper: the Route Explorer (REX) IBGP-peers passively
with a site's BGP edge routers (or an ISP's route reflectors), so it sees
exactly what interior routers see. Raw UPDATE messages are insufficient
for analysis — withdrawals carry no attributes — so REX keeps an
Adj-RIB-In per peer and augments each withdrawal with the attributes of
the route being withdrawn. The result is the *event stream* every
algorithm in this reproduction consumes.
"""

from repro.collector.events import BGPEvent, EventKind
from repro.collector.stream import EventStream
from repro.collector.rex import RouteExplorer
from repro.collector.rates import EventRateSeries, bin_events

__all__ = [
    "BGPEvent",
    "EventKind",
    "EventStream",
    "RouteExplorer",
    "EventRateSeries",
    "bin_events",
]
