"""Traffic-weighted site views (Section III-D.2 glue).

Binds the traffic substrate to the core algorithms: a volume table from
flow records, a traffic-weighted TAMP view, and a traffic-weighted
stemmer, all from one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.net.prefix import Prefix
from repro.stemming.weighted import TrafficWeightedStemmer
from repro.tamp.graph import TampGraph
from repro.tamp.tree import Edge
from repro.traffic.flows import FlowCollector
from repro.traffic.volume import VolumeTable, edge_volumes, imbalance_report


@dataclass(frozen=True)
class WeightedSiteView:
    """A routing graph with both prefix-count and volume weights."""

    graph: TampGraph
    volumes: VolumeTable
    by_edge: Mapping[Edge, float]

    def volume_fraction(self, edge: Edge) -> float:
        """The edge's share of total site traffic.

        Normalized by total prefix volume, not by the sum over edges —
        a route's volume traverses every edge of its path, so summing
        edges would double count.
        """
        total = self.volumes.total()
        if total == 0:
            return 0.0
        return self.by_edge.get(edge, 0.0) / total

    def stemmer(self, **kwargs) -> TrafficWeightedStemmer:
        """A stemmer ranking components by traffic impact."""
        return TrafficWeightedStemmer(
            volumes=self.volumes.as_mapping(), **kwargs
        )

    def imbalance(self, edges: list[Edge]) -> list[dict]:
        return imbalance_report(self.graph, self.volumes, edges)


def weighted_site_view(
    graph: TampGraph,
    flows: FlowCollector | Mapping[Prefix, float],
) -> WeightedSiteView:
    """Join a TAMP *graph* with traffic from *flows*.

    *flows* is either a :class:`FlowCollector` (volumes are aggregated
    from its records) or a plain prefix→volume mapping.
    """
    if isinstance(flows, FlowCollector):
        volumes = VolumeTable(flows.volume_by_prefix())
    else:
        volumes = VolumeTable(flows)
    return WeightedSiteView(
        graph=graph,
        volumes=volumes,
        by_edge=edge_volumes(graph, volumes),
    )
