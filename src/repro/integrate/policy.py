"""Correlating Stemming components with configured routing policies.

The Section III-D.1 walk-through: Stemming picks out a component composed
of withdrawals tagged 11423:65350 at 128.32.1.3 and announcements tagged
11423:65300 at 128.32.1.200. The routers' configurations assign
LOCAL_PREF 80 and 70/100 keyed on exactly those tags. Correlating the
two pinpoints the policy interaction — an import filter silently dropping
routes whose community changed — and names the configuration lines
responsible.

The correlator replays a sample of the component's events through each
router's compiled route-maps and reports, per router, which clause each
event hits (or that it is denied), plus the community tags involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.bgp.policy import PolicyContext, RouteMap
from repro.collector.events import BGPEvent
from repro.config.compiler import CompiledConfig
from repro.net.attributes import Community
from repro.stemming.stemmer import Component


@dataclass(frozen=True)
class ClauseHit:
    """One route-map clause explaining part of a component."""

    router: str
    route_map: str
    clause_index: int  # 0-based position in the compiled map
    permit: bool
    #: Events from the component that land on this clause.
    matched_events: int
    #: Source line of the route-map entry, when the config recorded it.
    source_line: int = 0


@dataclass(frozen=True)
class PolicyCorrelation:
    """The D.1 report: how configured policy explains a component."""

    component: Component
    hits: tuple[ClauseHit, ...]
    #: Events denied outright per router (the silent drops).
    denied: Mapping[str, int]
    #: Community tags seen across the component's events.
    communities: frozenset[Community]

    def denials(self) -> list[str]:
        return [router for router, count in self.denied.items() if count]

    def summary(self) -> str:
        lines = [
            f"component at {self.component.location}: "
            f"{self.component.event_count} events, tags "
            f"{sorted(str(c) for c in self.communities)}"
        ]
        for hit in self.hits:
            action = "permit" if hit.permit else "deny"
            lines.append(
                f"  {hit.router}: route-map {hit.route_map} clause"
                f" {hit.clause_index + 1} ({action}, line"
                f" {hit.source_line}) matched {hit.matched_events} events"
            )
        for router in self.denials():
            lines.append(
                f"  {router}: {self.denied[router]} events denied by"
                f" import policy (routes silently dropped)"
            )
        return "\n".join(lines)


def correlate_policies(
    component: Component,
    configs: Iterable[CompiledConfig],
    sample_limit: int = 200,
) -> PolicyCorrelation:
    """Replay the component's events through each config's import maps."""
    events = list(component.events)[:sample_limit]
    hits: list[ClauseHit] = []
    denied: dict[str, int] = {}
    communities: set[Community] = set()
    for event in events:
        communities |= event.attributes.communities
    for config in configs:
        # repro: allow[DET002] neighbors follow config-file order, which
        # is the order operators expect clause hits to be reported in.
        for neighbor in config.neighbors.values():
            name = neighbor.import_map_name
            if not name:
                continue
            route_map = config.route_maps[name]
            clause_counts, deny_count = _replay(
                route_map, events, neighbor.remote_as or 0
            )
            source = dict(config.source_lines.get(name, []))
            sequences = sorted(source)
            for index, count in clause_counts.items():
                if count == 0:
                    continue
                line = (
                    source[sequences[index]]
                    if index < len(sequences)
                    else 0
                )
                hits.append(
                    ClauseHit(
                        router=config.hostname,
                        route_map=name,
                        clause_index=index,
                        permit=route_map.clauses[index].permit,
                        matched_events=count,
                        source_line=line,
                    )
                )
            if deny_count:
                denied[config.hostname] = (
                    denied.get(config.hostname, 0) + deny_count
                )
    hits.sort(key=lambda h: -h.matched_events)
    return PolicyCorrelation(
        component=component,
        hits=tuple(hits),
        denied=denied,
        communities=frozenset(communities),
    )


def _replay(
    route_map: RouteMap, events: list[BGPEvent], neighbor_as: int
) -> tuple[dict[int, int], int]:
    """Count which clause each event's route hits; denials separately."""
    clause_counts: dict[int, int] = {}
    denies = 0
    context = PolicyContext(neighbor_as=neighbor_as)
    for event in events:
        landed = None
        for index, clause in enumerate(route_map.clauses):
            if clause.matches_route(event.prefix, event.attributes, context):
                landed = (index, clause.permit)
                break
        if landed is None:
            denies += 1  # implicit deny at the end of the map
            continue
        index, permit = landed
        clause_counts[index] = clause_counts.get(index, 0) + 1
        if not permit:
            denies += 1
    return clause_counts, denies
