"""IGP drill-down (Section III-D.3).

BGP best-route selection depends on IGP reachability and cost to the
NEXT_HOP, so an interior link event can masquerade as a BGP incident.
LSA volume is orders of magnitude below BGP volume, which makes the
join cheap: take the Stemming component's time window, pull the LSAs in
(a slack around) it, and flag those whose endpoints relate to the
component's nexthops. The paper did this drill-down manually in REX; we
automate it, which Section III-D.3 lists as work in progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.igp.lsa import LinkStateAd
from repro.igp.topology import IGPTopology
from repro.stemming.stemmer import Component


@dataclass(frozen=True)
class IgpCorrelation:
    """The D.3 report: interior events plausibly behind a BGP component."""

    component: Component
    #: LSAs inside the component's (padded) time window.
    window_lsas: tuple[LinkStateAd, ...]
    #: The subset whose origin router owns / neighbors a nexthop of the
    #: component's routes — the actual suspects.
    implicated: tuple[LinkStateAd, ...]
    window: tuple[float, float]

    @property
    def is_igp_rooted(self) -> bool:
        """True when interior routing plausibly caused the component."""
        return bool(self.implicated)

    def summary(self) -> str:
        start, end = self.window
        lines = [
            f"component at {self.component.location}: window"
            f" [{start:.1f}, {end:.1f}] contains {len(self.window_lsas)}"
            f" LSAs, {len(self.implicated)} implicated"
        ]
        for lsa in self.implicated:
            links = ", ".join(
                f"{link.neighbor}:{link.metric}" for link in lsa.links
            )
            lines.append(
                f"  t={lsa.timestamp:.1f} {lsa.origin} -> [{links}]"
            )
        return "\n".join(lines)


def correlate_igp(
    component: Component,
    topology: IGPTopology,
    slack_seconds: float = 30.0,
    lsas: Optional[Iterable[LinkStateAd]] = None,
) -> IgpCorrelation:
    """Join *component* with the LSA stream of *topology*.

    *slack_seconds* pads the component's event window on both sides: IGP
    convergence precedes the BGP fallout, and timestamps from separate
    collectors skew. An explicit *lsas* iterable overrides the topology's
    recorded stream (useful for replayed data).
    """
    if slack_seconds < 0:
        raise ValueError("slack must be non-negative")
    events = component.events
    start = (events.start_time or 0.0) - slack_seconds
    end = (events.end_time or 0.0) + slack_seconds
    stream = list(lsas) if lsas is not None else list(topology.events)
    in_window = tuple(
        lsa for lsa in stream if start <= lsa.timestamp <= end
    )
    suspects = _nexthop_routers(component, topology)
    implicated = tuple(
        lsa
        for lsa in in_window
        if lsa.origin in suspects
        or any(link.neighbor in suspects for link in lsa.links)
    )
    return IgpCorrelation(
        component=component,
        window_lsas=in_window,
        implicated=implicated,
        window=(start, end),
    )


def _nexthop_routers(
    component: Component, topology: IGPTopology
) -> set[str]:
    """IGP routers owning the nexthop addresses of the component's routes."""
    routers: set[str] = set()
    for event in component.events:
        owner = topology.router_for_address(event.attributes.nexthop)
        if owner is not None:
            routers.add(owner)
    return routers
