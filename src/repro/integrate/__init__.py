"""Integrating additional data sources into anomaly diagnosis.

Section III-D of the paper: BGP events alone cannot explain everything.
Three integrations close the gaps:

* :mod:`repro.integrate.policy` — correlate Stemming components with
  routing policies parsed from router configurations (D.1), pinpointing
  the configuration lines behind a behaviour.
* :mod:`repro.integrate.traffic` — weight TAMP and Stemming by traffic
  volume (D.2), ranking incidents by impact.
* :mod:`repro.integrate.igp` — temporally join the (low-volume) IGP LSA
  stream with a BGP incident (D.3) to test whether an interior routing
  change is the root cause.
"""

from repro.integrate.policy import PolicyCorrelation, correlate_policies
from repro.integrate.traffic import weighted_site_view
from repro.integrate.igp import IgpCorrelation, correlate_igp

__all__ = [
    "PolicyCorrelation",
    "correlate_policies",
    "weighted_site_view",
    "IgpCorrelation",
    "correlate_igp",
]
