"""AS paths.

The AS_PATH attribute records the sequence of autonomous systems a route
announcement has traversed. Stemming's event sequences embed the AS path
verbatim (``c = x h a1 … an p``), and TAMP's virtual trees link ASes in
path order, so the path type must be immutable, hashable, and cheap to
slice. We model the common case — a single AS_SEQUENCE — as a tuple of AS
numbers, with helpers for prepending, loop detection and origin extraction.
AS_SET segments (from aggregation) are supported as a frozen set suffix.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Optional


class ASPathError(ValueError):
    """Raised when AS path text or AS numbers are invalid."""


_MAX_ASN = 0xFFFFFFFF


def _check_asn(asn: int) -> int:
    if not 0 < asn <= _MAX_ASN:
        raise ASPathError(f"AS number {asn} out of range")
    return asn


class ASPath:
    """An AS path: an AS_SEQUENCE plus an optional trailing AS_SET.

    The textual form matches router output: space-separated AS numbers,
    with any AS_SET in braces at the end, e.g. ``"11423 209 {7018,13606}"``.

    >>> path = ASPath.parse("11423 209 701")
    >>> path.origin_as
    701
    >>> path.prepend(11423).sequence
    (11423, 11423, 209, 701)
    """

    __slots__ = ("sequence", "as_set", "_hash", "_collapsed")

    def __init__(
        self,
        sequence: Iterable[int] = (),
        as_set: Iterable[int] = (),
    ) -> None:
        seq = tuple(_check_asn(asn) for asn in sequence)
        aset = frozenset(_check_asn(asn) for asn in as_set)
        object.__setattr__(self, "sequence", seq)
        object.__setattr__(self, "as_set", aset)
        object.__setattr__(self, "_hash", hash((seq, aset)))
        object.__setattr__(self, "_collapsed", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ASPath is immutable")

    def __reduce__(self):
        # Slot pickling would call the blocked __setattr__ on load;
        # rebuild through __init__ so paths cross the repro.perf
        # worker-pool boundary.
        return (self.__class__, (self.sequence, self.as_set))

    def collapsed_tokens(self) -> tuple[tuple[str, int], ...]:
        """``("as", asn)`` tokens with consecutive prepends collapsed.

        Both Stemming's event sequences and TAMP's route chains embed
        the path this way; routes and events share ASPath instances, so
        caching here turns the per-event token build into a tuple reuse
        on the million-event hot paths.
        """
        collapsed = self._collapsed
        if collapsed is None:
            tokens: list[tuple[str, int]] = []
            previous: Optional[int] = None
            for asn in self.sequence:
                if asn == previous:
                    continue
                tokens.append(("as", asn))
                previous = asn
            collapsed = tuple(tokens)
            object.__setattr__(self, "_collapsed", collapsed)
        return collapsed

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse router-style AS path text.

        Accepts an empty string (locally originated routes have empty
        AS paths) and an optional brace-delimited AS_SET at the end.
        """
        return _parse_aspath_cached(text.strip())

    @property
    def origin_as(self) -> Optional[int]:
        """The AS that originated the route (rightmost sequence element).

        None for an empty path (locally originated) or when the path ends
        in an AS_SET (aggregated routes have ambiguous origins).
        """
        if self.as_set:
            return None
        if not self.sequence:
            return None
        return self.sequence[-1]

    @property
    def neighbor_as(self) -> Optional[int]:
        """The AS adjacent to the receiver (leftmost element)."""
        if not self.sequence:
            return None
        return self.sequence[0]

    def __len__(self) -> int:
        """Path length as used by the BGP decision process.

        Per RFC 4271 an AS_SET counts as a single hop regardless of size.
        """
        return len(self.sequence) + (1 if self.as_set else 0)

    def __iter__(self) -> Iterator[int]:
        return iter(self.sequence)

    def __contains__(self, asn: int) -> bool:
        return asn in self.sequence or asn in self.as_set

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """A new path with *asn* prepended *count* times (export action)."""
        if count < 1:
            raise ASPathError(f"prepend count {count} must be positive")
        return ASPath((asn,) * count + self.sequence, self.as_set)

    def has_loop(self, local_as: int) -> bool:
        """True if *local_as* already appears in the path.

        BGP's loop prevention: a router discards routes whose AS path
        contains its own AS.
        """
        return local_as in self

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield adjacent (upstream, downstream) AS pairs in path order.

        These become TAMP graph edges and Stemming stem candidates.
        """
        for left, right in zip(self.sequence, self.sequence[1:]):
            yield left, right

    def startswith(self, other: "ASPath") -> bool:
        """True if this path begins with *other*'s sequence."""
        return self.sequence[: len(other.sequence)] == other.sequence

    def __str__(self) -> str:
        parts = [str(asn) for asn in self.sequence]
        if self.as_set:
            parts.append("{" + ",".join(str(a) for a in sorted(self.as_set)) + "}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"ASPath({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self.sequence == other.sequence and self.as_set == other.as_set

    def __hash__(self) -> int:
        return self._hash


EMPTY_PATH = ASPath()


@lru_cache(maxsize=1 << 16)
def _parse_aspath_cached(text: str) -> ASPath:
    if not text:
        return EMPTY_PATH
    sequence: list[int] = []
    as_set: frozenset[int] = frozenset()
    brace = text.find("{")
    if brace >= 0:
        if not text.endswith("}"):
            raise ASPathError(f"unterminated AS_SET in {text!r}")
        set_text = text[brace + 1 : -1]
        members = [p for p in set_text.replace(",", " ").split() if p]
        if not members:
            raise ASPathError(f"empty AS_SET in {text!r}")
        try:
            as_set = frozenset(int(p) for p in members)
        except ValueError as exc:
            raise ASPathError(f"malformed AS_SET in {text!r}") from exc
        text = text[:brace]
    for token in text.split():
        if not token.isdigit():
            raise ASPathError(f"malformed AS number {token!r}")
        sequence.append(int(token))
    return ASPath(sequence, as_set)
