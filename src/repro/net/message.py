"""The BGP message model.

BGP speakers exchange UPDATE messages carrying announcements (prefixes plus
a shared attribute bundle) and withdrawals (bare prefixes — the protocol
does *not* echo the withdrawn attributes, which is exactly the gap the REX
collector fills in Section II by consulting its per-peer AdjRibIn). Session
management messages (OPEN / KEEPALIVE / NOTIFICATION) are modeled minimally:
the simulator needs them to drive the session FSM, not their wire format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.net.attributes import PathAttributes
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class Announcement:
    """A route announcement: one prefix with its path attributes."""

    prefix: Prefix
    attributes: PathAttributes


@dataclass(frozen=True, slots=True)
class Withdrawal:
    """A route withdrawal: just the prefix, as on the wire."""

    prefix: Prefix


@dataclass(frozen=True, slots=True)
class BGPUpdate:
    """One UPDATE message: withdrawals plus announcements.

    A single UPDATE may withdraw many prefixes and announce many prefixes
    sharing one attribute bundle; we keep per-prefix announcements for
    simplicity since the collector flattens them into per-prefix events
    anyway.
    """

    withdrawals: tuple[Withdrawal, ...] = ()
    announcements: tuple[Announcement, ...] = ()

    @classmethod
    def announce(
        cls, prefixes: Iterable[Prefix], attributes: PathAttributes
    ) -> "BGPUpdate":
        """Build an UPDATE announcing *prefixes* with shared attributes."""
        return cls(
            announcements=tuple(Announcement(p, attributes) for p in prefixes)
        )

    @classmethod
    def withdraw(cls, prefixes: Iterable[Prefix]) -> "BGPUpdate":
        """Build an UPDATE withdrawing *prefixes*."""
        return cls(withdrawals=tuple(Withdrawal(p) for p in prefixes))

    @property
    def is_empty(self) -> bool:
        return not self.withdrawals and not self.announcements

    def __len__(self) -> int:
        """Number of per-prefix routing changes carried."""
        return len(self.withdrawals) + len(self.announcements)


class NotificationCode(enum.Enum):
    """Why a session was torn down. Subset relevant to the case studies."""

    CEASE = "cease"
    MAX_PREFIX_EXCEEDED = "max-prefix-exceeded"
    HOLD_TIMER_EXPIRED = "hold-timer-expired"
    FSM_ERROR = "fsm-error"


@dataclass(frozen=True, slots=True)
class OpenMessage:
    """Session OPEN: identifies the speaker."""

    asn: int
    router_id: int
    hold_time: float = 90.0


@dataclass(frozen=True, slots=True)
class KeepaliveMessage:
    """Refreshes the hold timer."""


@dataclass(frozen=True, slots=True)
class NotificationMessage:
    """Terminates the session with a cause."""

    code: NotificationCode
    detail: str = ""


SessionMessage = OpenMessage | KeepaliveMessage | NotificationMessage
