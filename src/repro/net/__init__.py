"""Network primitives shared by every other subsystem.

This package defines the vocabulary of inter-domain routing used throughout
the reproduction: IPv4 prefixes and a radix trie over them, AS paths,
BGP path attributes, and the BGP message model. Everything here is a plain
value type with no protocol behaviour; protocol dynamics live in
:mod:`repro.bgp` and :mod:`repro.simulator`.
"""

from repro.net.prefix import Prefix, PrefixError
from repro.net.trie import PrefixTrie
from repro.net.aspath import ASPath, ASPathError
from repro.net.attributes import Origin, Community, PathAttributes
from repro.net.message import Announcement, Withdrawal, BGPUpdate

__all__ = [
    "Prefix",
    "PrefixError",
    "PrefixTrie",
    "ASPath",
    "ASPathError",
    "Origin",
    "Community",
    "PathAttributes",
    "Announcement",
    "Withdrawal",
    "BGPUpdate",
]
