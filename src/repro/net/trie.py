"""A binary radix trie keyed by IPv4 prefixes.

RIB lookups need longest-prefix match (to route an address) and covered /
covering queries (to find all more- or less-specific prefixes of a target,
which route-hijack checks rely on). A path-compressed binary trie gives all
three in O(32) node visits.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.net.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("prefix", "value", "has_value", "left", "right")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.value: Optional[V] = None
        self.has_value = False
        self.left: Optional[_Node[V]] = None
        self.right: Optional[_Node[V]] = None


def _bit_at(network: int, position: int) -> int:
    """The bit of *network* at *position* (0 = most significant)."""
    return (network >> (31 - position)) & 1


class PrefixTrie(Generic[V]):
    """Map from :class:`Prefix` to arbitrary values with radix queries.

    Supports exact ``get``/``insert``/``delete``, longest-prefix match on
    addresses, and iteration over covered (more specific) and covering
    (less specific) prefixes.

    >>> trie = PrefixTrie()
    >>> trie.insert(Prefix.parse("10.0.0.0/8"), "a")
    >>> trie.insert(Prefix.parse("10.1.0.0/16"), "b")
    >>> trie.longest_match_address(Prefix.parse("10.1.2.3/32").network)[1]
    'b'
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node(Prefix(0, 0))
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find_exact(prefix)
        return node is not None and node.has_value

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at *prefix*."""
        node = self._root
        while node.prefix.length < prefix.length:
            bit = _bit_at(prefix.network, node.prefix.length)
            child = node.right if bit else node.left
            if child is None:
                child = _Node(self._child_prefix(node, bit))
                if bit:
                    node.right = child
                else:
                    node.left = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """The value stored exactly at *prefix*, or *default*."""
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def delete(self, prefix: Prefix) -> bool:
        """Remove the value at *prefix*; returns True if one was present.

        Structural nodes are left in place; the trie is write-heavy in the
        collector and pruning interior nodes buys little.
        """
        node = self._find_exact(prefix)
        if node is None or not node.has_value:
            return False
        node.value = None
        node.has_value = False
        self._size -= 1
        return True

    def longest_match(self, prefix: Prefix) -> Optional[tuple[Prefix, V]]:
        """The most specific stored prefix that covers *prefix*."""
        best: Optional[tuple[Prefix, V]] = None
        node: Optional[_Node[V]] = self._root
        while node is not None and node.prefix.length <= prefix.length:
            if not node.prefix.contains(prefix):
                break
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[arg-type]
            if node.prefix.length == prefix.length:
                break
            bit = _bit_at(prefix.network, node.prefix.length)
            node = node.right if bit else node.left
        return best

    def longest_match_address(self, address: int) -> Optional[tuple[Prefix, V]]:
        """The most specific stored prefix covering a 32-bit *address*."""
        return self.longest_match(Prefix(address, 32))

    def covered(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """Yield stored (prefix, value) pairs equal to or inside *prefix*."""
        node = self._descend_to(prefix)
        if node is None:
            return
        yield from self._walk(node)

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """Yield stored pairs that contain *prefix*, shortest first."""
        node: Optional[_Node[V]] = self._root
        while node is not None and node.prefix.length <= prefix.length:
            if not node.prefix.contains(prefix):
                return
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            if node.prefix.length == prefix.length:
                return
            bit = _bit_at(prefix.network, node.prefix.length)
            node = node.right if bit else node.left

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """Yield all stored (prefix, value) pairs in trie order."""
        yield from self._walk(self._root)

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    @staticmethod
    def _child_prefix(node: _Node[V], bit: int) -> Prefix:
        length = node.prefix.length + 1
        network = node.prefix.network
        if bit:
            network |= 1 << (32 - length)
        return Prefix(network, length)

    def _find_exact(self, prefix: Prefix) -> Optional[_Node[V]]:
        node: Optional[_Node[V]] = self._root
        while node is not None and node.prefix.length < prefix.length:
            bit = _bit_at(prefix.network, node.prefix.length)
            node = node.right if bit else node.left
        if node is not None and node.prefix == prefix:
            return node
        return None

    def _descend_to(self, prefix: Prefix) -> Optional[_Node[V]]:
        node: Optional[_Node[V]] = self._root
        while node is not None and node.prefix.length < prefix.length:
            bit = _bit_at(prefix.network, node.prefix.length)
            node = node.right if bit else node.left
        if node is not None and prefix.contains(node.prefix):
            return node
        return None

    def _walk(self, node: _Node[V]) -> Iterator[tuple[Prefix, V]]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.has_value:
                yield current.prefix, current.value  # type: ignore[misc]
            if current.right is not None:
                stack.append(current.right)
            if current.left is not None:
                stack.append(current.left)
