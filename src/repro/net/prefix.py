"""IPv4 prefixes.

A :class:`Prefix` is the unit of reachability in BGP: a network address plus
a mask length, e.g. ``1.2.3.0/24``. TAMP weighs edges by *unique prefix*
counts and Stemming correlates events per prefix, so prefixes must be cheap
to hash, compare and store in sets. Internally a prefix is a pair of ints
(network as a 32-bit integer, mask length), which makes set operations over
hundreds of thousands of prefixes fast enough for the Table I benchmarks.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator


class PrefixError(ValueError):
    """Raised when a prefix string or (network, length) pair is invalid."""


_MAX_IPV4 = 0xFFFFFFFF


def _parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer.

    Raises :class:`PrefixError` on malformed input; we do not accept
    shorthand forms like ``10/8`` because collector data is always fully
    dotted.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Prefix:
    """An IPv4 prefix: a network address and a mask length.

    Instances are immutable, hashable and totally ordered (by network then
    length), so they can key RIB dictionaries and live in TAMP edge sets.

    >>> p = Prefix.parse("1.2.3.0/24")
    >>> str(p)
    '1.2.3.0/24'
    >>> p.contains(Prefix.parse("1.2.3.128/25"))
    True
    """

    __slots__ = ("network", "length", "_hash")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise PrefixError(f"mask length {length} out of range")
        if not 0 <= network <= _MAX_IPV4:
            raise PrefixError(f"network {network:#x} out of range")
        mask = _mask_for(length)
        if network & ~mask & _MAX_IPV4:
            raise PrefixError(
                f"host bits set in {_format_ipv4(network)}/{length}"
            )
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "_hash", hash((network, length)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def __reduce__(self):
        # Default slot pickling would call the blocked __setattr__ on
        # load; reconstructing through __init__ keeps prefixes portable
        # across the repro.perf worker-pool boundary.
        return (self.__class__, (self.network, self.length))

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` text into a prefix.

        A bare address parses as a /32 host route, matching how routers
        print host routes.
        """
        return _parse_prefix_cached(text)

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        return _mask_for(self.length)

    @property
    def first_address(self) -> int:
        """Lowest address covered by this prefix (the network address)."""
        return self.network

    @property
    def last_address(self) -> int:
        """Highest address covered by this prefix (the broadcast address)."""
        return self.network | (~self.mask & _MAX_IPV4)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, other: "Prefix") -> bool:
        """True if *other* is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.mask) == self.network

    def contains_address(self, address: int) -> bool:
        """True if the 32-bit *address* falls inside this prefix."""
        return (address & self.mask) == self.network

    def supernet(self) -> "Prefix":
        """The immediately covering prefix (one bit shorter).

        Raises :class:`PrefixError` at 0.0.0.0/0, which has no supernet.
        """
        if self.length == 0:
            raise PrefixError("0.0.0.0/0 has no supernet")
        new_length = self.length - 1
        return Prefix(self.network & _mask_for(new_length), new_length)

    def subnets(self) -> tuple["Prefix", "Prefix"]:
        """Split into the two immediately more-specific halves."""
        if self.length == 32:
            raise PrefixError("/32 cannot be subdivided")
        new_length = self.length + 1
        low = Prefix(self.network, new_length)
        high = Prefix(self.network | (1 << (32 - new_length)), new_length)
        return low, high

    def split(self, length: int) -> Iterator["Prefix"]:
        """Yield all subnets of this prefix at the given mask *length*."""
        if length < self.length:
            raise PrefixError(
                f"cannot split /{self.length} into shorter /{length}"
            )
        if length > 32:
            raise PrefixError(f"mask length {length} out of range")
        step = 1 << (32 - length)
        for network in range(self.network, self.last_address + 1, step):
            yield Prefix(network, length)

    def key(self) -> tuple[int, int]:
        """A compact, orderable (network, length) tuple."""
        return (self.network, self.length)

    def __str__(self) -> str:
        return f"{_format_ipv4(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __lt__(self, other: "Prefix") -> bool:
        return self.key() < other.key()

    def __le__(self, other: "Prefix") -> bool:
        return self.key() <= other.key()

    def __gt__(self, other: "Prefix") -> bool:
        return self.key() > other.key()

    def __ge__(self, other: "Prefix") -> bool:
        return self.key() >= other.key()

    def __hash__(self) -> int:
        return self._hash


@lru_cache(maxsize=None)
def _mask_for(length: int) -> int:
    if length == 0:
        return 0
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


@lru_cache(maxsize=1 << 18)
def _parse_prefix_cached(text: str) -> Prefix:
    """Cached parse: collectors re-see the same prefix strings constantly."""
    if "/" in text:
        address_text, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise PrefixError(f"malformed mask length in {text!r}")
        length = int(length_text)
    else:
        address_text, length = text, 32
    return Prefix(_parse_ipv4(address_text), length)


def parse_address(text: str) -> int:
    """Parse dotted-quad text into a 32-bit integer address."""
    return _parse_ipv4(text)


def cidr_cover(start: int, end: int) -> list[Prefix]:
    """The minimal list of prefixes exactly covering [*start*, *end*).

    Used to express address *ranges* (e.g. "the lower 78% of the prefix
    space") as prefix-list entries, the way operators do when splitting a
    table across links.
    """
    if not 0 <= start <= end <= _MAX_IPV4 + 1:
        raise PrefixError(f"invalid address range [{start}, {end})")
    prefixes: list[Prefix] = []
    cursor = start
    while cursor < end:
        # Largest block that is aligned at cursor and fits in the range.
        max_align = cursor & -cursor if cursor else _MAX_IPV4 + 1
        size = max_align
        while size > end - cursor:
            size //= 2
        length = 32 - size.bit_length() + 1
        prefixes.append(Prefix(cursor, length))
        cursor += size
    return prefixes


def format_address(value: int) -> str:
    """Format a 32-bit integer address as dotted-quad text."""
    if not 0 <= value <= _MAX_IPV4:
        raise PrefixError(f"address {value:#x} out of range")
    return _format_ipv4(value)
