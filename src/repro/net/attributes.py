"""BGP path attributes.

Every route a BGP speaker holds carries a bundle of path attributes:
NEXT_HOP, AS_PATH, ORIGIN, LOCAL_PREF, MED, and community tags. The bundle
is the payload of announcements, the content of RIB entries, and — crucially
for this paper — the raw material of Stemming sequences and TAMP trees.
Bundles are immutable so they can be shared freely between RIBs, event
streams and analysis structures without defensive copying.
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Iterable, Optional

from repro.net.aspath import ASPath


class Origin(enum.IntEnum):
    """The BGP ORIGIN attribute. Lower is preferred in route selection."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class Community:
    """A BGP community tag, e.g. ``11423:65350``.

    Communities drive the policy interactions in Sections III-D.1 and IV-D:
    Berkeley's rate-limiting router keys LOCAL_PREF off CalREN's tags, and
    the Figure 6 incident is a mis-applied tag. The canonical textual form
    is ``asn:value``.
    """

    __slots__ = ("asn", "value", "_hash")

    def __init__(self, asn: int, value: int) -> None:
        if not 0 <= asn <= 0xFFFF:
            raise ValueError(f"community AS part {asn} out of range")
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"community value part {value} out of range")
        object.__setattr__(self, "asn", asn)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash((asn, value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Community is immutable")

    @classmethod
    def parse(cls, text: str) -> "Community":
        return _parse_community_cached(text.strip())

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"

    def __repr__(self) -> str:
        return f"Community({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return self.asn == other.asn and self.value == other.value

    def __lt__(self, other: "Community") -> bool:
        return (self.asn, self.value) < (other.asn, other.value)

    def __hash__(self) -> int:
        return self._hash


@lru_cache(maxsize=1 << 12)
def _parse_community_cached(text: str) -> Community:
    asn_text, sep, value_text = text.partition(":")
    if not sep or not asn_text.isdigit() or not value_text.isdigit():
        raise ValueError(f"malformed community {text!r}")
    return Community(int(asn_text), int(value_text))


DEFAULT_LOCAL_PREF = 100


class PathAttributes:
    """The immutable attribute bundle attached to a BGP route.

    *nexthop* is a 32-bit integer address (see
    :func:`repro.net.prefix.parse_address`); keeping it numeric makes
    attribute bundles compact when an ISP-scale RIB holds 1.5M routes.
    """

    __slots__ = (
        "nexthop",
        "as_path",
        "origin",
        "local_pref",
        "med",
        "communities",
        "originator_id",
        "cluster_list",
        "_hash",
    )

    def __init__(
        self,
        nexthop: int,
        as_path: ASPath,
        origin: Origin = Origin.IGP,
        local_pref: int = DEFAULT_LOCAL_PREF,
        med: Optional[int] = None,
        communities: Iterable[Community] = (),
        originator_id: Optional[int] = None,
        cluster_list: Iterable[int] = (),
    ) -> None:
        object.__setattr__(self, "nexthop", nexthop)
        object.__setattr__(self, "as_path", as_path)
        object.__setattr__(self, "origin", Origin(origin))
        object.__setattr__(self, "local_pref", local_pref)
        object.__setattr__(self, "med", med)
        object.__setattr__(self, "communities", frozenset(communities))
        object.__setattr__(self, "originator_id", originator_id)
        object.__setattr__(self, "cluster_list", tuple(cluster_list))
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.nexthop,
                    self.as_path,
                    self.origin,
                    self.local_pref,
                    self.med,
                    self.communities,
                    self.originator_id,
                    self.cluster_list,
                )
            ),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathAttributes is immutable")

    def __reduce__(self) -> tuple:
        # Slot pickling would call the blocked __setattr__ on load;
        # rebuild through __init__ instead (routes cross process
        # boundaries when picture builds shard across workers).
        return (
            PathAttributes,
            (
                self.nexthop,
                self.as_path,
                self.origin,
                self.local_pref,
                self.med,
                self.communities,
                self.originator_id,
                self.cluster_list,
            ),
        )

    def replace(self, **changes: object) -> "PathAttributes":
        """A copy with the given fields replaced (policy actions use this)."""
        fields = {
            "nexthop": self.nexthop,
            "as_path": self.as_path,
            "origin": self.origin,
            "local_pref": self.local_pref,
            "med": self.med,
            "communities": self.communities,
            "originator_id": self.originator_id,
            "cluster_list": self.cluster_list,
        }
        unknown = set(changes) - set(fields)
        if unknown:
            raise TypeError(f"unknown attribute fields {sorted(unknown)}")
        fields.update(changes)  # type: ignore[arg-type]
        return PathAttributes(**fields)  # type: ignore[arg-type]

    def has_community(self, community: Community) -> bool:
        return community in self.communities

    def add_community(self, community: Community) -> "PathAttributes":
        return self.replace(communities=self.communities | {community})

    def remove_community(self, community: Community) -> "PathAttributes":
        return self.replace(communities=self.communities - {community})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathAttributes):
            return NotImplemented
        return (
            self.nexthop == other.nexthop
            and self.as_path == other.as_path
            and self.origin == other.origin
            and self.local_pref == other.local_pref
            and self.med == other.med
            and self.communities == other.communities
            and self.originator_id == other.originator_id
            and self.cluster_list == other.cluster_list
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        from repro.net.prefix import format_address

        parts = [
            f"nexthop={format_address(self.nexthop)}",
            f"as_path={str(self.as_path)!r}",
        ]
        if self.local_pref != DEFAULT_LOCAL_PREF:
            parts.append(f"local_pref={self.local_pref}")
        if self.med is not None:
            parts.append(f"med={self.med}")
        if self.communities:
            tags = ",".join(str(c) for c in sorted(self.communities))
            parts.append(f"communities={tags}")
        return f"PathAttributes({', '.join(parts)})"
