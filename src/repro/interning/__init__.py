"""Token and prefix interning for the TAMP hot path.

The TAMP picture builder's workload is millions of dictionary and set
operations whose keys are ``(namespace, value)`` token tuples and
:class:`~repro.net.prefix.Prefix` objects. Hashing a tuple walks its
elements; hashing a small int is (nearly) the int itself, and two ints
pack into a single int edge key. Interning the four token namespaces
(``router``, ``nh``, ``as``, ``pfx``) to dense contiguous ids and
packing each prefix's bits into a value-derived id
(:func:`pack_prefix`) therefore turns the hot loops into plain int
dict/set traffic — the cheapest primitives CPython has.

The contract that keeps the rest of the system oblivious is
**decode at the boundary** (DESIGN.md §10): interned ids never escape
the builder; every public query on :class:`repro.tamp.TampGraph` and
:class:`repro.tamp.TampTree` decodes ids back to real tokens/prefixes,
and decoding happens on pruned (small) graphs, never per-route.

Symbol tables are **per build** — created by a builder, carried by the
graphs it produces, and garbage-collected with them. There is no
module-global table (rules PIPE001/POOL002 stay clean by construction),
so parallel shards each grow their own table and the parent merges them
by offset remap at join time (:meth:`SymbolTable.remap_tokens`).
"""

from repro.interning.idset import IdSet, MaskIdSet
from repro.interning.symbols import (
    EDGE_MASK,
    EDGE_SHIFT,
    PREFIX_MASK,
    PREFIX_SHIFT,
    SymbolTable,
    pack_edge,
    pack_prefix,
    unpack_edge,
    unpack_prefix,
)

__all__ = [
    "EDGE_MASK",
    "EDGE_SHIFT",
    "PREFIX_MASK",
    "PREFIX_SHIFT",
    "IdSet",
    "MaskIdSet",
    "SymbolTable",
    "pack_edge",
    "pack_prefix",
    "unpack_edge",
    "unpack_prefix",
]
