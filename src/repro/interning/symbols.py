"""Per-build symbol tables mapping tokens and prefixes to int ids.

A :class:`SymbolTable` owns two id spaces:

* **token ids** — one per distinct ``(namespace, value)`` node token,
  assigned densely in first-appearance order from a per-table map;
* **prefix ids** — *value-derived*: a prefix's id is computed from its
  bits (:func:`pack_prefix`), not assigned from a table.

Prefixes get their own space because they are what edge *weights* count:
a ``dict[prefix_id, refcount]`` per edge plus :class:`IdSet` unions over
prefix ids replace the per-edge ``set[Prefix]`` object churn. A prefix
that also appears as a leaf *node* additionally has a token id for its
``("pfx", prefix)`` token, memoized by :meth:`pfx_token_id`.

Prefix ids being pure functions of the prefix is what makes the
parallel build cheap: every worker shard computes *identical* prefix
ids with no shared state, so joining shards never remaps a refcount
store's keys — only the (few thousand) token ids need translation. It
also makes encoding two attribute loads and two shifts instead of a
dict probe through a Python-level ``Prefix.__hash__``, which at 1.5M
routes per picture is a measurable slice of the whole build. The host
bits are shifted out (a ``/L`` prefix has exactly ``L`` meaningful
network bits) so consecutive prefixes get consecutive ids and the
id-keyed stores probe well-spread dict slots.

Token ids stay table-assigned and append-only, so a graph derived from
another (pruning, copies) can share its parent's table safely. Edge
keys pack two token ids into one int (:func:`pack_edge`) so an edge
lookup is a single small-int hash.
"""

from __future__ import annotations

from typing import Optional

from repro.collector.events import Token
from repro.net.prefix import Prefix

#: Child token id occupies the low bits of a packed edge key. 32 bits
#: allows four billion distinct nodes — vastly above any real table.
EDGE_SHIFT = 32
EDGE_MASK = (1 << EDGE_SHIFT) - 1

#: Mask length occupies the bits above the (host-bit-stripped) network
#: bits of a packed prefix id.
PREFIX_SHIFT = 32
PREFIX_MASK = (1 << PREFIX_SHIFT) - 1


def pack_edge(parent_id: int, child_id: int) -> int:
    """Pack a (parent, child) token-id pair into one int edge key."""
    return (parent_id << EDGE_SHIFT) | child_id


def unpack_edge(edge_id: int) -> tuple[int, int]:
    """Invert :func:`pack_edge`."""
    return edge_id >> EDGE_SHIFT, edge_id & EDGE_MASK


def pack_prefix(prefix: Prefix) -> int:
    """The value-derived id of *prefix*: ``length | network-bits``.

    The network's host bits are shifted out, so a /24 walk through
    adjacent networks yields consecutive ids — dict slots stay spread
    even for the stride-aligned prefix blocks synthetic workloads (and
    real aggregation) produce. Hot loops inline this expression rather
    than paying a call per prefix; keep them in sync.
    """
    return (prefix.length << PREFIX_SHIFT) | (
        prefix.network >> (32 - prefix.length)
    )


def unpack_prefix(pid: int) -> Prefix:
    """Invert :func:`pack_prefix`."""
    length = pid >> PREFIX_SHIFT
    return Prefix((pid & PREFIX_MASK) << (32 - length), length)


class SymbolTable:
    """Bidirectional token ↔ dense-int mapping plus prefix-id codecs.

    Per-build state: construct one per picture build (or one per worker
    shard) and let it die with the graphs that reference it. Never store
    one at module level.

    Prefix ids are value-derived (:func:`pack_prefix`), so the prefix
    side holds no assignment state — only a decode memo that keeps
    repeated :meth:`prefix` calls from constructing duplicate
    :class:`Prefix` objects at the decode boundary.
    """

    __slots__ = ("_token_ids", "_tokens", "_prefix_memo", "_pfx_tids")

    def __init__(self) -> None:
        self._token_ids: dict[Token, int] = {}
        self._tokens: list[Token] = []
        #: prefix id -> decoded Prefix, filled lazily at the decode
        #: boundary.
        self._prefix_memo: dict[int, Prefix] = {}
        #: prefix id -> token id of its ("pfx", prefix) leaf token,
        #: interned lazily (most prefixes never become nodes when
        #: include_prefix_leaves is off).
        self._pfx_tids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def intern_token(self, token: Token) -> int:
        """The id for *token*, assigning the next id on first sight."""
        ids = self._token_ids
        tid = ids.get(token)
        if tid is None:
            tid = len(ids)
            ids[token] = tid
            self._tokens.append(token)
        return tid

    def intern_prefix(self, prefix: Prefix) -> int:
        """The id for *prefix* — pure arithmetic, no table state."""
        return (prefix.length << PREFIX_SHIFT) | (
            prefix.network >> (32 - prefix.length)
        )

    def pfx_token_id(self, pid: int) -> int:
        """Token id of the ``("pfx", prefix)`` leaf node for prefix *pid*."""
        tid = self._pfx_tids.get(pid)
        if tid is None:
            tid = self.intern_token(("pfx", self.prefix(pid)))
            self._pfx_tids[pid] = tid
        return tid

    @property
    def pfx_token_id_map(self) -> dict[int, int]:
        """The live prefix-id → leaf-token-id memo behind
        :meth:`pfx_token_id`.

        Exposed for hot loops that want the common (already-memoized)
        case as a bound ``dict.get`` instead of a method call per
        prefix, falling back to :meth:`pfx_token_id` on a miss. Callers
        must treat the mapping as read-only.
        """
        return self._pfx_tids

    def token_id(self, token: Token) -> Optional[int]:
        """The id for *token* if already interned, else None."""
        return self._token_ids.get(token)

    def prefix_id(self, prefix: Prefix) -> int:
        """Alias of :meth:`intern_prefix`: value-derived, never None."""
        return (prefix.length << PREFIX_SHIFT) | (
            prefix.network >> (32 - prefix.length)
        )

    # ------------------------------------------------------------------
    # Decoding (the boundary)
    # ------------------------------------------------------------------

    def token(self, tid: int) -> Token:
        return self._tokens[tid]

    def prefix(self, pid: int) -> Prefix:
        prefix = self._prefix_memo.get(pid)
        if prefix is None:
            length = pid >> PREFIX_SHIFT
            prefix = Prefix((pid & PREFIX_MASK) << (32 - length), length)
            self._prefix_memo[pid] = prefix
        return prefix

    def decode_edge(self, edge_id: int) -> tuple[Token, Token]:
        """Decode a packed edge key back to a (parent, child) token pair."""
        tokens = self._tokens
        return (tokens[edge_id >> EDGE_SHIFT], tokens[edge_id & EDGE_MASK])

    @property
    def token_count(self) -> int:
        return len(self._tokens)

    # ------------------------------------------------------------------
    # Merging (parallel shard join)
    # ------------------------------------------------------------------

    def remap_tokens(self, other: "SymbolTable") -> list[int]:
        """Intern every token of *other*; return the old→new id map.

        The list is indexed by *other*'s token ids. Interning in
        *other*'s id order keeps first-appearance ordering across a
        shard join identical to a serial build over the same trees.
        Prefix ids need no counterpart: they are value-derived, so every
        table already agrees on them.
        """
        intern = self.intern_token
        return [intern(token) for token in other._tokens]
