"""Per-build symbol tables mapping tokens and prefixes to dense ints.

A :class:`SymbolTable` owns two id spaces:

* **token ids** — one per distinct ``(namespace, value)`` node token;
* **prefix ids** — one per distinct :class:`~repro.net.prefix.Prefix`.

Prefixes get their own space because they are what edge *weights* count:
a ``dict[prefix_id, refcount]`` per edge plus :class:`IdSet` unions over
prefix ids replace the per-edge ``set[Prefix]`` object churn. A prefix
that also appears as a leaf *node* additionally has a token id for its
``("pfx", prefix)`` token, memoized by :meth:`pfx_token_id`.

Ids are assigned in first-appearance order and never reused, so a table
is append-only: a graph derived from another (pruning, copies) can share
its parent's table safely. Edge keys pack two token ids into one int
(:func:`pack_edge`) so an edge lookup is a single small-int hash.
"""

from __future__ import annotations

from typing import Optional

from repro.collector.events import Token
from repro.net.prefix import Prefix

#: Child token id occupies the low bits of a packed edge key. 32 bits
#: allows four billion distinct nodes — vastly above any real table.
EDGE_SHIFT = 32
EDGE_MASK = (1 << EDGE_SHIFT) - 1


def pack_edge(parent_id: int, child_id: int) -> int:
    """Pack a (parent, child) token-id pair into one int edge key."""
    return (parent_id << EDGE_SHIFT) | child_id


def unpack_edge(edge_id: int) -> tuple[int, int]:
    """Invert :func:`pack_edge`."""
    return edge_id >> EDGE_SHIFT, edge_id & EDGE_MASK


class SymbolTable:
    """Bidirectional token/prefix ↔ dense-int id mapping.

    Per-build state: construct one per picture build (or one per worker
    shard) and let it die with the graphs that reference it. Never store
    one at module level.
    """

    __slots__ = ("_token_ids", "_tokens", "_prefix_ids", "_prefixes",
                 "_pfx_tids")

    def __init__(self) -> None:
        self._token_ids: dict[Token, int] = {}
        self._tokens: list[Token] = []
        self._prefix_ids: dict[Prefix, int] = {}
        self._prefixes: list[Prefix] = []
        #: prefix id -> token id of its ("pfx", prefix) leaf token,
        #: interned lazily (most prefixes never become nodes when
        #: include_prefix_leaves is off).
        self._pfx_tids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def intern_token(self, token: Token) -> int:
        """The id for *token*, assigning the next id on first sight."""
        ids = self._token_ids
        tid = ids.get(token)
        if tid is None:
            tid = len(ids)
            ids[token] = tid
            self._tokens.append(token)
        return tid

    def intern_prefix(self, prefix: Prefix) -> int:
        """The id for *prefix*, assigning the next id on first sight."""
        ids = self._prefix_ids
        pid = ids.get(prefix)
        if pid is None:
            pid = len(ids)
            ids[prefix] = pid
            self._prefixes.append(prefix)
        return pid

    def pfx_token_id(self, pid: int) -> int:
        """Token id of the ``("pfx", prefix)`` leaf node for prefix *pid*."""
        tid = self._pfx_tids.get(pid)
        if tid is None:
            tid = self.intern_token(("pfx", self._prefixes[pid]))
            self._pfx_tids[pid] = tid
        return tid

    @property
    def pfx_token_id_map(self) -> dict[int, int]:
        """The live prefix-id → leaf-token-id memo behind
        :meth:`pfx_token_id`.

        Exposed for hot loops that want the common (already-memoized)
        case as a bound ``dict.get`` instead of a method call per
        prefix, falling back to :meth:`pfx_token_id` on a miss. Callers
        must treat the mapping as read-only.
        """
        return self._pfx_tids

    @property
    def prefix_id_map(self) -> dict[Prefix, int]:
        """The live prefix → id mapping behind :meth:`intern_prefix`.

        Exposed for hot loops that want the common (already-interned)
        case as a bound ``dict.get`` instead of a method call per
        prefix, falling back to :meth:`intern_prefix` on a miss.
        Callers must treat the mapping as read-only.
        """
        return self._prefix_ids

    def token_id(self, token: Token) -> Optional[int]:
        """The id for *token* if already interned, else None."""
        return self._token_ids.get(token)

    def prefix_id(self, prefix: Prefix) -> Optional[int]:
        """The id for *prefix* if already interned, else None."""
        return self._prefix_ids.get(prefix)

    # ------------------------------------------------------------------
    # Decoding (the boundary)
    # ------------------------------------------------------------------

    def token(self, tid: int) -> Token:
        return self._tokens[tid]

    def prefix(self, pid: int) -> Prefix:
        return self._prefixes[pid]

    def decode_edge(self, edge_id: int) -> tuple[Token, Token]:
        """Decode a packed edge key back to a (parent, child) token pair."""
        tokens = self._tokens
        return (tokens[edge_id >> EDGE_SHIFT], tokens[edge_id & EDGE_MASK])

    @property
    def token_count(self) -> int:
        return len(self._tokens)

    @property
    def prefix_count(self) -> int:
        return len(self._prefixes)

    # ------------------------------------------------------------------
    # Merging (parallel shard join)
    # ------------------------------------------------------------------

    def remap_tokens(self, other: "SymbolTable") -> list[int]:
        """Intern every token of *other*; return the old→new id map.

        The list is indexed by *other*'s token ids. Interning in
        *other*'s id order keeps first-appearance ordering across a
        shard join identical to a serial build over the same trees.
        """
        intern = self.intern_token
        return [intern(token) for token in other._tokens]

    def remap_prefixes(self, other: "SymbolTable") -> list[int]:
        """Intern every prefix of *other*; return the old→new id map."""
        intern = self.intern_prefix
        return [intern(prefix) for prefix in other._prefixes]
