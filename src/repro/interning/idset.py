"""Sets of dense interned ids.

Two interchangeable backends:

* :class:`IdSet` — a thin ``set[int]`` subclass. **This is the default.**
* :class:`MaskIdSet` — a Python-int bitmask (bit *i* set ⇔ id *i* is a
  member), kept for the ablation benchmark.

The issue that introduced this layer proposed bitmasks first, with a
fallback "if bitmasks lose in benchmarks" — and they do, on the build
side. Python ints are immutable, so ``bits |= member_mask`` copies the
whole mask; accumulating a 1.5M-route view that way is ~6× slower than
``set.update`` (which mutates in place in C), and a singleton leaf mask
for a high prefix id costs kilobytes where a one-element set costs
bytes. Masks only win on merge-heavy union workloads over already-built
masks (a single ``|`` unions thousands of members), which the build is
not: see the "object sets vs interned bitsets" row in
``bench_results/BENCH_ablations.json``. Both backends beat ``set[Prefix]``
— the win comes from interning (int hashing), the backend choice is
second-order.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class IdSet(set):
    """A set of dense non-negative int ids (default backend).

    Inherits every C-speed ``set`` operation; adds the small protocol
    the TAMP builder uses (:meth:`count`, bitmask interop).
    """

    __slots__ = ()

    def count(self) -> int:
        """Number of member ids (the paper's unique-prefix weight)."""
        return len(self)

    def mask(self) -> int:
        """The equivalent bitmask (bit *i* set ⇔ *i* in self)."""
        bits = 0
        for member in self:
            bits |= 1 << member
        return bits

    @classmethod
    def from_mask(cls, bits: int) -> "IdSet":
        """The set of bit positions set in *bits*."""
        return cls(_iter_bits(bits))


class MaskIdSet:
    """Bitmask-backed id set (ablation backend; same protocol as IdSet).

    ``add``/``update`` pay an O(size) int copy per call — the reason
    this is not the default — while ``union`` of two built masks and
    ``count`` (``int.bit_count``) are where masks shine.
    """

    __slots__ = ("bits",)

    def __init__(self, ids: Iterable[int] = ()) -> None:
        bits = 0
        for member in ids:
            bits |= 1 << member
        self.bits = bits

    def add(self, member: int) -> None:
        self.bits |= 1 << member

    def discard(self, member: int) -> None:
        self.bits &= ~(1 << member)

    def update(self, ids: Iterable[int]) -> None:
        bits = 0
        for member in ids:
            bits |= 1 << member
        self.bits |= bits

    def union_update(self, other: "MaskIdSet") -> None:
        self.bits |= other.bits

    def count(self) -> int:
        return self.bits.bit_count()

    def mask(self) -> int:
        return self.bits

    @classmethod
    def from_mask(cls, bits: int) -> "MaskIdSet":
        made = cls()
        made.bits = bits
        return made

    def __contains__(self, member: int) -> bool:
        return (self.bits >> member) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        return _iter_bits(self.bits)

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __bool__(self) -> bool:
        return self.bits != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MaskIdSet):
            return self.bits == other.bits
        if isinstance(other, (set, frozenset)):
            return self.bits == IdSet(other).mask()
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("MaskIdSet is mutable and unhashable")

    def __repr__(self) -> str:
        return f"MaskIdSet({sorted(self)!r})"


def _iter_bits(bits: int) -> Iterator[int]:
    """Yield set-bit positions in ascending order."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low
