"""Shard runner and fan-in: N monitor pipelines behind one picture.

Horizontal scaling for the serve layer (DESIGN.md §14): the event
stream partitions by peer (:func:`repro.pipeline.sources
.shard_for_peer`), each shard runs the same two-stage analysis
pipeline the monitor does — windowed Stemming, TAMP annotation, the
incident lifecycle — over its slice, and :class:`ShardSet` sums the
per-shard TAMP graphs into one picture with
:meth:`~repro.tamp.graph.TampGraph.merge_graph`. Because every
(peer, prefix) route lives on exactly one shard, the merged per-edge
refcounts equal an unsharded run's and the merged picture renders
byte-identical to it.

This module is the **sanctioned side of the SRV001 boundary**: every
piece of live pipeline state is held under a ``live_``-prefixed
attribute, and only this module (and the snapshot layer) may touch
those. HTTP handlers read through :class:`ShardSet`'s snapshot
accessors — ``version()``, ``merged_graph()``, ``incident_rows()``,
``status()`` — which are safe at any await point because shard
pipelines only advance inside explicit ``feed()`` calls on the same
event loop.

Checkpoints are byte-compatible with ``repro monitor``'s: a shard
writes the same :class:`~repro.pipeline.checkpoint.CheckpointState`
(source = its :class:`~repro.pipeline.sources.ShardView` description)
into ``<root>/shard-<k>/``, so a shard killed hard — even one run by
``run_monitor`` in another process, as the chaos test does — resumes
here bit-identically, and vice versa.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.collector.events import BGPEvent
from repro.incidents.feed import TransitionWatcher, load_incident_rows
from repro.incidents.manager import IncidentManager
from repro.incidents.store import INCIDENT_DB, IncidentStore
from repro.pipeline.checkpoint import CheckpointState, CheckpointStore
from repro.pipeline.monitor import MonitorConfig
from repro.pipeline.runtime import Batch, Pipeline
from repro.pipeline.sources import ShardView, Source
from repro.pipeline.windows import (
    TampAnnotator,
    WindowedStemmer,
    WindowReport,
    WindowState,
)
from repro.tamp.graph import TampGraph

#: A shard's cache-relevant position: (window index, pulse count at
#: the last window boundary). Monotonic in both components.
ShardVersion = tuple[int, int]


def shard_dir(root: Path | str, shard: int) -> Path:
    """The checkpoint directory for shard *shard* under *root*."""
    return Path(root) / f"shard-{shard}"


class PipelineShard:
    """One shard's monitor pipeline, pumped batch-by-batch.

    A restructured :func:`~repro.pipeline.monitor.run_monitor`: same
    stages, same checkpoint format, but instead of owning the loop it
    exposes :meth:`feed` so the serve driver can interleave event
    processing with request handling on one asyncio loop.
    """

    def __init__(
        self,
        source: Source,
        config: MonitorConfig,
        *,
        shard: int = 0,
        checkpoint_dir: Optional[Path | str] = None,
        resume: bool = False,
    ) -> None:
        self.shard = shard
        self.source = source
        self.config = config
        self.store: Optional[CheckpointStore] = None
        self.incident_store: Optional[IncidentStore] = None
        if checkpoint_dir is not None:
            self.store = CheckpointStore(
                checkpoint_dir, keep=config.keep_checkpoints
            )
            self.incident_store = IncidentStore(
                self.store.directory / INCIDENT_DB
            )
        self.live_window = WindowedStemmer(
            config.window,
            config.slide,
            min_strength=config.min_strength,
            max_components=config.max_components,
            workers=config.workers,
        )
        self.live_tamp = TampAnnotator()
        self.live_pipeline = Pipeline(
            [self.live_window, self.live_tamp],
            max_queue=config.max_queue,
            policy=config.policy,
        )
        self.live_manager = IncidentManager(
            policy=config.incident_policy()
        )
        self.offset = 0
        self.reports_emitted = 0
        self.events_done = 0
        self.latest_window_end = 0.0
        self.finished = False

        if resume:
            self._restore()
        elif self.store is not None:
            # Fresh run over a dirty directory: wipe any report-log
            # rows a previous run left, or replay would duplicate.
            self.store.truncate_reports(0)
            if self.incident_store is not None:
                self.incident_store.sync(self.live_manager, 0)
        self._last_checkpoint_window = self.live_window.window_index

    def _restore(self) -> None:
        assert self.store is not None
        state = self.store.latest()
        if state is None:
            self.store.truncate_reports(0)
            if self.incident_store is not None:
                self.incident_store.sync(self.live_manager, 0)
            return
        state.matches(self.source.describe(), self.config.describe())
        self.live_window.restore_state(WindowState.from_dict(state.window))
        self.live_tamp.restore_state(state.tamp)
        self.live_pipeline.restore_stats(state.stats)
        self.offset = state.offset
        self.reports_emitted = state.reports_emitted
        self.store.truncate_reports(self.reports_emitted)
        if state.incidents is not None:
            self.live_manager.import_state(state.incidents)
        if self.incident_store is not None:
            self.incident_store.sync(
                self.live_manager, self.reports_emitted
            )

    # -- Feeding -------------------------------------------------------

    def feed(self, events: list[BGPEvent]) -> list:
        """Pump a batch of this shard's events; return changed records.

        The return value is what :meth:`IncidentManager.ingest`
        reported changed across any window reports the batch closed —
        the transition feed's input.
        """
        if not events:
            return []
        batch = Batch(
            tuple(events), self.offset, self.offset + len(events)
        )
        self.live_pipeline.feed(batch)
        self.offset += len(events)
        self.events_done += len(events)
        changed = self._drain()
        if (
            self.store is not None
            and self.live_window.window_index
            - self._last_checkpoint_window
            >= self.config.checkpoint_every
        ):
            self.checkpoint()
            self._last_checkpoint_window = self.live_window.window_index
        return changed

    def _drain(self) -> list:
        changed: list = []
        for item in self.live_pipeline.take():
            assert isinstance(item, WindowReport)
            self.reports_emitted += 1
            self.latest_window_end = item.end
            changed.extend(self.live_manager.ingest(item))
            if self.store is not None:
                self.store.append_report(item.to_dict())
        return changed

    def finish(self) -> list:
        """End of stream: flush, finalize incidents, checkpoint."""
        if self.finished:
            return []
        self.live_pipeline.flush()
        changed = self._drain()
        final = self.live_manager.finalize()
        for record in final:
            if record not in changed:
                changed.append(record)
        if self.store is not None:
            self.checkpoint()
        self.finished = True
        return changed

    def checkpoint(self) -> None:
        assert self.store is not None
        ingest = self.source.ingest_report
        self.store.save(
            CheckpointState(
                source=self.source.describe(),
                config=self.config.describe(),
                offset=self.offset,
                reports_emitted=self.reports_emitted,
                window=self.live_window.export_state().to_dict(),
                tamp=self.live_tamp.export_state(),
                stats=self.live_pipeline.stats(),
                ingest=None if ingest is None else ingest.to_dict(),
                incidents=self.live_manager.export_state(),
            )
        )

    # -- Snapshot accessors (safe between feeds) -----------------------

    def version(self) -> ShardVersion:
        return (
            self.live_window.window_index,
            self.live_tamp.boundary_pulse,
        )

    def graph(self) -> TampGraph:
        """The live TAMP graph; read-only between feeds."""
        return self.live_tamp.tamp.graph

    def incident_rows(self) -> list[dict[str, object]]:
        return [
            record.to_dict()
            for record in self.live_manager.all_incidents()
        ]

    def close(self) -> None:
        if self.incident_store is not None:
            self.incident_store.close()
            self.incident_store = None


class ShardSet:
    """N pipeline shards behind one snapshot surface.

    Partitions offered events by peer, pumps each shard in
    ``batch_size`` chunks, and exposes the merged read surface the
    HTTP layer serves from. A shard can die (:meth:`kill` — or a
    crashed external process that owns its checkpoint directory) and
    later :meth:`resume`: while dead, its slot serves last-checkpoint
    incidents from sqlite and the merged picture degrades to the
    survivors; on resume the shard restores from its checkpoint and
    replays its slice of the stream up to the set's current position,
    converging back to the bit-identical merged picture.
    """

    def __init__(
        self,
        parent: Source,
        config: MonitorConfig,
        *,
        shards: int = 1,
        checkpoint_root: Optional[Path | str] = None,
        resume: bool = False,
        start_dead: tuple[int, ...] = (),
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.config = config
        self.n = shards
        self.checkpoint_root = (
            None if checkpoint_root is None else Path(checkpoint_root)
        )
        self.watcher = TransitionWatcher()
        self._sources: list[Source] = [
            parent
            if shards == 1
            else ShardView(parent, k, shards)
            for k in range(shards)
        ]
        self._shards: list[Optional[PipelineShard]] = []
        for k in range(shards):
            if k in start_dead:
                self._shards.append(None)
                continue
            self._shards.append(
                PipelineShard(
                    self._sources[k],
                    config,
                    shard=k,
                    checkpoint_dir=self._dir(k),
                    resume=resume,
                )
            )
        self._buffers: list[list[BGPEvent]] = [
            [] for _ in range(shards)
        ]
        #: Filtered events offered per shard, counted even while the
        #: shard is dead — the resume catch-up target.
        self._offered = [0] * shards
        self.events_offered = 0

    def _dir(self, shard: int) -> Optional[Path]:
        if self.checkpoint_root is None:
            return None
        return shard_dir(self.checkpoint_root, shard)

    # -- Feeding -------------------------------------------------------

    def offer(self, event: BGPEvent) -> list[dict[str, object]]:
        """Route one event; returns transition feed entries, if any."""
        k = event.peer % self.n if self.n > 1 else 0
        self._offered[k] += 1
        self.events_offered += 1
        if self._shards[k] is None:
            return []  # dead shard: replayed from its source on resume
        buffer = self._buffers[k]
        buffer.append(event)
        if len(buffer) >= self.config.batch_size:
            return self._flush_shard(k)
        return []

    def _flush_shard(self, k: int) -> list[dict[str, object]]:
        events, self._buffers[k] = self._buffers[k], []
        shard = self._shards[k]
        if shard is None or not events:
            return []
        return self.watcher.observe(shard.feed(events), shard=k)

    def flush(self) -> list[dict[str, object]]:
        """Feed every partial buffer through its shard."""
        entries: list[dict[str, object]] = []
        for k in range(self.n):
            entries.extend(self._flush_shard(k))
        return entries

    def finish(self) -> list[dict[str, object]]:
        """End of stream: flush buffers, finalize every live shard."""
        entries = self.flush()
        for k, shard in enumerate(self._shards):
            if shard is not None:
                entries.extend(
                    self.watcher.observe(shard.finish(), shard=k)
                )
        return entries

    # -- Chaos ---------------------------------------------------------

    def kill(self, k: int) -> None:
        """Drop shard *k*'s live pipeline (simulating a dead process).

        Buffered events for the shard are discarded — exactly what a
        crash does to in-flight work — and replay on resume recovers
        them from the shard's deterministic source.
        """
        shard = self._shards[k]
        if shard is None:
            return
        shard.close()
        self._shards[k] = None
        self._buffers[k] = []

    def resume(self, k: int) -> list[dict[str, object]]:
        """Restore shard *k* from its checkpoint and catch it up.

        Replays the shard's slice from its checkpointed offset to the
        set's current stream position. The checkpoint may have been
        written by this process (before :meth:`kill`) or by an
        external ``run_monitor`` over the same
        :class:`~repro.pipeline.sources.ShardView` — the formats are
        identical.
        """
        if self._shards[k] is not None:
            raise ValueError(f"shard {k} is alive")
        shard = PipelineShard(
            self._sources[k],
            self.config,
            shard=k,
            checkpoint_dir=self._dir(k),
            resume=True,
        )
        entries: list[dict[str, object]] = []
        target = self._offered[k]
        pending: list[BGPEvent] = []
        replayed = shard.offset
        if replayed < target:
            for event in self._sources[k].events(shard.offset):
                pending.append(event)
                replayed += 1
                if len(pending) >= self.config.batch_size:
                    entries.extend(
                        self.watcher.observe(
                            shard.feed(pending), shard=k
                        )
                    )
                    pending = []
                if replayed >= target:
                    break
            if pending:
                entries.extend(
                    self.watcher.observe(shard.feed(pending), shard=k)
                )
        self._shards[k] = shard
        return entries

    # -- Snapshot surface (what handlers read) -------------------------

    def alive(self) -> tuple[bool, ...]:
        return tuple(shard is not None for shard in self._shards)

    def version(self) -> tuple:
        """The set-wide cache key: per-shard version plus liveness.

        Changes exactly when any shard's window advances, a shard
        dies, or a shard comes back — the moments the picture (or its
        degradation) can change. A dead shard contributes a sentinel
        so a degraded picture never shares an ETag with a full one.
        """
        return tuple(
            ("dead", k)
            if shard is None
            else (k,) + shard.version()
            for k, shard in enumerate(self._shards)
        )

    def merged_graph(self) -> TampGraph:
        """Sum the live shards' graphs into a fresh merged graph."""
        merged = TampGraph()
        for shard in self._shards:
            if shard is not None:
                merged.merge_graph(shard.graph())
        return merged

    def latest_window_end(self) -> float:
        return max(
            (
                shard.latest_window_end
                for shard in self._shards
                if shard is not None
            ),
            default=0.0,
        )

    def incident_rows(self) -> list[dict[str, object]]:
        """Merged incident rows, shard-tagged, dead shards included.

        Live shards read from their managers; dead shards fall back to
        the sqlite store their last checkpoint cycle synced — the
        degraded-serve path.
        """
        rows: list[dict[str, object]] = []
        for k, shard in enumerate(self._shards):
            if shard is not None:
                shard_rows = shard.incident_rows()
            else:
                directory = self._dir(k)
                if directory is None:
                    continue
                shard_rows = [
                    record.to_dict()
                    for record in load_incident_rows(directory)
                ]
            for row in shard_rows:
                row["shard"] = k
                rows.append(row)
        rows.sort(key=lambda row: (row["shard"], row["id"]))
        return rows

    def incident_row(
        self, incident_id: int, *, shard: Optional[int] = None
    ) -> Optional[dict[str, object]]:
        for row in self.incident_rows():
            if row["id"] != incident_id:
                continue
            if shard is not None and row["shard"] != shard:
                continue
            return row
        return None

    def status(self) -> dict[str, object]:
        return {
            "shards": self.n,
            "alive": list(self.alive()),
            "events_offered": self.events_offered,
            "per_shard": [
                None
                if shard is None
                else {
                    "events": shard.events_done,
                    "offset": shard.offset,
                    "windows": shard.version()[0],
                    "boundary_pulse": shard.version()[1],
                    "reports": shard.reports_emitted,
                }
                for shard in self._shards
            ],
        }

    def close(self) -> None:
        for shard in self._shards:
            if shard is not None:
                shard.close()
