"""The multi-tenant read path: serve the picture, don't rebuild it.

``repro serve`` (DESIGN.md §14) layers an asyncio HTTP service over
N sharded monitor pipelines:

* :mod:`repro.serve.sharding` — per-peer shard pipelines and the
  fan-in :class:`ShardSet` whose merged picture is bit-identical to
  an unsharded run (the SRV001-sanctioned live-state layer).
* :mod:`repro.serve.snapshot` — render-once/serve-many picture cache
  keyed on pulse-counter versions, with single-flight rendering and
  precomputed wire responses.
* :mod:`repro.serve.events` — the SSE transition feed with
  ``Last-Event-ID`` replay.
* :mod:`repro.serve.http` — the dependency-free asyncio HTTP/1.1
  server the ≥10k req/s benchmark drives.
* :mod:`repro.serve.app` — the route table; every handler reads
  through the snapshot surface only.
* :mod:`repro.serve.driver` — :func:`run_serve`, the cooperative
  feed-and-serve loop behind the CLI.
"""

from repro.serve.app import ServeApp, ServeCollector
from repro.serve.driver import ServeResult, run_serve
from repro.serve.events import TransitionFeed, format_sse
from repro.serve.http import (
    Handler,
    HandlerResult,
    HttpServer,
    Request,
    Response,
    StreamingResponse,
)
from repro.serve.sharding import PipelineShard, ShardSet, shard_dir
from repro.serve.snapshot import PictureSnapshot, SnapshotHub

__all__ = [
    "Handler",
    "HandlerResult",
    "HttpServer",
    "PictureSnapshot",
    "PipelineShard",
    "Request",
    "Response",
    "ServeApp",
    "ServeCollector",
    "ServeResult",
    "ShardSet",
    "SnapshotHub",
    "StreamingResponse",
    "TransitionFeed",
    "format_sse",
    "run_serve",
    "shard_dir",
]
