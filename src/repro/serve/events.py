"""The server-sent-events feed of incident transitions.

SSE contract (DESIGN.md §14): ``GET /events`` streams
``text/event-stream`` where every incident state-machine transition
becomes one event::

    id: <monotonic integer>
    event: incident
    data: {"incident": 3, "shard": 0, "to": "resolved", ...}

Ids are assigned at publish time and strictly increase for the life
of the serving process. A reconnecting client sends the standard
``Last-Event-ID`` header and receives exactly the suffix it missed,
as long as the events are still inside the replay ring (a bounded
deque — the feed is a live tail with bounded catch-up, not an event
store; full history lives in the incident stores). A fresh client
(no header) gets the whole ring, so a subscriber that connects after
a quiet start still sees how the current incidents got where they
are.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque


def format_sse(event_id: int, payload: dict) -> bytes:
    """One wire-format SSE frame (``id`` + ``event`` + ``data``)."""
    data = json.dumps(payload, sort_keys=True)
    return (
        f"id: {event_id}\nevent: incident\ndata: {data}\n\n"
    ).encode("utf-8")


class TransitionFeed:
    """Bounded replay ring plus live fan-out queues."""

    def __init__(self, capacity: int = 1024) -> None:
        #: (id, frame bytes), oldest first, bounded.
        self._ring: deque[tuple[int, bytes]] = deque(maxlen=capacity)
        self._next_id = 1
        self._subscribers: set[asyncio.Queue] = set()
        self.published = 0

    def publish(self, payload: dict) -> int:
        """Assign an id, buffer the frame, wake every subscriber."""
        event_id = self._next_id
        self._next_id += 1
        frame = format_sse(event_id, payload)
        self._ring.append((event_id, frame))
        self.published += 1
        for queue in self._subscribers:
            queue.put_nowait(frame)
        return event_id

    def publish_all(self, payloads: list) -> None:
        for payload in payloads:
            self.publish(payload)

    def replay_since(self, last_id: int) -> list[bytes]:
        """Frames with id > *last_id* still in the ring, in order."""
        return [
            frame for event_id, frame in self._ring if event_id > last_id
        ]

    def subscribe(self) -> asyncio.Queue:
        """An unbounded queue receiving every frame from now on.

        Unbounded is deliberate: the feed must never block the
        pipeline on a slow reader; a reader that can't drain its queue
        is dropped when its connection dies, not throttled.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)

    def close(self) -> None:
        """End every live stream: subscribers get a ``None`` sentinel."""
        for queue in self._subscribers:
            queue.put_nowait(None)

    @property
    def last_id(self) -> int:
        return self._next_id - 1
