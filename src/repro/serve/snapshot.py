"""Render-once / serve-many: the picture cache behind ``/picture.svg``.

The cache key is :meth:`ShardSet.version` — the vector of per-shard
(window index, boundary pulse count) plus liveness. Pulse counters
only move when the TAMP graph's edge membership changes, and the
boundary value only moves when a window advances, so a snapshot keyed
on the vector is valid for *every* request until the next window
boundary (or a shard death/resume): the renderer runs at most once
per window advance, everything else is a dict compare.

Single-flight: concurrent first requests after an invalidation all
await one :class:`asyncio.Lock`; the winner renders, the rest
re-check the cache under the lock and reuse the fresh snapshot.
:attr:`SnapshotHub.renders` counts actual renders — the test for
"one render per pulse under pileup" reads it directly.

ETags are strong and *content-derived* (sha256 of the SVG bytes): two
versions that happen to render identical bytes legitimately share an
ETag — a 304 against either is byte-correct — while any membership
change that alters the picture forces a new one, so a stale ETag can
never validate against a newer pulse count's differing picture.

Wire bytes for the 200 and 304 responses are precomputed per
snapshot; the serve hot path writes them without re-rendering
headers. This module is sanctioned by SRV001 alongside the sharding
layer — everything above it reads snapshots only.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.serve.sharding import ShardSet
from repro.tamp.prune import DEFAULT_THRESHOLD, prune_flat
from repro.tamp.render import render_svg


def _etag(body: bytes) -> str:
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


@dataclass(frozen=True)
class PictureSnapshot:
    """One rendered picture, frozen with its wire-ready responses."""

    version: tuple
    etag: str
    svg: str
    body: bytes
    response_200: bytes
    response_304: bytes

    @classmethod
    def build(cls, version: tuple, svg: str) -> "PictureSnapshot":
        body = svg.encode("utf-8")
        etag = _etag(body)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: image/svg+xml\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"ETag: {etag}\r\n"
            "Cache-Control: no-cache\r\n"
            "\r\n"
        ).encode("latin-1")
        not_modified = (
            "HTTP/1.1 304 Not Modified\r\n"
            f"ETag: {etag}\r\n"
            "Cache-Control: no-cache\r\n"
            "\r\n"
        ).encode("latin-1")
        return cls(
            version=version,
            etag=etag,
            svg=svg,
            body=body,
            response_200=head + body,
            response_304=not_modified,
        )


class SnapshotHub:
    """Version-keyed picture cache with single-flight rendering."""

    def __init__(
        self,
        shards: ShardSet,
        *,
        threshold: float = DEFAULT_THRESHOLD,
        title: str = "TAMP",
    ) -> None:
        self.shards = shards
        self.threshold = threshold
        self.title = title
        self.renders = 0
        self._current: Optional[PictureSnapshot] = None
        self._lock = asyncio.Lock()

    def current(self) -> Optional[PictureSnapshot]:
        """The cached snapshot, fresh or not (no render)."""
        return self._current

    async def snapshot(self) -> PictureSnapshot:
        """The picture for the shard set's current version.

        Cache hit: two attribute reads and a tuple compare. Miss: one
        render, shared by every request that piled up on the miss.
        """
        version = self.shards.version()
        current = self._current
        if current is not None and current.version == version:
            return current
        async with self._lock:
            # Double-check: the render that beat us to the lock may
            # already cover the version we need — and the version may
            # have advanced again while we waited.
            version = self.shards.version()
            current = self._current
            if current is not None and current.version == version:
                return current
            snapshot = self.render(version)
            self._current = snapshot
            return snapshot

    def render(self, version: Optional[tuple] = None) -> PictureSnapshot:
        """Synchronous render for *version* (current if omitted).

        Exposed for non-async callers (tests, the driver's final
        refresh); :meth:`snapshot` is the single-flight entry point.
        """
        if version is None:
            version = self.shards.version()
        graph = self.shards.merged_graph()
        pruned = prune_flat(graph, self.threshold)
        clock = self.shards.latest_window_end()
        svg = render_svg(
            pruned,
            title=self.title,
            clock_text=f"t={clock:.0f}s",
        )
        self.renders += 1
        return PictureSnapshot.build(version, svg)
