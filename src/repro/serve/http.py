"""A minimal asyncio HTTP/1.1 server tuned for the cached read path.

Dependency-free by project rule, and deliberately small: the serve
layer's traffic is thousands of identical GETs against a handful of
routes, so the server optimizes exactly that — keep-alive by
default, pipelining-friendly (every request already buffered is
answered before the next drain), and handlers may return *wire-ready
bytes* (a whole precomputed response, see
:class:`~repro.serve.snapshot.PictureSnapshot`) which are written
without any per-request header assembly. The benchmark drives this
path past 10k requests/s on one core.

Not a general web server: no request bodies, no chunked decoding, no
TLS, 1 MiB header cap. Anything malformed gets a 400 and the
connection closed.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Optional, Union

_MAX_HEADER = 1 << 20

_REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


class Request:
    """One parsed request. Headers are lower-cased at parse time."""

    __slots__ = ("method", "path", "query", "headers")

    def __init__(
        self,
        method: str,
        path: str,
        query: str,
        headers: dict[str, str],
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name, default)

    def query_params(self) -> dict[str, str]:
        params: dict[str, str] = {}
        if not self.query:
            return params
        for pair in self.query.split("&"):
            key, _, value = pair.partition("=")
            if key:
                params[key] = value
        return params


class Response:
    """A conventional response; rendered to wire bytes once."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self,
        status: int = 200,
        body: bytes | str = b"",
        content_type: str = "text/plain; charset=utf-8",
        headers: Optional[list[tuple[str, str]]] = None,
    ) -> None:
        self.status = status
        self.body = body.encode("utf-8") if isinstance(body, str) else body
        self.content_type = content_type
        self.headers = headers or []

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
        ]
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


class StreamingResponse:
    """A long-lived response the handler keeps writing (SSE).

    The dispatcher sends *head*, then hands the writer to *pump*,
    which owns the connection until the client goes away. The
    connection never returns to keep-alive.
    """

    __slots__ = ("head", "pump")

    def __init__(
        self,
        head: bytes,
        pump: Callable[[asyncio.StreamWriter], Awaitable[None]],
    ) -> None:
        self.head = head
        self.pump = pump


#: What a route handler may return: wire-ready bytes (fast path), a
#: Response, or a StreamingResponse that takes over the connection.
HandlerResult = Union[bytes, Response, StreamingResponse]
Handler = Callable[[Request], Awaitable[HandlerResult]]


def _parse(head: str) -> Optional[Request]:
    request_line, _, rest = head.partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        return None
    method, target = parts[0], parts[1]
    path, _, query = target.partition("?")
    headers: dict[str, str] = {}
    for line in rest.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    return Request(method, path, query, headers)


class HttpServer:
    """Route table + connection loop over ``asyncio.start_server``."""

    def __init__(self) -> None:
        self._routes: dict[str, Handler] = {}
        self._prefix_routes: list[tuple[str, Handler]] = []
        self._server: Optional[asyncio.Server] = None
        self.port = 0

    def route(self, path: str, handler: Handler) -> None:
        """Register an exact-path GET handler."""
        self._routes[path] = handler

    def route_prefix(self, prefix: str, handler: Handler) -> None:
        """Register a handler for every path under *prefix*."""
        self._prefix_routes.append((prefix, handler))

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _resolve(self, path: str) -> Optional[Handler]:
        handler = self._routes.get(path)
        if handler is not None:
            return handler
        for prefix, prefix_handler in self._prefix_routes:
            if path.startswith(prefix):
                return prefix_handler
        return None

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                except asyncio.LimitOverrunError:
                    writer.write(Response(400, b"header too large").encode())
                    break
                if len(head) > _MAX_HEADER:
                    writer.write(Response(400, b"header too large").encode())
                    break
                request = _parse(head.decode("latin-1"))
                if request is None:
                    writer.write(Response(400, b"malformed request").encode())
                    break
                close_after = (
                    request.header("connection").lower() == "close"
                )
                if request.method not in ("GET", "HEAD"):
                    writer.write(
                        Response(405, b"method not allowed").encode()
                    )
                else:
                    handler = self._resolve(request.path)
                    if handler is None:
                        writer.write(Response(404, b"not found").encode())
                    else:
                        result = await handler(request)
                        if isinstance(result, bytes):
                            writer.write(result)
                        elif isinstance(result, StreamingResponse):
                            writer.write(result.head)
                            await writer.drain()
                            await result.pump(writer)
                            break
                        else:
                            writer.write(result.encode())
                # Answer everything already buffered (pipelining)
                # before paying for a drain.
                if reader._buffer:  # type: ignore[attr-defined]
                    continue
                await writer.drain()
                if close_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
