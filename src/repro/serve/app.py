"""The route table: what ``repro serve`` answers on its one port.

==================  ==================================================
``/picture.svg``    Cached TAMP picture; strong ETag, 304 on match.
``/incidents``      Merged shard-tagged incident rows (``?status=``).
``/incidents/<id>`` One incident (``?shard=`` to disambiguate).
``/events``         SSE transition feed (``Last-Event-ID`` replay).
``/metrics``        Prometheus-style text exposition (same registry
``/metrics.json``   the pipeline writes — one port, one registry).
``/healthz``        Liveness probe.
``/status``         Shard/version/cache introspection JSON.
==================  ==================================================

Every handler reads exclusively through the snapshot surface —
:class:`~repro.serve.snapshot.SnapshotHub`,
:meth:`~repro.serve.sharding.ShardSet.incident_rows` and friends, the
:class:`~repro.serve.events.TransitionFeed` ring — never the live
pipeline objects (rule SRV001: ``live_``-prefixed state is for the
sharding/snapshot layer only).

Per-route request counters and latency histograms live on the shared
:class:`~repro.pipeline.metrics.MetricsRegistry`; serve-level live
values (render count, feed position, shard liveness) ride the same
exposition through a registered collector, so one ``/metrics`` scrape
covers pipeline and serving health.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Optional

from repro.pipeline.metrics import MetricsRegistry
from repro.serve.events import TransitionFeed
from repro.serve.http import (
    Handler,
    HandlerResult,
    HttpServer,
    Request,
    Response,
    StreamingResponse,
)
from repro.serve.sharding import ShardSet
from repro.serve.snapshot import SnapshotHub

_ROUTES = (
    "picture",
    "incidents",
    "incident",
    "events",
    "metrics",
    "healthz",
    "status",
)


class ServeCollector:
    """Serve-level live values for the shared metrics exposition."""

    def __init__(self, app: "ServeApp") -> None:
        self._app = app

    def _values(self) -> dict[str, object]:
        app = self._app
        return {
            "repro_serve_picture_renders_total": app.hub.renders,
            "repro_serve_sse_events_total": app.feed.published,
            "repro_serve_shards_alive": sum(app.shards.alive()),
            "repro_serve_events_offered_total": (
                app.shards.events_offered
            ),
        }

    def render_text(self) -> str:
        lines = []
        for name, value in sorted(self._values().items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"

    def to_snapshot(self) -> dict[str, object]:
        return self._values()


class ServeApp:
    """Wires the snapshot surfaces into an :class:`HttpServer`."""

    def __init__(
        self,
        hub: SnapshotHub,
        feed: TransitionFeed,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.hub = hub
        self.shards: ShardSet = hub.shards
        self.feed = feed
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.registry.register_collector(ServeCollector(self))
        self._counters = {
            name: self.registry.counter(
                f"repro_serve_requests_total_{name}",
                f"requests served on the {name} route",
            )
            for name in _ROUTES
        }
        self._latency = {
            name: self.registry.histogram(
                f"repro_serve_request_seconds_{name}",
                f"request latency on the {name} route",
            )
            for name in _ROUTES
        }
        self.server = HttpServer()
        self.server.route(
            "/picture.svg", self._timed("picture", self.picture)
        )
        self.server.route(
            "/incidents", self._timed("incidents", self.incidents)
        )
        self.server.route_prefix(
            "/incidents/", self._timed("incident", self.incident)
        )
        self.server.route("/events", self._timed("events", self.events))
        self.server.route(
            "/metrics", self._timed("metrics", self.metrics_text)
        )
        self.server.route(
            "/metrics.json", self._timed("metrics", self.metrics_json)
        )
        self.server.route(
            "/healthz", self._timed("healthz", self.healthz)
        )
        self.server.route("/status", self._timed("status", self.status))

    def _timed(self, name: str, handler: Handler) -> Handler:
        counter = self._counters[name]
        latency = self._latency[name]
        clock = time.perf_counter

        async def timed(request: Request) -> HandlerResult:
            started = clock()
            result = await handler(request)
            counter.inc()
            latency.observe(clock() - started)
            return result

        return timed

    # -- Handlers (snapshot reads only: SRV001) ------------------------

    async def picture(self, request: Request) -> HandlerResult:
        snapshot = await self.hub.snapshot()
        if request.header("if-none-match") == snapshot.etag:
            return snapshot.response_304
        return snapshot.response_200

    async def incidents(self, request: Request) -> HandlerResult:
        params = request.query_params()
        rows = self.shards.incident_rows()
        status = params.get("status")
        if status:
            rows = [row for row in rows if row["status"] == status]
        return Response(
            200,
            json.dumps({"incidents": rows}, sort_keys=True),
            "application/json",
        )

    async def incident(self, request: Request) -> HandlerResult:
        tail = request.path.rsplit("/", 1)[-1]
        try:
            incident_id = int(tail)
        except ValueError:
            return Response(404, b"no such incident")
        params = request.query_params()
        shard: Optional[int] = None
        if "shard" in params:
            try:
                shard = int(params["shard"])
            except ValueError:
                return Response(404, b"bad shard")
        row = self.shards.incident_row(incident_id, shard=shard)
        if row is None:
            return Response(404, b"no such incident")
        return Response(
            200, json.dumps(row, sort_keys=True), "application/json"
        )

    async def events(self, request: Request) -> HandlerResult:
        raw = request.header("last-event-id")
        try:
            last_id = int(raw) if raw else 0
        except ValueError:
            last_id = 0
        replay = b"".join(self.feed.replay_since(last_id))
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b"retry: 2000\n\n" + replay
        )
        feed = self.feed

        async def pump(writer: asyncio.StreamWriter) -> None:
            queue = feed.subscribe()
            try:
                while True:
                    frame = await queue.get()
                    if frame is None:  # feed closed: end the stream
                        break
                    writer.write(frame)
                    await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                feed.unsubscribe(queue)

        return StreamingResponse(head, pump)

    async def metrics_text(self, request: Request) -> HandlerResult:
        return Response(
            200,
            self.registry.render_text(),
            "text/plain; charset=utf-8",
        )

    async def metrics_json(self, request: Request) -> HandlerResult:
        return Response(
            200,
            json.dumps(self.registry.snapshot(), sort_keys=True),
            "application/json",
        )

    async def healthz(self, request: Request) -> HandlerResult:
        return Response(200, b"ok")

    async def status(self, request: Request) -> HandlerResult:
        snapshot = self.hub.current()
        body = {
            "version": [list(part) for part in self.shards.version()],
            "etag": None if snapshot is None else snapshot.etag,
            "renders": self.hub.renders,
            "sse_last_id": self.feed.last_id,
            **self.shards.status(),
        }
        return Response(
            200, json.dumps(body, sort_keys=True), "application/json"
        )

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        return await self.server.start(host, port)

    async def close(self) -> None:
        await self.server.close()
