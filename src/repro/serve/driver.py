"""``run_serve``: one event loop feeding shards and serving requests.

The pipeline is cooperative, not threaded: the feeder coroutine pumps
shard batches synchronously and yields to the loop between batches,
so HTTP handlers always observe shard state at a batch boundary —
the property that makes the snapshot accessors lock-free. Pacing
(``--pace``) maps event timestamps onto ``asyncio.sleep`` exactly as
the monitor's :class:`~repro.pipeline.sources.Pacer` maps them onto
``time.sleep``.

After the stream ends the service keeps answering requests for
``linger`` seconds (CI smoke and the benchmark depend on this), then
closes the SSE streams and the listening socket.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.pipeline.metrics import MetricsRegistry
from repro.pipeline.monitor import MonitorConfig
from repro.pipeline.sources import Source
from repro.serve.app import ServeApp
from repro.serve.events import TransitionFeed
from repro.serve.sharding import ShardSet
from repro.serve.snapshot import SnapshotHub
from repro.tamp.prune import DEFAULT_THRESHOLD


@dataclass
class ServeResult:
    """What one :func:`run_serve` call did."""

    events: int
    renders: int
    published: int
    port: int
    stopped: str
    status: dict[str, object]


async def run_serve(
    source: Source,
    config: MonitorConfig,
    *,
    shards: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    checkpoint_root: Optional[Path | str] = None,
    resume: bool = False,
    threshold: float = DEFAULT_THRESHOLD,
    registry: Optional[MetricsRegistry] = None,
    linger: float = 0.0,
    on_started: Optional[Callable[[ServeApp], None]] = None,
) -> ServeResult:
    """Serve *source* through *shards* pipelines until it ends."""
    shard_set = ShardSet(
        source,
        config,
        shards=shards,
        checkpoint_root=checkpoint_root,
        resume=resume,
    )
    hub = SnapshotHub(shard_set, threshold=threshold)
    feed = TransitionFeed()
    app = ServeApp(hub, feed, registry)
    bound = await app.start(host, port)
    if on_started is not None:
        on_started(app)

    stopped = "end"
    pace = config.pace
    anchor_ts: Optional[float] = None
    anchor_clock = 0.0
    loop = asyncio.get_running_loop()
    since_yield = 0
    try:
        for event in source.events():
            if pace > 0:
                if anchor_ts is None:
                    anchor_ts = event.timestamp
                    anchor_clock = loop.time()
                else:
                    due = (
                        anchor_clock
                        + (event.timestamp - anchor_ts) / pace
                    )
                    delay = due - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
            entries = shard_set.offer(event)
            if entries:
                feed.publish_all(entries)
            since_yield += 1
            if since_yield >= config.batch_size:
                since_yield = 0
                # Batch boundary: let queued requests run against a
                # consistent snapshot before the next pump.
                await asyncio.sleep(0)
            if (
                config.max_events is not None
                and shard_set.events_offered >= config.max_events
            ):
                stopped = "max_events"
                break
        if stopped == "end":
            feed.publish_all(shard_set.finish())
            await hub.snapshot()  # final picture, pre-rendered
        if linger > 0:
            await asyncio.sleep(linger)
    finally:
        feed.close()
        await app.close()
        shard_set.close()
    return ServeResult(
        events=shard_set.events_offered,
        renders=hub.renders,
        published=feed.published,
        port=bound,
        stopped=stopped,
        status=shard_set.status(),
    )
