"""Flow records, NetFlow style.

A flow record summarizes traffic toward a destination prefix over an
interval: byte and packet counts, the interface (link) it left on. The
collector aggregates records into per-prefix and per-link volumes, the
inputs to the Section III-D.2 weighting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One exported flow summary."""

    timestamp: float
    prefix: Prefix
    bytes: int
    packets: int = 0
    interface: str = ""

    def __post_init__(self) -> None:
        if self.bytes < 0 or self.packets < 0:
            raise ValueError("flow counters cannot be negative")


class FlowCollector:
    """Aggregates flow records into volumes.

    Volumes are in bytes over the collection window; time slicing is
    left to callers (records carry timestamps).
    """

    def __init__(self) -> None:
        self._records: list[FlowRecord] = []

    def add(self, record: FlowRecord) -> None:
        self._records.append(record)

    def add_all(self, records: Iterable[FlowRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> list[FlowRecord]:
        selected = self._records
        if start is not None:
            selected = [r for r in selected if r.timestamp >= start]
        if end is not None:
            selected = [r for r in selected if r.timestamp < end]
        return list(selected)

    def volume_by_prefix(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> dict[Prefix, int]:
        """Total bytes per destination prefix over the window."""
        volumes: dict[Prefix, int] = {}
        for record in self.records(start, end):
            volumes[record.prefix] = volumes.get(record.prefix, 0) + record.bytes
        return volumes

    def volume_by_interface(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> dict[str, int]:
        """Total bytes per egress interface — the rate-limiter balance
        check in the Berkeley load-balancing case."""
        volumes: dict[str, int] = {}
        for record in self.records(start, end):
            volumes[record.interface] = (
                volumes.get(record.interface, 0) + record.bytes
            )
        return volumes

    def total_volume(self) -> int:
        return sum(r.bytes for r in self._records)
