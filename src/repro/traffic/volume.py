"""Joining traffic volumes with routing.

The paper's better-than-trial-and-error load balancing (Section III-D.2):
correlate routing and traffic to compute the volume each routing element
actually carries — per prefix, per link, per TAMP edge — and recompute as
either side changes.
"""

from __future__ import annotations

from typing import Mapping

from repro.net.prefix import Prefix
from repro.tamp.graph import TampGraph
from repro.tamp.tree import Edge


class VolumeTable:
    """Per-prefix traffic volumes with longest-match fallback.

    Flow records may aggregate at different granularities than routing;
    a /24's volume charges the covering routed prefix.
    """

    def __init__(self, volumes: Mapping[Prefix, float]) -> None:
        from repro.net.trie import PrefixTrie

        self._exact = dict(volumes)
        self._trie: PrefixTrie = PrefixTrie()
        for prefix, volume in volumes.items():
            self._trie.insert(prefix, volume)

    def volume(self, prefix: Prefix) -> float:
        """Volume for *prefix*: exact, else the nearest covering entry."""
        exact = self._exact.get(prefix)
        if exact is not None:
            return exact
        match = self._trie.longest_match(prefix)
        return match[1] if match is not None else 0.0

    def total(self) -> float:
        return sum(self._exact.values())

    def as_mapping(self) -> dict[Prefix, float]:
        return dict(self._exact)


def edge_volumes(
    graph: TampGraph, volumes: VolumeTable
) -> dict[Edge, float]:
    """Traffic volume per TAMP edge: the sum over prefixes it carries.

    This is the Section III-D.2 re-weighting: drawn with these weights, a
    TAMP picture shows where the *bytes* go, not where the prefixes go —
    and the two can disagree wildly under elephant/mice skew.
    """
    result: dict[Edge, float] = {}
    for edge, prefixes in graph.edges():
        result[edge] = sum(volumes.volume(prefix) for prefix in prefixes)
    return result


def imbalance_report(
    graph: TampGraph,
    volumes: VolumeTable,
    edges: list[Edge],
) -> list[dict]:
    """Compare prefix-count shares with volume shares across *edges*.

    For the Berkeley rate-limiter split: an even prefix split can still
    be a wildly uneven traffic split (or vice versa). Each row reports
    both shares so the operator sees the discrepancy directly.
    """
    total_prefixes = graph.total_prefixes()
    by_edge = edge_volumes(graph, volumes)
    total_volume = sum(by_edge.get(edge, 0.0) for edge in edges)
    rows = []
    for edge in edges:
        weight = graph.weight(*edge)
        volume = by_edge.get(edge, 0.0)
        rows.append(
            {
                "edge": edge,
                "prefixes": weight,
                "prefix_share": weight / total_prefixes if total_prefixes else 0.0,
                "volume": volume,
                "volume_share": volume / total_volume if total_volume else 0.0,
            }
        )
    return rows
