"""The elephant-and-mice traffic model.

Measurements cited in the paper [6] show Internet traffic concentrating
on few prefixes: 10% of prefixes can carry ~90% of the bytes. A Zipf
(power-law) rank-volume distribution reproduces that skew; the exponent
controls how extreme the concentration is.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.net.prefix import Prefix


def zipf_volumes(
    prefixes: Sequence[Prefix],
    alpha: float = 1.1,
    total_volume: float = 1e9,
    seed: int = 42,
) -> dict[Prefix, float]:
    """Assign Zipf-distributed volumes summing to *total_volume*.

    Rank order is shuffled deterministically by *seed* so elephants are
    not always the numerically lowest prefixes. *alpha* around 1.0–1.2
    matches the measured 90/10 concentration.
    """
    if not prefixes:
        return {}
    if alpha <= 0:
        raise ValueError(f"alpha {alpha} must be positive")
    if total_volume <= 0:
        raise ValueError(f"total volume {total_volume} must be positive")
    order = list(prefixes)
    random.Random(seed).shuffle(order)
    raw = [1.0 / (rank + 1) ** alpha for rank in range(len(order))]
    scale = total_volume / sum(raw)
    return {prefix: weight * scale for prefix, weight in zip(order, raw)}


def concentration(
    volumes: dict[Prefix, float], top_fraction: float = 0.1
) -> float:
    """Share of total volume carried by the top *top_fraction* prefixes.

    ``concentration(v, 0.1)`` ≈ 0.9 is the paper's "10% of prefixes,
    90% of traffic".
    """
    if not volumes:
        return 0.0
    if not 0 < top_fraction <= 1:
        raise ValueError(f"top fraction {top_fraction} outside (0, 1]")
    ordered = sorted(volumes.values(), reverse=True)
    count = max(1, int(len(ordered) * top_fraction))
    total = sum(ordered)
    if total == 0:
        return 0.0
    return sum(ordered[:count]) / total


def elephants_of(
    volumes: dict[Prefix, float], volume_share: float = 0.8
) -> set[Prefix]:
    """The smallest prefix set carrying at least *volume_share* of traffic.

    The Sprint study cited in the paper defines elephants by the share
    of traffic they jointly carry (80% there).
    """
    if not 0 < volume_share <= 1:
        raise ValueError(f"volume share {volume_share} outside (0, 1]")
    total = sum(volumes.values())
    if total == 0:
        return set()
    elephants: set[Prefix] = set()
    accumulated = 0.0
    for prefix, volume in sorted(
        volumes.items(), key=lambda item: item[1], reverse=True
    ):
        if accumulated >= volume_share * total:
            break
        elephants.add(prefix)
        accumulated += volume
    return elephants


def flows_from_volumes(
    volumes: dict[Prefix, float],
    duration: float,
    records_per_prefix: int = 5,
    interface_of=lambda prefix: "",
    seed: int = 7,
) -> Iterable:
    """Expand per-prefix volumes into individual flow records.

    Spreads each prefix's volume across *records_per_prefix* flows at
    random times within *duration* — enough realism for collector tests.
    """
    from repro.traffic.flows import FlowRecord

    rng = random.Random(seed)
    for prefix, volume in volumes.items():
        share = volume / records_per_prefix
        for _ in range(records_per_prefix):
            yield FlowRecord(
                timestamp=rng.uniform(0, duration),
                prefix=prefix,
                bytes=int(share),
                packets=max(1, int(share / 1400)),
                interface=interface_of(prefix),
            )
