"""Traffic data: NetFlow-style flow records and the elephant/mice model.

Section III-D.2 of the paper integrates traffic volume into TAMP and
Stemming: prefix counts weigh every prefix equally, but Internet traffic
is wildly skewed — a small fraction of prefixes (the elephants) carries
most of the bytes. This package provides a synthetic but
distribution-faithful substitute for the Cisco NetFlow feeds the paper
used: flow records, Zipf-distributed per-prefix volumes, and link-volume
inference from routing plus flows.
"""

from repro.traffic.flows import FlowRecord, FlowCollector
from repro.traffic.elephants import (
    concentration,
    elephants_of,
    zipf_volumes,
)
from repro.traffic.volume import VolumeTable, edge_volumes

__all__ = [
    "FlowRecord",
    "FlowCollector",
    "zipf_volumes",
    "concentration",
    "elephants_of",
    "VolumeTable",
    "edge_volumes",
]
