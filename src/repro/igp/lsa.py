"""Link-state advertisements.

An LSA describes one router's links: the neighbor each link reaches and
its metric. Routers flood LSAs on any topology change; the database keeps
the newest sequence number per originating router, exactly like OSPF's
LSDB aging rules (minus actual aging, which no case study needs).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Link:
    """A directed adjacency from the LSA's origin to *neighbor*.

    *neighbor* is a router name; *metric* the IGP cost of the link.
    Stub networks are modeled as links to a pseudo-node named after the
    prefix, which is all SPF needs.
    """

    neighbor: str
    metric: int

    def __post_init__(self) -> None:
        if self.metric < 0:
            raise ValueError(f"negative IGP metric {self.metric}")


@dataclass(frozen=True, slots=True)
class LinkStateAd:
    """One flooded LSA: the full current link set of *origin*.

    A higher *sequence* replaces any older LSA from the same origin. An
    LSA with no links retracts the router (it has left the topology).
    """

    origin: str
    links: tuple[Link, ...]
    sequence: int
    timestamp: float = 0.0
    area: int = 0

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError(f"negative LSA sequence {self.sequence}")
