"""Shortest-path-first computation.

Plain Dijkstra over the LSDB snapshot. Returns distances and first hops,
which is what a router needs: the IGP cost to a BGP NEXT_HOP (decision
step) and the interface traffic would leave on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Optional


@dataclass(frozen=True, slots=True)
class ShortestPaths:
    """SPF result from one root: cost and first hop per destination."""

    root: str
    distance: Mapping[str, int]
    first_hop: Mapping[str, str]

    def cost(self, destination: str) -> Optional[int]:
        """IGP cost to *destination*, or None if unreachable."""
        return self.distance.get(destination)

    def next_hop(self, destination: str) -> Optional[str]:
        """The neighbor traffic to *destination* leaves through."""
        return self.first_hop.get(destination)

    def reachable(self, destination: str) -> bool:
        return destination in self.distance


def spf(
    graph: Mapping[str, list[tuple[str, int]]], root: str
) -> ShortestPaths:
    """Dijkstra from *root* over an adjacency-list *graph*.

    Ties between equal-cost paths are broken toward the lexicographically
    smaller first hop so results are deterministic (real routers do ECMP;
    none of the reproduced incidents depend on it).
    """
    if root not in graph:
        return ShortestPaths(root, {}, {})
    distance: dict[str, int] = {root: 0}
    first_hop: dict[str, str] = {}
    # Heap entries: (cost, first-hop tiebreak, node, first hop from root).
    heap: list[tuple[int, str, str, Optional[str]]] = [(0, "", root, None)]
    settled: set[str] = set()
    while heap:
        cost, _, node, hop = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if hop is not None:
            first_hop[node] = hop
        for neighbor, metric in graph.get(node, ()):
            next_cost = cost + metric
            known = distance.get(neighbor)
            if known is not None and known < next_cost:
                continue
            next_hop_name = hop if hop is not None else neighbor
            if known is None or next_cost < known:
                distance[neighbor] = next_cost
                heapq.heappush(
                    heap, (next_cost, next_hop_name, neighbor, next_hop_name)
                )
            elif known == next_cost and neighbor not in settled:
                # Equal-cost path: push so the smaller first hop wins.
                heapq.heappush(
                    heap, (next_cost, next_hop_name, neighbor, next_hop_name)
                )
    return ShortestPaths(root, distance, first_hop)
