"""The link-state database.

Stores the newest LSA per originating router and exposes the implied
directed graph. SPF runs over a snapshot of this graph.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.igp.lsa import LinkStateAd


class LinkStateDatabase:
    """Newest-LSA-wins store, per origin router.

    ``apply`` returns True when the database actually changed, so callers
    (the collector, the BGP re-selection hook) can skip work on duplicate
    floods — routers re-flood identical LSAs constantly in real networks.
    """

    def __init__(self) -> None:
        self._lsas: dict[str, LinkStateAd] = {}

    def __len__(self) -> int:
        return len(self._lsas)

    def __contains__(self, origin: str) -> bool:
        return origin in self._lsas

    def get(self, origin: str) -> Optional[LinkStateAd]:
        return self._lsas.get(origin)

    def apply(self, lsa: LinkStateAd) -> bool:
        """Install *lsa* if it is news. Returns True if the LSDB changed."""
        current = self._lsas.get(lsa.origin)
        if current is not None:
            if lsa.sequence < current.sequence:
                return False
            if lsa.sequence == current.sequence:
                # Same sequence: re-flood of a known LSA, not a change.
                return False
        if not lsa.links:
            # Empty link set retracts the router entirely.
            if current is None:
                return False
            del self._lsas[lsa.origin]
            return True
        self._lsas[lsa.origin] = lsa
        return True

    def routers(self) -> Iterator[str]:
        yield from self._lsas

    def edges(self) -> Iterator[tuple[str, str, int]]:
        """Yield (origin, neighbor, metric) for every link in the LSDB."""
        # repro: allow[DET002] LSDB insertion order follows the flooding
        # order of the deterministic simulation; SPF consumes edges
        # order-insensitively anyway.
        for lsa in self._lsas.values():
            for link in lsa.links:
                yield lsa.origin, link.neighbor, link.metric

    def graph(self) -> dict[str, list[tuple[str, int]]]:
        """Adjacency-list snapshot: origin → [(neighbor, metric), …].

        Only links whose *both* endpoints advertise each other are treated
        as usable, matching OSPF's two-way connectivity check. Links to
        pseudo-nodes (origins that advertise nothing) are kept, since stub
        networks never advertise back.
        """
        adjacency: dict[str, list[tuple[str, int]]] = {
            origin: [] for origin in self._lsas
        }
        for origin, lsa in self._lsas.items():
            for link in lsa.links:
                peer = self._lsas.get(link.neighbor)
                if peer is not None and not any(
                    back.neighbor == origin for back in peer.links
                ):
                    continue  # one-way report; fails the two-way check
                adjacency[origin].append((link.neighbor, link.metric))
        return adjacency
