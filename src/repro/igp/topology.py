"""A managed IGP topology.

:class:`IGPTopology` is the operator-level view: named routers with
addresses, bidirectional links with metrics, and mutation operations
(metric change, link failure/restore) that flood the corresponding LSAs.
All floods are recorded as an LSA event stream — the low-volume data
source Section III-D.3 joins against BGP incidents — and the topology
hands the BGP decision process a cost function over nexthop addresses.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.bgp.decision import IgpCostFn
from repro.igp.database import LinkStateDatabase
from repro.igp.lsa import Link, LinkStateAd
from repro.igp.spf import ShortestPaths, spf


class IGPTopology:
    """Routers, links, LSA flooding and SPF, under one roof."""

    def __init__(self) -> None:
        self.database = LinkStateDatabase()
        self.events: list[LinkStateAd] = []
        self._links: dict[str, dict[str, int]] = {}
        self._addresses: dict[int, str] = {}
        self._sequence: dict[str, int] = {}
        self._spf_cache: dict[str, ShortestPaths] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_router(self, name: str, addresses: Iterable[int] = ()) -> None:
        """Register *name*, owning the given interface addresses."""
        if name in self._links:
            raise ValueError(f"duplicate IGP router {name}")
        self._links[name] = {}
        for address in addresses:
            self.add_address(name, address)

    def add_address(self, name: str, address: int) -> None:
        """Assign an interface *address* to router *name*."""
        if name not in self._links:
            raise ValueError(f"unknown IGP router {name}")
        owner = self._addresses.get(address)
        if owner is not None and owner != name:
            raise ValueError(
                f"address {address:#x} already owned by {owner}"
            )
        self._addresses[address] = name

    def add_link(self, a: str, b: str, metric: int, now: float = 0.0) -> None:
        """Create the bidirectional link a↔b and flood both LSAs."""
        for name in (a, b):
            if name not in self._links:
                raise ValueError(f"unknown IGP router {name}")
        if a == b:
            raise ValueError(f"self-link on {a}")
        self._links[a][b] = metric
        self._links[b][a] = metric
        self._flood(a, now)
        self._flood(b, now)

    # ------------------------------------------------------------------
    # Mutation (each floods LSAs)
    # ------------------------------------------------------------------

    def set_metric(self, a: str, b: str, metric: int, now: float = 0.0) -> None:
        """Change the metric of link a↔b (both directions)."""
        self._require_link(a, b)
        self._links[a][b] = metric
        self._links[b][a] = metric
        self._flood(a, now)
        self._flood(b, now)

    def fail_link(self, a: str, b: str, now: float = 0.0) -> None:
        """Take link a↔b down."""
        self._require_link(a, b)
        del self._links[a][b]
        del self._links[b][a]
        self._flood(a, now)
        self._flood(b, now)

    def restore_link(self, a: str, b: str, metric: int, now: float = 0.0) -> None:
        """Bring link a↔b back with *metric*."""
        self.add_link(a, b, metric, now)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def routers(self) -> Iterator[str]:
        yield from self._links

    def link_metric(self, a: str, b: str) -> Optional[int]:
        return self._links.get(a, {}).get(b)

    def shortest_paths(self, root: str) -> ShortestPaths:
        cached = self._spf_cache.get(root)
        if cached is None:
            cached = spf(self.database.graph(), root)
            self._spf_cache[root] = cached
        return cached

    def cost_between(self, a: str, b: str) -> Optional[int]:
        """IGP cost from router *a* to router *b*, or None if unreachable."""
        return self.shortest_paths(a).cost(b)

    def router_for_address(self, address: int) -> Optional[str]:
        return self._addresses.get(address)

    def cost_fn(self, root: str) -> IgpCostFn:
        """A nexthop-address cost function for *root*'s BGP decision.

        Addresses not owned by any IGP router resolve to cost 0 — they are
        outside the IGP (a directly connected EBGP peer) and always
        reachable, matching how routers treat connected nexthops.
        """

        def cost(nexthop: int) -> Optional[int]:
            owner = self._addresses.get(nexthop)
            if owner is None:
                return 0
            if owner == root:
                return 0
            return self.shortest_paths(root).cost(owner)

        return cost

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require_link(self, a: str, b: str) -> None:
        if b not in self._links.get(a, {}):
            raise ValueError(f"no link between {a} and {b}")

    def _flood(self, origin: str, now: float) -> None:
        sequence = self._sequence.get(origin, 0) + 1
        self._sequence[origin] = sequence
        lsa = LinkStateAd(
            origin=origin,
            links=tuple(
                Link(neighbor, metric)
                for neighbor, metric in sorted(self._links[origin].items())
            ),
            sequence=sequence,
            timestamp=now,
        )
        if self.database.apply(lsa):
            self.events.append(lsa)
            self._spf_cache.clear()
