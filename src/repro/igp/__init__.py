"""The IGP substrate: link-state routing inside an AS.

The paper's networks run OSPF (Berkeley, four areas) and ISIS (ISP-Anon).
For our purposes both reduce to the same thing: a link-state database built
from LSAs, Dijkstra SPF over it, and a stream of LSA events whose volume is
orders of magnitude below BGP's — which is what makes the Section III-D.3
drill-down (temporally joining LSAs with a BGP incident) practical.

The BGP decision process consumes :meth:`IGPTopology.cost_fn`, closing the
loop where an IGP metric change makes a router re-select its BGP best
route.
"""

from repro.igp.lsa import LinkStateAd, Link
from repro.igp.database import LinkStateDatabase
from repro.igp.spf import ShortestPaths, spf
from repro.igp.topology import IGPTopology

__all__ = [
    "Link",
    "LinkStateAd",
    "LinkStateDatabase",
    "ShortestPaths",
    "spf",
    "IGPTopology",
]
