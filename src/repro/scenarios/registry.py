"""The scenario registry: named, seeded, parameterizable generators.

Each :class:`Scenario` entry binds a builder to its default knobs and
its scoring configuration (the window/slide the detector runs at and
the top-*k* cutoff the scorer judges). ``repro scenarios`` lists,
describes, generates, and scores entries by name; the detection-quality
gate iterates :func:`scored_names`.

Defaults are sized for seconds-scale generation (small sites) so the
gate and CI can regenerate every scenario per run; knobs can be
overridden per call for larger studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional

from repro.scenarios import catalog, paper
from repro.scenarios.labels import IncidentClass, LabeledIncident


@dataclass(frozen=True, slots=True)
class Scenario:
    """One registered scenario family."""

    name: str
    incident_class: IncidentClass
    summary: str
    #: Where the anomaly shape comes from (paper section or arXiv id).
    reference: str
    builder: Callable[..., LabeledIncident]
    #: Default builder kwargs, stored immutably.
    defaults: tuple[tuple[str, object], ...] = ()
    #: Detector configuration the scorer uses for this family.
    window: float = 60.0
    slide: Optional[float] = 30.0
    top_k: int = 3
    #: False for incidents with no stem-shaped ground truth.
    scored: bool = True

    def build(self, seed: int = 0, **overrides: object) -> LabeledIncident:
        kwargs = dict(self.defaults)
        kwargs.update(overrides)
        incident = self.builder(seed=seed, **kwargs)
        if incident.seed is None:
            incident = replace(incident, seed=seed)
        return incident

    def describe(self) -> str:
        knobs = ", ".join(f"{k}={v!r}" for k, v in self.defaults)
        lines = [
            f"{self.name} [{self.incident_class.value}]",
            f"  {self.summary}",
            f"  reference: {self.reference}",
            f"  defaults:  {knobs or '(none)'}",
            f"  scoring:   window={self.window}s slide={self.slide}s"
            f" top_k={self.top_k}"
            f"{'' if self.scored else ' (not scored: no true stem)'}",
        ]
        return "\n".join(lines)


# -- Paper-scenario adapters -------------------------------------------
#
# The Section IV injectors take a built site; the registry's contract
# is ``builder(seed=..., **knobs)``. These wrappers construct the site,
# forward the knobs, and stamp the seed (the simulations themselves are
# deterministic — the seed is recorded for provenance and fingerprint
# bookkeeping, not consumed).


def _berkeley(seed: int, n_prefixes: int, scenario: str, **kwargs: object):
    site = paper.BerkeleySite(n_prefixes=n_prefixes)
    incident = getattr(paper, scenario)(site, **kwargs)
    return replace(incident, seed=seed)


def _paper_route_leak(
    seed: int = 0, *, n_prefixes: int = 200, cycles: int = 2
) -> LabeledIncident:
    return _berkeley(seed, n_prefixes, "route_leak", cycles=cycles)


def _paper_backdoor_routes(
    seed: int = 0, *, n_prefixes: int = 200
) -> LabeledIncident:
    return _berkeley(seed, n_prefixes, "backdoor_routes")


def _paper_session_reset(
    seed: int = 0, *, n_prefixes: int = 200, down_for: float = 45.0
) -> LabeledIncident:
    return _berkeley(seed, n_prefixes, "session_reset", down_for=down_for)


def _paper_community_mistag(
    seed: int = 0, *, n_prefixes: int = 200
) -> LabeledIncident:
    site = paper.BerkeleySite(n_prefixes=n_prefixes)
    return replace(paper.community_mistag(site), seed=seed)


def _paper_max_prefix_leak(
    seed: int = 0,
    *,
    n_prefixes: int = 200,
    leaked_count: int = 250,
    limit: int = 100,
) -> LabeledIncident:
    return _berkeley(
        seed, n_prefixes, "max_prefix_leak",
        leaked_count=leaked_count, limit=limit,
    )


def _paper_customer_flap(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    customer_prefix_count: int = 4,
    flap_count: int = 10,
    period: float = 60.0,
) -> LabeledIncident:
    from repro.net.prefix import Prefix

    isp = paper.IspAnonSite(
        n_reflectors=n_reflectors, n_prefixes=n_prefixes
    )
    # A multi-prefix customer cone, so the stem pins the session rather
    # than a single prefix.
    prefixes = [
        Prefix.parse(f"203.0.{112 + i}.0/24")
        for i in range(customer_prefix_count)
    ]
    incident = paper.customer_flap(
        isp, customer_prefixes=prefixes,
        flap_count=flap_count, period=period,
    )
    return replace(incident, seed=seed)


def _paper_full_table_hijack(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    hold: float = 600.0,
) -> LabeledIncident:
    isp = paper.IspAnonSite(
        n_reflectors=n_reflectors, n_prefixes=n_prefixes
    )
    return replace(paper.full_table_hijack(isp, hold=hold), seed=seed)


def _paper_med_oscillation(
    seed: int = 0, *, flap_count: int = 50, period: float = 0.02
) -> LabeledIncident:
    incident = paper.med_oscillation(
        flap_count=flap_count, period=period
    )
    return replace(incident, seed=seed)


_ENTRIES = (
    # -- The catalog: families beyond the paper (ROADMAP item 2) -------
    Scenario(
        name="burst-announcements",
        incident_class=IncidentClass.BURST,
        summary=(
            "Fresh-prefix announcement storms arriving in seeded"
            " heavy-tailed bursts through one access router."
        ),
        reference="Moriano et al., arXiv:1905.05835",
        builder=catalog.burst_announcements,
        defaults=(("bursts", 4), ("prefixes_per_burst", 10)),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="valley-route-leak",
        incident_class=IncidentClass.ROUTE_LEAK,
        summary=(
            "A customer re-exports provider routes during upstream"
            " failures: valley-violating paths appear and recede."
        ),
        reference="CAIR, arXiv:1605.00618",
        builder=catalog.valley_route_leak,
        defaults=(("cycles", 2), ("victim_origins", 3)),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="interception-hijack",
        incident_class=IncidentClass.INTERCEPTION,
        summary=(
            "A forged-origin interception path wins on AS-path length"
            " and inserts a fabricated attacker-victim edge."
        ),
        reference="CAIR, arXiv:1605.00618",
        builder=catalog.interception_hijack,
        defaults=(("victim_families", 3), ("hold", 120.0)),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="hyper-specific-flood",
        incident_class=IncidentClass.HYPER_SPECIFIC,
        summary=(
            "A flood of /25-/32 more-specifics carved out of standing"
            " /24s, each winning on longest-prefix match."
        ),
        reference="Sediqi et al., arXiv:2206.13876",
        builder=catalog.hyper_specific_flood,
        defaults=(("flood_count", 48),),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="community-signal",
        incident_class=IncidentClass.COMMUNITY_SIGNAL,
        summary=(
            "A blackhole-style signal community flips on and off across"
            " one neighbor's routes; attribute churn, no prefix moves."
        ),
        reference="CommunityWatch, arXiv:1806.07476",
        builder=catalog.community_signal,
        defaults=(("cycles", 6), ("period", 30.0)),
        window=60.0,
        slide=30.0,
    ),
    # -- The paper's incidents, registered at gate-friendly sizes ------
    Scenario(
        name="route-leak",
        incident_class=IncidentClass.ROUTE_LEAK,
        summary=(
            "Figure 7: CalREN leaks 6-AS-hop paths; Berkeley's"
            " community filter silently drops the moved routes."
        ),
        reference="paper §IV (Figure 7)",
        builder=_paper_route_leak,
        defaults=(("n_prefixes", 200), ("cycles", 2)),
        window=180.0,
        slide=90.0,
    ),
    Scenario(
        name="backdoor-routes",
        incident_class=IncidentClass.MISCONFIGURATION,
        summary=(
            "Figure 5: two backdoor routes to AT&T appear on edge"
            " 1.222, visible only under hierarchical pruning."
        ),
        reference="paper §IV (Figure 5)",
        builder=_paper_backdoor_routes,
        defaults=(("n_prefixes", 200),),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="session-reset",
        incident_class=IncidentClass.SESSION_RESET,
        summary=(
            "Section I anatomy of a peering reset: mass withdrawal,"
            " re-establishment, full-table re-announcement."
        ),
        reference="paper §I/§IV",
        builder=_paper_session_reset,
        defaults=(("n_prefixes", 200), ("down_for", 45.0)),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="community-mistag",
        incident_class=IncidentClass.MISCONFIGURATION,
        summary=(
            "Figure 6: the CENIC LAAP community mis-tagged onto KDDI"
            " routes — a subset view, no stem-shaped ground truth."
        ),
        reference="paper §IV (Figure 6)",
        builder=_paper_community_mistag,
        defaults=(("n_prefixes", 200),),
        scored=False,
    ),
    Scenario(
        name="customer-flap",
        incident_class=IncidentClass.FLAP,
        summary=(
            "Figure 9: a customer session flaps ~once a minute; every"
            " PoP fails over to 3-hop alternates via the NAP."
        ),
        reference="paper §IV (Figure 9)",
        builder=_paper_customer_flap,
        defaults=(("flap_count", 10), ("period", 60.0)),
        window=120.0,
        slide=60.0,
    ),
    Scenario(
        name="full-table-hijack",
        incident_class=IncidentClass.ORIGIN_HIJACK,
        summary=(
            "Section I catastrophe: one AS announces the full table"
            " with 1-hop paths and becomes transit for everything."
        ),
        reference="paper §I",
        builder=_paper_full_table_hijack,
        defaults=(("hold", 600.0),),
        window=120.0,
        slide=60.0,
    ),
    Scenario(
        name="max-prefix-leak",
        incident_class=IncidentClass.ROUTE_LEAK,
        summary=(
            "Section I war story: a leak trips the peer's max-prefix"
            " safeguard; the session closes and takes the legitimate"
            " routes with it."
        ),
        reference="paper §I",
        builder=_paper_max_prefix_leak,
        defaults=(("leaked_count", 250), ("limit", 100)),
        window=60.0,
        slide=30.0,
    ),
    Scenario(
        name="med-oscillation",
        incident_class=IncidentClass.OSCILLATION,
        summary=(
            "Figure 3: persistent fast MED oscillation on 4.5.0.0/16"
            " churning 95% of the core's IBGP traffic."
        ),
        reference="paper §II (Figure 3)",
        builder=_paper_med_oscillation,
        defaults=(("flap_count", 50), ("period", 0.02)),
        window=0.5,
        slide=0.25,
    ),
)

SCENARIOS: dict[str, Scenario] = {entry.name: entry for entry in _ENTRIES}


def names() -> list[str]:
    """Registered scenario names, catalog first, registration order."""
    return [entry.name for entry in _ENTRIES]


def scored_names() -> list[str]:
    return [entry.name for entry in _ENTRIES if entry.scored]


def get(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(names())
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def generate(
    name: str, seed: int = 0, **overrides: object
) -> LabeledIncident:
    """Build one scenario by name: same seed, same stream fingerprint."""
    return get(name).build(seed=seed, **overrides)


def iter_scenarios() -> Iterator[Scenario]:
    return iter(_ENTRIES)
