"""The label schema: machine-readable ground truth for a scenario.

Every scenario in the library emits a :class:`LabeledIncident` — the
event stream the collector saw plus everything a scorer needs to judge
a detector against it: the incident class, the true stem edge(s) the
Stemming decomposition should report, the affected prefix set, and the
active time window. The types here are deliberately frozen and slotted:
ground truth that a test can mutate is not ground truth.

``true_stems`` holds *every* ground-truth problem edge, as bare value
pairs matching :attr:`repro.stemming.stemmer.Component.location`. Most
incidents have exactly one; a route leak has one per leaked adjacency.
Recall is measured against all of them (DESIGN.md §12).

:class:`ScenarioDetails` replaces the old untyped ``details: dict``: an
immutable mapping with a constrained value vocabulary, so scenario
facts serialize cleanly into the labels artifact and cannot be edited
after construction. The legacy :func:`Incident` constructor keeps the
pre-library call shape working (single optional ``true_stem``, plain
``dict`` details).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Union

from repro.collector.stream import EventStream
from repro.net.prefix import Prefix

#: One ground-truth problem edge, as bare stem values — the exact shape
#: :attr:`repro.stemming.stemmer.Component.location` reports.
StemEdge = tuple[object, object]

#: Scenario facts are restricted to JSON-friendly scalars and int
#: tuples (AS paths, prefix-length histograms) so the labels artifact
#: round-trips without custom encoders.
DetailValue = Union[int, float, str, bool, None, tuple[int, ...]]


class IncidentClass(enum.Enum):
    """Taxonomy of the anomaly catalog (ROADMAP item 2 families)."""

    #: Announcement bursts with bursty inter-arrival structure
    #: (Moriano et al., arXiv:1905.05835).
    BURST = "burst"
    #: Route leaks via valley-violating AS-path patterns
    #: (CAIR, arXiv:1605.00618).
    ROUTE_LEAK = "route-leak"
    #: Interception / forged-origin hijack paths (CAIR).
    INTERCEPTION = "interception"
    #: Hyper-specific-prefix floods, /25–/32 (Sediqi et al.,
    #: arXiv:2206.13876).
    HYPER_SPECIFIC = "hyper-specific"
    #: Community-tag-signaled events (CommunityWatch, arXiv:1806.07476).
    COMMUNITY_SIGNAL = "community-signal"
    #: The paper's Section IV / Section I incident shapes.
    SESSION_RESET = "session-reset"
    ORIGIN_HIJACK = "origin-hijack"
    FLAP = "flap"
    OSCILLATION = "oscillation"
    MISCONFIGURATION = "misconfiguration"


class ScenarioDetails(Mapping[str, DetailValue]):
    """Immutable, typed scenario facts (the old ``details`` dict).

    Behaves as a read-only mapping — ``details["flap_count"]`` keeps
    working everywhere the dict did — but the storage is a frozen item
    tuple, lists arrive as int tuples, and every value is checked
    against :data:`DetailValue` at construction time.
    """

    __slots__ = ("_items",)

    def __init__(self, **facts: DetailValue) -> None:
        items = []
        for key, value in facts.items():
            if isinstance(value, list):
                value = tuple(value)
            if isinstance(value, tuple):
                if not all(isinstance(v, int) for v in value):
                    raise TypeError(
                        f"detail {key!r}: tuples must be all-int,"
                        f" got {value!r}"
                    )
            elif not isinstance(value, (int, float, str, bool, type(None))):
                raise TypeError(
                    f"detail {key!r} has unsupported type"
                    f" {type(value).__name__}; allowed: int, float, str,"
                    " bool, None, tuple[int, ...]"
                )
            items.append((key, value))
        self._items: tuple[tuple[str, DetailValue], ...] = tuple(items)

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, DetailValue]
    ) -> "ScenarioDetails":
        return cls(**dict(mapping))

    def __getitem__(self, key: str) -> DetailValue:
        for name, value in self._items:
            if name == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"ScenarioDetails({body})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ScenarioDetails):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._items)

    def to_dict(self) -> dict[str, DetailValue]:
        """A plain-dict copy (JSON artifact form; lists for tuples)."""
        return {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in self._items
        }


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """The incident's active interval, in stream (archive) seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"window ends before it starts: [{self.start}, {self.end}]"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, start: float, end: float) -> bool:
        """True when [start, end) intersects the active window.

        A zero-length active window (an instantaneous incident) still
        overlaps any span containing its instant.
        """
        if self.duration == 0.0:
            return start <= self.start < end
        return start < self.end and end > self.start


def _stem_text(edge: StemEdge) -> list[str]:
    return [str(edge[0]), str(edge[1])]


@dataclass(frozen=True, slots=True)
class LabeledIncident:
    """One generated anomaly plus its machine-readable ground truth."""

    name: str
    incident_class: IncidentClass
    stream: EventStream
    #: Every AS-graph edge where the problem lies, as Stemming should
    #: report them (empty when the incident has no stem-shaped
    #: location, e.g. the Figure 6 mis-tagging).
    true_stems: tuple[StemEdge, ...]
    #: Prefixes the incident affects.
    affected_prefixes: frozenset[Prefix]
    #: When the incident was active in stream time.
    window: TimeWindow
    #: Typed scenario facts used by assertions and reports.
    details: ScenarioDetails = field(default_factory=ScenarioDetails)
    #: Seed the generator ran with (paper scenarios are deterministic
    #: simulations; they record the seed they were asked for anyway).
    seed: Optional[int] = None

    @property
    def true_stem(self) -> Optional[StemEdge]:
        """Back-compat single-location view (first true stem or None)."""
        return self.true_stems[0] if self.true_stems else None

    def labels_dict(self) -> dict[str, object]:
        """The ground-truth side alone, JSON-serializable.

        This is the labels artifact ``repro scenarios generate``
        writes next to the event stream: everything except the events.
        """
        return {
            "name": self.name,
            "class": self.incident_class.value,
            "seed": self.seed,
            "true_stems": [_stem_text(edge) for edge in self.true_stems],
            "affected_prefixes": sorted(
                str(p) for p in self.affected_prefixes
            ),
            "window": {"start": self.window.start, "end": self.window.end},
            "events": len(self.stream),
            "fingerprint": self.stream.fingerprint(),
            "details": self.details.to_dict(),
        }

    def labels_json(self) -> str:
        return json.dumps(self.labels_dict(), sort_keys=True, indent=1)


def Incident(
    name: str,
    stream: EventStream,
    true_stem: Optional[StemEdge],
    affected_prefixes: Optional[set[Prefix]] = None,
    details: Optional[Mapping[str, DetailValue]] = None,
    *,
    incident_class: Optional[IncidentClass] = None,
    seed: Optional[int] = None,
) -> LabeledIncident:
    """Legacy constructor shape → :class:`LabeledIncident`.

    The pre-library :class:`Incident` dataclass took a single optional
    ``true_stem`` and a mutable ``details`` dict; scenario code and
    tests written against it keep working through this factory. The
    active window defaults to the stream's own span.
    """
    start = stream.start_time
    end = stream.end_time
    window = TimeWindow(
        0.0 if start is None else start, 0.0 if end is None else end
    )
    return LabeledIncident(
        name=name,
        incident_class=(
            incident_class
            if incident_class is not None
            else _LEGACY_CLASSES.get(name, IncidentClass.MISCONFIGURATION)
        ),
        stream=stream,
        true_stems=() if true_stem is None else (true_stem,),
        affected_prefixes=frozenset(affected_prefixes or ()),
        window=window,
        details=ScenarioDetails.from_mapping(details or {}),
        seed=seed,
    )


#: Incident classes for the paper's pre-library scenario names, so the
#: legacy constructor labels them correctly without callers changing.
_LEGACY_CLASSES = {
    "route-leak": IncidentClass.ROUTE_LEAK,
    "backdoor-routes": IncidentClass.MISCONFIGURATION,
    "session-reset": IncidentClass.SESSION_RESET,
    "community-mistag": IncidentClass.MISCONFIGURATION,
    "customer-flap": IncidentClass.FLAP,
    "full-table-hijack": IncidentClass.ORIGIN_HIJACK,
    "max-prefix-leak": IncidentClass.ROUTE_LEAK,
    "med-oscillation": IncidentClass.OSCILLATION,
}
