"""Precision/recall scoring of Stemming against labeled scenarios.

The scorer runs :class:`repro.pipeline.windows.WindowedStemmer` over a
:class:`LabeledIncident`'s stream and matches each window's ranked stem
locations against the incident's ground-truth edges (DESIGN.md §12):

* a ranked stem *matches* when its bare location pair equals one of
  ``incident.true_stems`` (the same values
  :attr:`repro.stemming.stemmer.Component.location` reports);
* per window, precision = matching stems in the top *k* over ranked
  stems considered, recall = distinct true stems covered by the top
  *k* over all true stems, F1 their harmonic mean;
* only windows overlapping the incident's active window are scored,
  and per-incident metrics are means over those windows, plus the best
  (lowest) rank any true stem ever achieved and the fraction of
  windows where a true stem was ranked first / in the top *k*.

Since the incident subsystem landed, the scorer also scores the
*streaming* lifecycle (Moriano et al., arXiv:1905.05835, evaluate
detection *delay* against labeled onsets, not just hit rates): the
same window reports are folded through an
:class:`~repro.incidents.manager.IncidentManager` and each scenario
reports how many managed incidents matched the ground-truth stems
(the merge rules should produce exactly one), the detection latency
from labeled onset to the incident opening, and its time-to-resolve.

:class:`Scorecard` aggregates incident scores into the JSON artifact
(``bench_results/SCORE_scenarios.json``), and
:func:`compare_scorecards` diffs a fresh scorecard against the
checked-in baseline in the same >-threshold style as
``benchmarks/bench_guard.py`` — the tier-1 detection-quality gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.incidents.lifecycle import IncidentRecord, stem_key
from repro.incidents.manager import IncidentManager, IncidentPolicy
from repro.pipeline.runtime import Batch
from repro.pipeline.windows import WindowedStemmer, WindowReport
from repro.scenarios.labels import LabeledIncident, StemEdge

#: Absolute drop in a [0, 1] metric that fails the gate.
DEFAULT_TOLERANCE = 0.05

#: The [0, 1] metrics the gate compares, in report order.
GATE_METRICS = (
    "precision",
    "recall",
    "f1",
    "top1_rate",
    "topk_rate",
    "prefix_recall",
)

#: Lifecycle timings may drift this much (relative) plus a one-second
#: absolute floor before the gate calls it a regression — they are
#: stream-time quantities, so any real movement means the merge rules
#: or window geometry changed, not the hardware.
TIMING_RELATIVE_SLACK = 0.25
TIMING_ABSOLUTE_SLACK = 1.0


@dataclass(frozen=True, slots=True)
class RankedScore:
    """Match quality of one ranked-stem list against ground truth."""

    precision: float
    recall: float
    f1: float
    #: 1-based rank of the best-placed true stem in the *full* ranking
    #: (None when no true stem was ranked at all).
    best_rank: Optional[int]
    top1_hit: bool
    topk_hit: bool


def score_ranked(
    ranked: Sequence[StemEdge],
    true_stems: Sequence[StemEdge],
    k: int,
) -> RankedScore:
    """Score one ranked list of stem locations against the true edges.

    Precision counts over the stems actually considered —
    ``min(k, len(ranked))`` — so a short-but-correct ranking is not
    penalized for stems it never claimed; an empty ranking scores zero
    across the board. Duplicate true stems in the top *k* count once
    for recall but every occurrence counts for precision.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not true_stems:
        raise ValueError("cannot score against empty ground truth")
    truth = set(true_stems)
    head = list(ranked[:k])
    if not head:
        return RankedScore(0.0, 0.0, 0.0, None, False, False)
    matches = sum(1 for stem in head if stem in truth)
    covered = len(truth & set(head))
    precision = matches / len(head)
    recall = covered / len(truth)
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    best_rank = None
    for position, stem in enumerate(ranked, start=1):
        if stem in truth:
            best_rank = position
            break
    return RankedScore(
        precision=precision,
        recall=recall,
        f1=f1,
        best_rank=best_rank,
        top1_hit=bool(head) and head[0] in truth,
        topk_hit=covered > 0,
    )


@dataclass(frozen=True, slots=True)
class IncidentScore:
    """Detection quality of the windowed detector on one incident."""

    scenario: str
    incident_class: str
    seed: Optional[int]
    events: int
    #: Windows the detector emitted / windows that overlapped the
    #: incident's active span and were scored.
    windows: int
    windows_scored: int
    precision: float
    recall: float
    f1: float
    #: Best (lowest) rank any true stem achieved in any scored window.
    best_rank: Optional[int]
    #: Fraction of scored windows with a true stem at rank 1 / in top k.
    top1_rate: float
    topk_rate: float
    #: Share of the labeled affected prefixes that appear in matched
    #: components across scored windows.
    prefix_recall: float
    detected: bool
    #: Managed incidents whose stem (or a merged related stem) matched
    #: a true stem — the merge rules should yield exactly one.
    incidents: int = 0
    #: Stream-seconds from the labeled onset to the matched incident
    #: opening (None when no incident matched).
    detection_latency: Optional[float] = None
    #: Stream-seconds the matched incident stayed open.
    time_to_resolve: Optional[float] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "class": self.incident_class,
            "seed": self.seed,
            "events": self.events,
            "windows": self.windows,
            "windows_scored": self.windows_scored,
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
            "best_rank": self.best_rank,
            "top1_rate": round(self.top1_rate, 6),
            "topk_rate": round(self.topk_rate, 6),
            "prefix_recall": round(self.prefix_recall, 6),
            "detected": self.detected,
            "incidents": self.incidents,
            "detection_latency": (
                None
                if self.detection_latency is None
                else round(self.detection_latency, 6)
            ),
            "time_to_resolve": (
                None
                if self.time_to_resolve is None
                else round(self.time_to_resolve, 6)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IncidentScore":
        best_rank = data.get("best_rank")
        return cls(
            scenario=str(data["scenario"]),
            incident_class=str(data.get("class", "")),
            seed=data.get("seed"),
            events=int(data.get("events", 0)),
            windows=int(data.get("windows", 0)),
            windows_scored=int(data.get("windows_scored", 0)),
            precision=float(data.get("precision", 0.0)),
            recall=float(data.get("recall", 0.0)),
            f1=float(data.get("f1", 0.0)),
            best_rank=None if best_rank is None else int(best_rank),
            top1_rate=float(data.get("top1_rate", 0.0)),
            topk_rate=float(data.get("topk_rate", 0.0)),
            prefix_recall=float(data.get("prefix_recall", 0.0)),
            detected=bool(data.get("detected", False)),
            incidents=int(data.get("incidents", 0)),
            detection_latency=_opt_float(data.get("detection_latency")),
            time_to_resolve=_opt_float(data.get("time_to_resolve")),
        )


def _opt_float(value: object) -> Optional[float]:
    return None if value is None else float(value)


def _zero_score(
    incident: LabeledIncident, windows: int = 0
) -> IncidentScore:
    return IncidentScore(
        scenario=incident.name,
        incident_class=incident.incident_class.value,
        seed=incident.seed,
        events=len(incident.stream),
        windows=windows,
        windows_scored=0,
        precision=0.0,
        recall=0.0,
        f1=0.0,
        best_rank=None,
        top1_rate=0.0,
        topk_rate=0.0,
        prefix_recall=0.0,
        detected=False,
    )


def lifecycle_policy(window: float, min_strength: int = 2) -> IncidentPolicy:
    """The scorer's incident policy, scaled to the window geometry.

    ``resolve_after`` of two windows lets an incident survive one quiet
    window without closing; the effectively unbounded reopen window
    means a true stem recurring late in the scenario reopens its
    original incident instead of fragmenting into a second one — which
    is what "exactly one merged incident per scenario" requires.
    """
    return IncidentPolicy(
        resolve_after=2.0 * window,
        correlation_window=2.0 * window,
        reopen_window=1e12,
        investigate_after=2,
        prefix_overlap=0.5,
        min_strength=min_strength,
    )


def _score_lifecycle(
    reports: Sequence[WindowReport],
    incident: LabeledIncident,
    policy: IncidentPolicy,
) -> tuple[int, Optional[float], Optional[float]]:
    """Fold reports through the incident manager, match ground truth.

    Returns ``(matched incidents, detection latency, time to
    resolve)``: an incident matches when its stem — or any stem merged
    into it — equals a true stem; latency and time-to-resolve come
    from the earliest-opened match.
    """
    manager = IncidentManager(policy=policy)
    for report in reports:
        manager.ingest(report)
    manager.finalize()
    truth = {stem_key(edge) for edge in incident.true_stems}

    def matches(record: IncidentRecord) -> bool:
        return record.stem in truth or any(
            related in truth for related in record.related_stems
        )

    matched = [r for r in manager.all_incidents() if matches(r)]
    if not matched:
        return 0, None, None
    first = min(matched, key=lambda r: (r.opened_at, r.incident_id))
    latency = first.opened_at - incident.window.start
    return len(matched), latency, first.time_to_resolve


def score_incident(
    incident: LabeledIncident,
    *,
    window: float,
    slide: Optional[float] = None,
    top_k: int = 3,
    min_strength: int = 2,
    max_components: int = 16,
    workers: Optional[int] = None,
    stage: Optional[WindowedStemmer] = None,
) -> IncidentScore:
    """Run the windowed detector over one labeled stream and score it.

    *stage* substitutes a pre-built (possibly deliberately degraded)
    :class:`WindowedStemmer`; the perturbation tests use it to prove
    the gate trips.
    """
    if not incident.true_stems:
        raise ValueError(
            f"scenario {incident.name!r} has no true stems to score"
        )
    if stage is None:
        stage = WindowedStemmer(
            window,
            slide,
            min_strength=min_strength,
            max_components=max_components,
            workers=workers,
        )
    events = tuple(incident.stream)
    if not events:
        return _zero_score(incident)
    outputs = list(stage.process(Batch(events, 0, len(events))) or [])
    outputs.extend(stage.flush() or [])
    reports = [item for item in outputs if isinstance(item, WindowReport)]
    scored = [
        report
        for report in reports
        if incident.window.overlaps(report.start, report.end)
    ]
    if not scored:
        return _zero_score(incident, windows=len(reports))
    per_window: list[RankedScore] = []
    best_rank: Optional[int] = None
    matched_prefixes: set = set()
    for report in scored:
        ranked = [
            component.location for component in report.result.components
        ]
        window_score = score_ranked(ranked, incident.true_stems, top_k)
        per_window.append(window_score)
        if window_score.best_rank is not None and (
            best_rank is None or window_score.best_rank < best_rank
        ):
            best_rank = window_score.best_rank
        for component in report.result.components[:top_k]:
            if component.location in set(incident.true_stems):
                matched_prefixes.update(component.prefixes)
    count = len(per_window)
    prefix_recall = (
        len(matched_prefixes & incident.affected_prefixes)
        / len(incident.affected_prefixes)
        if incident.affected_prefixes
        else 0.0
    )
    matched_incidents, latency, time_to_resolve = _score_lifecycle(
        reports, incident, lifecycle_policy(window, min_strength)
    )
    return IncidentScore(
        scenario=incident.name,
        incident_class=incident.incident_class.value,
        seed=incident.seed,
        events=len(events),
        windows=len(reports),
        windows_scored=count,
        precision=sum(s.precision for s in per_window) / count,
        recall=sum(s.recall for s in per_window) / count,
        f1=sum(s.f1 for s in per_window) / count,
        best_rank=best_rank,
        top1_rate=sum(1 for s in per_window if s.top1_hit) / count,
        topk_rate=sum(1 for s in per_window if s.topk_hit) / count,
        prefix_recall=prefix_recall,
        detected=any(s.topk_hit for s in per_window),
        incidents=matched_incidents,
        detection_latency=latency,
        time_to_resolve=time_to_resolve,
    )


@dataclass(slots=True)
class Scorecard:
    """The detection-quality artifact: one score row per scenario."""

    scores: dict[str, IncidentScore] = field(default_factory=dict)
    config: dict[str, object] = field(default_factory=dict)
    #: v2 added the streaming-lifecycle columns (incidents,
    #: detection_latency, time_to_resolve).
    schema: int = 2

    def add(self, score: IncidentScore) -> None:
        self.scores[score.scenario] = score

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": self.schema,
            "config": self.config,
            "scenarios": {
                name: score.to_dict()
                for name, score in sorted(self.scores.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_dict(cls, data: dict) -> "Scorecard":
        card = cls(
            config=dict(data.get("config", {})),
            schema=int(data.get("schema", 1)),
        )
        for name, row in data.get("scenarios", {}).items():
            row = dict(row)
            row.setdefault("scenario", name)
            card.add(IncidentScore.from_dict(row))
        return card

    @classmethod
    def load(cls, path: Path | str) -> "Scorecard":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def build_scorecard(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    *,
    min_strength: int = 2,
    max_components: int = 16,
    workers: Optional[int] = None,
    size_overrides: Optional[dict[str, object]] = None,
) -> Scorecard:
    """Generate and score every (or the named) scored scenarios.

    *size_overrides* is forwarded to every builder (e.g. smaller sites
    for smoke runs); unknown keys for a given builder fail loudly, so
    only pass knobs every selected scenario accepts.
    """
    from repro.scenarios import registry

    if names is None:
        names = registry.scored_names()
    card = Scorecard(
        config={
            "seed": seed,
            "min_strength": min_strength,
            "max_components": max_components,
            "tolerance": DEFAULT_TOLERANCE,
        }
    )
    for name in names:
        scenario = registry.get(name)
        if not scenario.scored:
            raise ValueError(
                f"scenario {name!r} has no ground-truth stems to score"
            )
        incident = scenario.build(seed=seed, **(size_overrides or {}))
        card.add(
            score_incident(
                incident,
                window=scenario.window,
                slide=scenario.slide,
                top_k=scenario.top_k,
                min_strength=min_strength,
                max_components=max_components,
                workers=workers,
            )
        )
    return card


@dataclass(frozen=True, slots=True)
class Regression:
    """One scenario metric that fell below its baseline."""

    scenario: str
    metric: str
    fresh: Optional[float]
    baseline: Optional[float]

    def row(self) -> str:
        fresh = "missing" if self.fresh is None else f"{self.fresh:.4f}"
        base = "-" if self.baseline is None else f"{self.baseline:.4f}"
        return (
            f"  {self.scenario:<24} {self.metric:<14}"
            f" fresh={fresh:<9} baseline={base:<9} REGRESSED"
        )


def compare_scorecards(
    fresh: Scorecard,
    baseline: Scorecard,
    tolerance: float = DEFAULT_TOLERANCE,
    rank_slack: int = 0,
) -> tuple[list[Regression], int]:
    """Diff a fresh scorecard against the checked-in baseline.

    Returns ``(regressions, checks)`` in the ``bench_guard`` style: a
    [0, 1] metric regresses when it drops more than *tolerance* below
    baseline; ``best_rank`` regresses when the true stem's best rank
    worsens by more than *rank_slack* (or vanishes). The lifecycle
    columns are gated too: the matched-incident count must equal the
    baseline exactly (fragmenting one event into two incidents — or
    merging two into one — is a merge-rule change, not noise), and
    detection latency / time-to-resolve regress when they grow beyond
    the relative+absolute timing slack or disappear. Scenarios present
    only in the fresh card are new coverage, never failures; scenarios
    missing from the fresh card fail outright.
    """
    regressions: list[Regression] = []
    checks = 0
    for name, base in sorted(baseline.scores.items()):
        current = fresh.scores.get(name)
        if current is None:
            checks += 1
            regressions.append(Regression(name, "present", None, 1.0))
            continue
        for metric in GATE_METRICS:
            checks += 1
            fresh_value = getattr(current, metric)
            base_value = getattr(base, metric)
            if fresh_value < base_value - tolerance:
                regressions.append(
                    Regression(name, metric, fresh_value, base_value)
                )
        checks += 1
        if base.best_rank is not None and (
            current.best_rank is None
            or current.best_rank > base.best_rank + rank_slack
        ):
            regressions.append(
                Regression(
                    name,
                    "best_rank",
                    None
                    if current.best_rank is None
                    else float(current.best_rank),
                    float(base.best_rank),
                )
            )
        checks += 1
        if current.incidents != base.incidents:
            regressions.append(
                Regression(
                    name,
                    "incidents",
                    float(current.incidents),
                    float(base.incidents),
                )
            )
        for metric in ("detection_latency", "time_to_resolve"):
            checks += 1
            base_value = getattr(base, metric)
            if base_value is None:
                continue
            fresh_value = getattr(current, metric)
            limit = (
                base_value * (1.0 + TIMING_RELATIVE_SLACK)
                + TIMING_ABSOLUTE_SLACK
            )
            if fresh_value is None or fresh_value > limit:
                regressions.append(
                    Regression(name, metric, fresh_value, base_value)
                )
    return regressions, checks


def format_comparison(
    fresh: Scorecard,
    baseline: Scorecard,
    regressions: Sequence[Regression],
) -> str:
    """Human-readable gate report, one line per baseline scenario."""
    failed = {(r.scenario, r.metric) for r in regressions}
    bad_scenarios = {r.scenario for r in regressions}
    lines = []
    for name, base in sorted(baseline.scores.items()):
        current = fresh.scores.get(name)
        if current is None:
            lines.append(f"  {name:<24} MISSING from fresh scorecard")
            continue
        status = "REGRESSED" if name in bad_scenarios else "ok"
        rank = "-" if current.best_rank is None else str(current.best_rank)
        latency = (
            "-"
            if current.detection_latency is None
            else f"{current.detection_latency:.0f}s"
        )
        ttr = (
            "-"
            if current.time_to_resolve is None
            else f"{current.time_to_resolve:.0f}s"
        )
        lines.append(
            f"  {name:<24} f1={current.f1:.3f} (base {base.f1:.3f})"
            f" recall={current.recall:.3f} rank={rank}"
            f" inc={current.incidents} latency={latency}"
            f" ttr={ttr} {status}"
        )
        for scenario, metric in sorted(failed):
            if scenario != name or metric == "present":
                continue
            reg = next(
                r
                for r in regressions
                if r.scenario == scenario and r.metric == metric
            )
            lines.append(reg.row())
    return "\n".join(lines)
