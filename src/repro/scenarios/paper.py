"""The paper's Section IV / Section I incidents, with labels.

Each function drives a built workload through one of the paper's
case-study anomalies and returns a :class:`LabeledIncident`: the event
stream REX captured plus ground truth (the failure location as an
AS-graph edge, the affected prefixes, the active window) against which
the Stemming detector is validated.

Where the paper's incident is a *policy interaction* (the Figure 7 route
leak meeting Berkeley's community filter), the behaviour here emerges
from the compiled route-maps on the simulated routers — nothing below
the CalREN feed is scripted.

This module is the promoted home of ``repro.simulator.scenarios``; that
path remains as a re-export shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.igp.topology import IGPTopology
from repro.net.aspath import ASPath
from repro.net.attributes import PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix, parse_address
from repro.scenarios.labels import (
    IncidentClass,
    LabeledIncident,
    ScenarioDetails,
    TimeWindow,
)
from repro.simulator.network import Network
from repro.simulator.workloads import (
    AS_ATT,
    AS_CALREN,
    AS_CUSTOMER,
    AS_ISP,
    AS_NAP,
    AS_QWEST,
    ATT_FEED_222,
    CALREN_FEED_13,
    CALREN_FEED_200,
    COMM_OTHER,
    ISP_REX_ADDRESS,
    LEAK_PATH_ASES,
    MED_PREFIX,
    NH_BACKDOOR,
    TIER1_PEERS,
    BerkeleySite,
    IspAnonSite,
)


def _events_after(rex_stream: EventStream, start: float) -> EventStream:
    return rex_stream.between(start, float("inf"))


def _after_now(network: Network, start: float, margin: float = 1.0) -> float:
    """Clamp a scenario's start time to the network's present.

    Scenarios can be chained on one site; a later scenario's default
    start must not land before the engine's clock (the engine rejects
    scheduling in the past).
    """
    return max(start, network.engine.now + margin)


def _window(stream: EventStream, start: float) -> TimeWindow:
    """The incident's active span: its start to the last event it drove.

    Streams here are already cut at the incident start, so the stream's
    own end is the last observable effect of the anomaly.
    """
    end = stream.end_time
    return TimeWindow(start, start if end is None else max(start, end))


# ----------------------------------------------------------------------
# Berkeley incidents
# ----------------------------------------------------------------------


def route_leak(
    site: BerkeleySite,
    cycles: int = 2,
    start: float = 100.0,
    leak_hold: float = 120.0,
    gap: float = 300.0,
) -> LabeledIncident:
    """Figure 7: CalREN's peers leak routes; prefixes move to a 6-AS-hop
    path; Berkeley's community filter silently stops announcing them.

    Per cycle, CalREN replaces every commodity route with the leaked path
    — crucially *without* the ISP community, since the routes no longer
    arrive directly from QWest — then restores the originals. Edge
    128.32.1.3's import map (match community ISP-ROUTES) denies the
    leaked routes, so that router implicitly withdraws them; edge
    128.32.1.200 imports them at the default LOCAL_PREF and switches
    paths. Both behaviours emerge from the compiled route-maps.
    """
    start = _after_now(site.network, start)
    feed13 = parse_address(CALREN_FEED_13)
    feed200 = parse_address(CALREN_FEED_200)
    commodity = [
        f for f in site.families if f.klass.startswith("commodity")
    ]
    when = start
    for _ in range(cycles):
        for family in commodity:
            leaked = BGPUpdate.announce(
                family.prefixes,
                PathAttributes(
                    nexthop=feed13,
                    as_path=ASPath(
                        LEAK_PATH_ASES + (family.as_path.origin_as,)
                    ),
                    communities=frozenset({COMM_OTHER}),
                ),
            )
            site.network.inject(site.edge13, feed13, leaked, at=when)
            leaked200 = BGPUpdate.announce(
                family.prefixes,
                PathAttributes(
                    nexthop=feed200,
                    as_path=ASPath(
                        LEAK_PATH_ASES + (family.as_path.origin_as,)
                    ),
                    communities=frozenset({COMM_OTHER}),
                ),
            )
            site.network.inject(site.edge200, feed200, leaked200, at=when)
        restore_at = when + leak_hold
        for family in commodity:
            site.network.inject(
                site.edge13, feed13, family.announcement(feed13), at=restore_at
            )
            site.network.inject(
                site.edge200,
                feed200,
                family.announcement(feed200),
                at=restore_at,
            )
        when = restore_at + gap
    site.network.run()
    affected = set(site.commodity_prefixes())
    stream = _events_after(site.rex.events, start)
    return LabeledIncident(
        name="route-leak",
        incident_class=IncidentClass.ROUTE_LEAK,
        stream=stream,
        true_stems=((AS_CALREN, AS_QWEST),),
        affected_prefixes=frozenset(affected),
        window=_window(stream, start),
        details=ScenarioDetails(
            cycles=cycles,
            leak_path=tuple(LEAK_PATH_ASES),
            moved_prefixes=len(affected),
        ),
    )


def backdoor_routes(
    site: BerkeleySite,
    prefixes: Optional[list[Prefix]] = None,
    start: float = 100.0,
) -> LabeledIncident:
    """Figure 5: two backdoor routes to AT&T via 169.229.0.157 appear on
    edge 128.32.1.222, invisible at the default prune threshold but
    exposed by hierarchical pruning."""
    start = _after_now(site.network, start)
    if prefixes is None:
        prefixes = [
            Prefix.parse("192.168.255.0/24"),
            Prefix.parse("192.168.254.0/24"),
        ]
    att_feed = parse_address(ATT_FEED_222)
    update = BGPUpdate.announce(
        prefixes,
        PathAttributes(
            nexthop=parse_address(NH_BACKDOOR),
            as_path=ASPath((AS_ATT, 55001)),
        ),
    )
    site.network.inject(site.edge222, att_feed, update, at=start)
    site.network.run()
    stream = _events_after(site.rex.events, start)
    return LabeledIncident(
        name="backdoor-routes",
        incident_class=IncidentClass.MISCONFIGURATION,
        stream=stream,
        true_stems=((AS_ATT, 55001),),
        affected_prefixes=frozenset(prefixes),
        window=_window(stream, start),
        details=ScenarioDetails(
            nexthop=NH_BACKDOOR, backdoor_count=len(prefixes)
        ),
    )


def session_reset(
    site: BerkeleySite,
    start: float = 100.0,
    down_for: float = 45.0,
) -> LabeledIncident:
    """A reset of the CalREN session on edge 128.32.1.3: mass withdrawal,
    re-establishment, full-table re-announcement — the Section I anatomy
    of a peering reset as its neighbors experience it."""
    start = _after_now(site.network, start)
    feed13 = parse_address(CALREN_FEED_13)

    def tear_down() -> None:
        out = site.edge13.session_down(feed13, site.network.engine.now)
        site.network.dispatch(site.edge13, out)

    def bring_up() -> None:
        site.edge13.session_up(feed13, site.network.engine.now)
        for family in site.families:
            site.network.inject(
                site.edge13, feed13, family.announcement(feed13)
            )

    site.network.engine.schedule_at(start, tear_down)
    site.network.engine.schedule_at(start + down_for, bring_up)
    site.network.run()
    affected = {p for f in site.families for p in f.prefixes}
    stream = _events_after(site.rex.events, start)
    # Two acceptable stems: the reset session itself, and the head of
    # the CalREN cone that every cycled route shares — the coarser edge
    # is what the decomposition canonically pins down when the churn is
    # reported from several vantage routers at once.
    return LabeledIncident(
        name="session-reset",
        incident_class=IncidentClass.SESSION_RESET,
        stream=stream,
        true_stems=(
            (parse_address(CALREN_FEED_13), AS_CALREN),
            (AS_CALREN, AS_QWEST),
        ),
        affected_prefixes=frozenset(affected),
        window=_window(stream, start),
        details=ScenarioDetails(down_for=down_for),
    )


def community_mistag(site: BerkeleySite) -> LabeledIncident:
    """Figure 6: the CENIC LAAP community is attached to KDDI routes.

    Nothing is injected — the mis-tagging is present in the standing
    table. The incident's stream is the announcements of tagged routes,
    ready for TAMP subset visualization; ground truth records the
    correct/incorrect tag split.
    """
    from repro.simulator.workloads import COMM_CENIC_LAAP

    tagged = site.rex.events.with_community(COMM_CENIC_LAAP)
    ln = site.family("cenic-los-nettos")
    kddi = site.family("cenic-kddi")
    return LabeledIncident(
        name="community-mistag",
        incident_class=IncidentClass.MISCONFIGURATION,
        stream=tagged,
        true_stems=(),
        affected_prefixes=frozenset(kddi.prefixes),
        window=_window(tagged, tagged.start_time or 0.0),
        details=ScenarioDetails(
            community=str(COMM_CENIC_LAAP),
            correctly_tagged=len(ln.prefixes),
            mistagged=len(kddi.prefixes),
        ),
    )


# ----------------------------------------------------------------------
# ISP-Anon incidents
# ----------------------------------------------------------------------


def customer_flap(
    isp: IspAnonSite,
    customer_prefixes: Optional[list[Prefix]] = None,
    flap_count: int = 10,
    period: float = 60.0,
    start: float = 100.0,
) -> LabeledIncident:
    """Figure 9: a customer's direct session drops and re-establishes
    about once a minute; each drop fails over to 3-AS-hop alternates via
    the NAP, announced differently by every PoP.

    The direct path (1 AS hop) is injected at reflector 0's access; every
    reflector holds a standing alternate ``(tier1_i, NAP, customer)``
    from its own access. Failover and recovery churn are computed by the
    real decision processes in the core.
    """
    start = _after_now(isp.network, start, margin=60.0)
    if customer_prefixes is None:
        customer_prefixes = [Prefix.parse("203.0.113.0/24")]
    direct_path = ASPath((AS_CUSTOMER,))
    # Standing alternates at every reflector.
    for index, _ in enumerate(isp.reflectors):
        tier1 = TIER1_PEERS[index % len(TIER1_PEERS)]
        isp.inject_from_access(
            index,
            BGPUpdate.announce(
                customer_prefixes,
                PathAttributes(
                    nexthop=isp.access_address(index),
                    as_path=ASPath((tier1, AS_NAP, AS_CUSTOMER)),
                ),
            ),
            at=start - 50.0,
        )
    # The direct session, flapping.
    direct_attrs = PathAttributes(
        nexthop=isp.access_address(0), as_path=direct_path
    )
    isp.inject_from_access(
        0, BGPUpdate.announce(customer_prefixes, direct_attrs), at=start - 40.0
    )
    for flap in range(flap_count):
        down_at = start + flap * period
        up_at = down_at + period / 3
        isp.inject_from_access(
            0, BGPUpdate.withdraw(customer_prefixes), at=down_at
        )
        isp.inject_from_access(
            0,
            BGPUpdate.announce(customer_prefixes, direct_attrs),
            at=up_at,
        )
    isp.network.run()
    stream = _events_after(isp.rex.events, start)
    # Two acceptable stems. The flapping session is observable as the
    # direct route's nexthop meeting the customer AS (the local AS
    # never appears in the token vocabulary — an IBGP-side collector
    # strips it). Each drop also stampedes every PoP onto the NAP
    # alternates, so the NAP-customer edge carries the bulk of the
    # churn and is an equally honest answer to "where is the problem".
    return LabeledIncident(
        name="customer-flap",
        incident_class=IncidentClass.FLAP,
        stream=stream,
        true_stems=(
            (isp.access_address(0), AS_CUSTOMER),
            (AS_NAP, AS_CUSTOMER),
        ),
        affected_prefixes=frozenset(customer_prefixes),
        window=_window(stream, start),
        details=ScenarioDetails(flap_count=flap_count, period=period),
    )


def full_table_hijack(
    isp: IspAnonSite,
    hijacker_rr: int = 0,
    start: float = 100.0,
    hold: float | None = 600.0,
) -> LabeledIncident:
    """The Section I catastrophe: a small AS announces the full Internet
    routing table with one-hop AS paths, and "most ASes started to prefer
    those routes because of the very short paths" — the hijacker becomes
    transit for the Internet, melts, and takes the Internet down with it.

    The hijacker's announcements arrive through reflector *hijacker_rr*'s
    access router with a single-AS path; the reflectors' genuine decision
    processes prefer them over the real 2+-hop routes. After *hold*
    seconds the hijacker collapses and everything fails back (*hold*
    of None keeps the hijack standing, for inspecting the taken-over
    state).
    """
    start = _after_now(isp.network, start)
    hijacker_as = 64512
    all_prefixes = [
        prefix
        for family in isp.feed_families
        for prefix in family.prefixes
    ]
    hijack_attrs = PathAttributes(
        nexthop=isp.access_address(hijacker_rr),
        as_path=ASPath((hijacker_as,)),
    )
    isp.inject_from_access(
        hijacker_rr,
        BGPUpdate.announce(all_prefixes, hijack_attrs),
        at=start,
    )
    if hold is not None:
        # The collapse: the hijacker withdraws everything.
        isp.inject_from_access(
            hijacker_rr,
            BGPUpdate.withdraw(all_prefixes),
            at=start + hold,
        )
    isp.network.run()
    stream = _events_after(isp.rex.events, start)
    # The hijack's observable location: the access session it arrived
    # through meeting the hijacker's one-hop AS.
    return LabeledIncident(
        name="full-table-hijack",
        incident_class=IncidentClass.ORIGIN_HIJACK,
        stream=stream,
        true_stems=((isp.access_address(hijacker_rr), hijacker_as),),
        affected_prefixes=frozenset(all_prefixes),
        window=_window(stream, start),
        details=ScenarioDetails(hijacker_as=hijacker_as, hold=hold),
    )


def max_prefix_leak(
    site: BerkeleySite,
    leaked_count: int = 500,
    limit: int = 200,
    start: float = 100.0,
) -> LabeledIncident:
    """The Section I ISP-A/ISP-B war story: a customer leaks thousands of
    extra routes; the peer's max-prefix safeguard closes the session,
    severing connectivity entirely.

    Modeled on the Berkeley site: a customer peer on edge 128.32.1.222
    configured with ``maximum-prefix`` starts leaking; when the limit
    trips, the session drops and *everything* learned from that peer is
    withdrawn — the cure disconnects more than the disease.
    """
    start = _after_now(site.network, start)
    customer_as = 64600
    customer_addr = parse_address("169.229.2.1")
    site.network.add_external_peer(
        site.edge222,
        customer_addr,
        customer_as,
        max_prefixes=limit,
        name="leaky-customer",
    )
    # Legitimate announcements first (well under the limit).
    legitimate = [Prefix(0xCB007100 + i * 256, 24) for i in range(limit // 2)]
    site.network.inject(
        site.edge222,
        customer_addr,
        BGPUpdate.announce(
            legitimate,
            PathAttributes(
                nexthop=customer_addr, as_path=ASPath((customer_as, 65100))
            ),
        ),
        at=start,
    )
    # The leak: far more routes than the limit allows.
    leaked = [
        Prefix(0xCC000000 + i * 256, 24) for i in range(leaked_count)
    ]
    site.network.inject(
        site.edge222,
        customer_addr,
        BGPUpdate.announce(
            leaked,
            PathAttributes(
                nexthop=customer_addr,
                as_path=ASPath((customer_as, 65101, 65102)),
            ),
        ),
        at=start + 30.0,
    )
    site.network.run()
    session = site.edge222.neighbor(customer_addr).session
    stream = _events_after(site.rex.events, start)
    # The customer session, labeled by the peering address the leak
    # (and the safeguard's mass withdrawal) arrived through; the
    # customer's legitimate cone head is an acceptable coarser stem.
    return LabeledIncident(
        name="max-prefix-leak",
        incident_class=IncidentClass.ROUTE_LEAK,
        stream=stream,
        true_stems=(
            (customer_addr, customer_as),
            (customer_as, 65100),
        ),
        affected_prefixes=frozenset(legitimate) | frozenset(leaked),
        window=_window(stream, start),
        details=ScenarioDetails(
            limit=limit,
            leaked=leaked_count,
            session_down=not session.is_established,
            legitimate_lost=len(legitimate),
        ),
    )


@dataclass(slots=True)
class MedOscillationLab:
    """The Figure 3 topology: two PoPs, four core reflectors.

    core1-a/b hold a standing AS1 path; core2-a/b flap an AS2 path whose
    nexthop is IGP-closer to core1 than its own AS1 nexthop, so each flap
    makes core1-a/b genuinely re-select (the decision process computes
    the switch; only core2's upstream flapping is scripted, standing in
    for the RFC 3345 fixpoint we cannot reproduce in a quiescing DES).
    """

    network: Network
    rex: RouteExplorer
    cores: list
    igp: IGPTopology
    as1_access: int
    as2_access: int


def build_med_oscillation_lab() -> MedOscillationLab:
    """Construct the four-core two-PoP topology of Figure 3."""
    network = Network()
    rex = RouteExplorer("med-rex")
    igp = IGPTopology()
    as1_access = parse_address("10.1.2.3")
    as2_access = parse_address("10.3.4.5")  # the paper's animated nexthop
    core_names = ["core1-a", "core1-b", "core2-a", "core2-b"]
    core_addrs = [parse_address(f"10.0.{i}.1") for i in range(1, 5)]
    cores = []
    for name, addr in zip(core_names, core_addrs):
        router = network.add_router(name, AS_ISP, addr, route_reflector=True)
        cores.append(router)
        igp.add_router(name, addresses=[addr])
    igp.add_router("acc1", addresses=[as1_access])
    igp.add_router("acc2", addresses=[as2_access])
    # PoP1 cores are close to each other and to acc1; acc2 (in PoP2) is
    # nevertheless IGP-closer to everyone thanks to a fast backbone link —
    # the ingredient that makes the AS2 path win when present.
    igp.add_link("core1-a", "core1-b", 2)
    igp.add_link("core2-a", "core2-b", 2)
    igp.add_link("core1-a", "core2-a", 3)
    igp.add_link("core1-b", "core2-b", 3)
    igp.add_link("core1-a", "acc1", 20)
    igp.add_link("core1-b", "acc1", 20)
    igp.add_link("core2-a", "acc2", 1)
    igp.add_link("core2-b", "acc2", 1)
    for name, router in zip(core_names, cores):
        router.decision.igp_cost = igp.cost_fn(name)
    for i, a in enumerate(cores):
        for b in cores[i + 1 :]:
            network.connect(a, b)
    # Access clients: AS1 feeds core1-a/b; AS2 feeds core2-a/b.
    for router in cores[:2]:
        network.add_external_peer(
            router, as1_access, AS_ISP, is_rr_client=True, name="acc-as1"
        )
    for router in cores[2:]:
        network.add_external_peer(
            router, as2_access, AS_ISP, is_rr_client=True, name="acc-as2"
        )
    for router in cores:
        network.attach_collector(rex, router, ISP_REX_ADDRESS)
    return MedOscillationLab(
        network=network,
        rex=rex,
        cores=cores,
        igp=igp,
        as1_access=as1_access,
        as2_access=as2_access,
    )


def med_oscillation(
    lab: Optional[MedOscillationLab] = None,
    flap_count: int = 50,
    period: float = 0.02,
    start: float = 10.0,
) -> LabeledIncident:
    """Figure 3: persistent fast MED oscillation on 4.5.0.0/16.

    The paper observed core2-a/b churning their AS2 route every ~10 µs,
    driving core1-a/b to switch paths every ~10 ms for at least five
    days — 95% of the ISP's IBGP traffic from one prefix. *period*
    defaults to the paper's 10 ms core1 switch rate (scaled counts keep
    test runtimes sane; benchmarks raise them).
    """
    if lab is None:
        lab = build_med_oscillation_lab()
    start = _after_now(lab.network, start, margin=10.0)
    as1_attrs = PathAttributes(
        nexthop=lab.as1_access, as_path=ASPath((1, 4545))
    )
    as2_attrs = PathAttributes(
        nexthop=lab.as2_access, as_path=ASPath((2, 4545)), med=10
    )
    # Standing AS1 path at core1-a/b.
    for core in lab.cores[:2]:
        lab.network.inject(
            core,
            lab.as1_access,
            BGPUpdate.announce([MED_PREFIX], as1_attrs),
            at=start - 5.0,
        )
    # AS2 path flapping at core2-a/b.
    for flap in range(flap_count):
        announce_at = start + flap * period
        withdraw_at = announce_at + period / 2
        for core in lab.cores[2:]:
            lab.network.inject(
                core,
                lab.as2_access,
                BGPUpdate.announce([MED_PREFIX], as2_attrs),
                at=announce_at,
            )
            lab.network.inject(
                core,
                lab.as2_access,
                BGPUpdate.withdraw([MED_PREFIX]),
                at=withdraw_at,
            )
    lab.network.run()
    stream = _events_after(lab.rex.events, start)
    # Two acceptable stems: the flapping AS2 path, and the oscillating
    # prefix at its origin — the paper's own Figure 3 takeaway (one
    # prefix, 95% of the IBGP traffic) and the edge the decomposition
    # canonically reports when every event carries the same prefix.
    return LabeledIncident(
        name="med-oscillation",
        incident_class=IncidentClass.OSCILLATION,
        stream=stream,
        true_stems=((2, 4545), (4545, MED_PREFIX)),
        affected_prefixes=frozenset({MED_PREFIX}),
        window=_window(stream, start),
        details=ScenarioDetails(flap_count=flap_count, period=period),
    )
