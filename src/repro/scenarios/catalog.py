"""The labeled anomaly catalog: scenario families beyond the paper.

Five seeded, parameterizable generator families drawn from the related
work (ROADMAP item 2), each driven through the simulated network — the
injected feed is crafted, but everything REX records is computed by the
real decision processes and route-maps in the core:

* :func:`burst_announcements` — announcement storms with bursty
  inter-arrival structure (Moriano et al., arXiv:1905.05835).
* :func:`valley_route_leak` — a customer re-exports provider routes,
  producing valley-violating AS paths (CAIR, arXiv:1605.00618).
* :func:`interception_hijack` — a forged-origin interception path that
  wins on length (CAIR).
* :func:`hyper_specific_flood` — a flood of /25–/32 more-specifics of
  standing /24s (Sediqi et al., arXiv:2206.13876).
* :func:`community_signal` — an event signaled through community
  re-tagging (CommunityWatch, arXiv:1806.07476).

Every function takes a ``seed`` and size knobs, builds its own small
ISP-Anon site, and returns a :class:`LabeledIncident` whose ground
truth (true stem edges, affected prefixes, active window) is derived
from the injected structure, not from running the detector. The same
seed always reproduces the same ``EventStream.fingerprint()``.

Ground-truth design note: the Stemming counter breaks count ties toward
*longer* subsequences, so each family is constructed to make the
anomaly's token run — ``(nexthop, AS…)`` — the unique strongest
subsequence, whose last adjacent pair is the labeled edge.
"""

from __future__ import annotations

import random

from repro.net.aspath import ASPath
from repro.net.attributes import Community, PathAttributes
from repro.net.message import BGPUpdate
from repro.net.prefix import Prefix
from repro.scenarios.labels import (
    IncidentClass,
    LabeledIncident,
    ScenarioDetails,
    TimeWindow,
)
from repro.scenarios.paper import _after_now, _events_after
from repro.simulator.workloads import (
    TIER1_POOL,
    IspAnonSite,
    synthetic_prefixes,
)

#: Attacker/leaker ASes, disjoint from every workload AS.
AS_BURSTER = 64700
AS_LEAKER = 64810
AS_INTERCEPTOR = 64666
AS_FLOODER = 64900
AS_VICTIM = 65010

#: Fresh-prefix offsets into the synthetic /24 universe, far above any
#: feed table (feeds allocate from offset 0).
_BURST_OFFSET = 100_000
_VALLEY_OFFSET = 110_000
_INTERCEPT_OFFSET = 120_000

#: The well-known-style signal community a tagger flips on and off.
SIGNAL_COMMUNITY = Community(65535, 666)


def _site(n_reflectors: int, n_prefixes: int) -> IspAnonSite:
    return IspAnonSite(n_reflectors=n_reflectors, n_prefixes=n_prefixes)


def burst_announcements(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    bursts: int = 4,
    prefixes_per_burst: int = 10,
    start: float = 100.0,
) -> LabeledIncident:
    """Announcement bursts with bursty inter-arrival structure.

    Moriano et al. (arXiv:1905.05835) characterize disruptive BGP events
    by update volumes arriving in heavy-tailed bursts rather than at
    steady rates. Here AS 64700 announces batches of fresh prefixes
    through one access: within a burst, inter-arrivals are tens of
    milliseconds; bursts are separated by tens of seconds of silence;
    each burst is withdrawn before the next begins. Burst sizes and
    spacings are drawn from the seed.
    """
    rng = random.Random(seed)
    site = _site(n_reflectors, n_prefixes)
    start = _after_now(site.network, start)
    access = 1 % n_reflectors
    attrs = PathAttributes(
        nexthop=site.access_address(access),
        as_path=ASPath((TIER1_POOL[4], AS_BURSTER)),
    )
    all_prefixes: list[Prefix] = []
    offset = _BURST_OFFSET
    when = start
    sizes: list[int] = []
    for _ in range(bursts):
        size = max(1, prefixes_per_burst + rng.randint(-3, 3))
        sizes.append(size)
        burst_prefixes = synthetic_prefixes(size, offset)
        offset += size
        all_prefixes.extend(burst_prefixes)
        for prefix in burst_prefixes:
            when += rng.uniform(0.02, 0.2)
            site.inject_from_access(
                access, BGPUpdate.announce([prefix], attrs), at=when
            )
        when += rng.uniform(2.0, 5.0)
        site.inject_from_access(
            access, BGPUpdate.withdraw(burst_prefixes), at=when
        )
        when += rng.uniform(20.0, 60.0)
    site.network.run()
    stream = _events_after(site.rex.events, start)
    return LabeledIncident(
        name="burst-announcements",
        incident_class=IncidentClass.BURST,
        stream=stream,
        true_stems=(((TIER1_POOL[4], AS_BURSTER)),),
        affected_prefixes=frozenset(all_prefixes),
        window=TimeWindow(start, when),
        details=ScenarioDetails(
            bursts=bursts,
            burst_sizes=tuple(sizes),
            burster_as=AS_BURSTER,
        ),
        seed=seed,
    )


def valley_route_leak(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    victim_origins: int = 3,
    prefixes_per_origin: int = 8,
    cycles: int = 2,
    leak_hold: float = 60.0,
    start: float = 100.0,
) -> LabeledIncident:
    """A route leak expressed as valley-violating AS paths.

    CAIR (arXiv:1605.00618) detects leaks as paths that descend into a
    customer and climb back out — a valley. Customer AS 64810 buys
    transit from one Tier-1 and re-exports that provider's routes to
    another Tier-1; the leaked routes arrive as customer routes and win
    on LOCAL_PREF (the Gao-Rexford prefer-customer policy — exactly why
    real leaks attract traffic despite longer paths). Prefixes that
    normally arrive on ``(provider, origin)`` flip to
    ``(peer, 64810, provider, origin)`` and back, once per cycle.
    Origin ASes and event spacing are drawn from the seed; the labeled
    edge is ``(64810, provider)`` — the customer→provider hop where the
    valley bottoms out.
    """
    rng = random.Random(seed)
    site = _site(n_reflectors, n_prefixes)
    start = _after_now(site.network, start)
    provider = TIER1_POOL[5]  # 3356
    peer = TIER1_POOL[1]  # 1239
    origins = rng.sample(range(64200, 64400), victim_origins)
    groups = [
        (
            origin,
            synthetic_prefixes(
                prefixes_per_origin,
                _VALLEY_OFFSET + index * prefixes_per_origin,
            ),
        )
        for index, origin in enumerate(origins)
    ]
    baseline_nh = site.access_address(0)
    leak_access = 1 % n_reflectors
    leak_nh = site.access_address(leak_access)
    # Standing baseline: every victim prefix arrives via the provider.
    for origin, prefixes in groups:
        site.inject_from_access(
            0,
            BGPUpdate.announce(
                prefixes,
                PathAttributes(
                    nexthop=baseline_nh,
                    as_path=ASPath((provider, origin)),
                ),
            ),
            at=start - 20.0,
        )
    when = start
    for _ in range(cycles):
        # The leak appears at the peer as a customer route: higher
        # LOCAL_PREF beats the shorter provider path everywhere.
        for origin, prefixes in groups:
            site.inject_from_access(
                leak_access,
                BGPUpdate.announce(
                    prefixes,
                    PathAttributes(
                        nexthop=leak_nh,
                        as_path=ASPath((peer, AS_LEAKER, provider, origin)),
                        local_pref=150,
                    ),
                ),
                at=when + rng.uniform(0.0, 2.0),
            )
        recover_at = when + leak_hold
        # The leaker notices and stops; routing falls back to the
        # standing provider paths on its own.
        for origin, prefixes in groups:
            site.inject_from_access(
                leak_access,
                BGPUpdate.withdraw(prefixes),
                at=recover_at + rng.uniform(0.0, 2.0),
            )
        when = recover_at + rng.uniform(40.0, 80.0)
    site.network.run()
    stream = _events_after(site.rex.events, start)
    affected = frozenset(p for _, prefixes in groups for p in prefixes)
    return LabeledIncident(
        name="valley-route-leak",
        incident_class=IncidentClass.ROUTE_LEAK,
        stream=stream,
        true_stems=((AS_LEAKER, provider),),
        affected_prefixes=affected,
        window=TimeWindow(start, when),
        details=ScenarioDetails(
            leaker_as=AS_LEAKER,
            provider_as=provider,
            peer_as=peer,
            cycles=cycles,
            victim_origins=tuple(origins),
        ),
        seed=seed,
    )


def interception_hijack(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    victim_families: int = 3,
    prefixes_per_family: int = 8,
    hold: float = 120.0,
    start: float = 100.0,
) -> LabeledIncident:
    """A forged-origin interception path that wins on AS-path length.

    The CAIR interception pattern: the attacker announces the victim's
    prefixes with the victim's origin AS kept at the end of the path —
    origin-based filters pass it — but with itself spliced in as the
    upstream, creating an AS edge ``(attacker, victim)`` that does not
    exist. The forged path is shorter than the genuine routes, so the
    decision process prefers it everywhere; after *hold* seconds the
    attacker drops out and routing falls back. Genuine upstream pairs
    are drawn from the seed.
    """
    rng = random.Random(seed)
    site = _site(n_reflectors, n_prefixes)
    start = _after_now(site.network, start)
    groups = []
    for index in range(victim_families):
        transit = rng.sample(TIER1_POOL, 2)
        prefixes = synthetic_prefixes(
            prefixes_per_family,
            _INTERCEPT_OFFSET + index * prefixes_per_family,
        )
        groups.append((tuple(transit), prefixes))
    # Genuine 3-hop routes to the victim, standing before the incident.
    for transit, prefixes in groups:
        site.inject_from_access(
            0,
            BGPUpdate.announce(
                prefixes,
                PathAttributes(
                    nexthop=site.access_address(0),
                    as_path=ASPath((*transit, AS_VICTIM)),
                ),
            ),
            at=start - 20.0,
        )
    victim_prefixes = [p for _, prefixes in groups for p in prefixes]
    intercept_access = 2 % n_reflectors
    hijack_attrs = PathAttributes(
        nexthop=site.access_address(intercept_access),
        as_path=ASPath((AS_INTERCEPTOR, AS_VICTIM)),
    )
    site.inject_from_access(
        intercept_access,
        BGPUpdate.announce(victim_prefixes, hijack_attrs),
        at=start,
    )
    site.inject_from_access(
        intercept_access,
        BGPUpdate.withdraw(victim_prefixes),
        at=start + hold,
    )
    site.network.run()
    stream = _events_after(site.rex.events, start)
    return LabeledIncident(
        name="interception-hijack",
        incident_class=IncidentClass.INTERCEPTION,
        stream=stream,
        true_stems=((AS_INTERCEPTOR, AS_VICTIM),),
        affected_prefixes=frozenset(victim_prefixes),
        window=TimeWindow(start, start + hold),
        details=ScenarioDetails(
            interceptor_as=AS_INTERCEPTOR,
            victim_as=AS_VICTIM,
            hold=hold,
        ),
        seed=seed,
    )


def hyper_specific_flood(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    flood_count: int = 48,
    hold: float = 90.0,
    start: float = 100.0,
) -> LabeledIncident:
    """A flood of /25–/32 more-specifics of standing /24s.

    Hyper-specific prefixes (Sediqi et al., arXiv:2206.13876) are
    routes more specific than /24 — rarely legitimate, often leaks or
    blackholing side-effects, and always winning on longest-prefix
    match. AS 64900 floods more-specifics carved (by seed) out of
    prefixes already in the feed table; being new NLRI, every one
    propagates core-wide, then the flood is withdrawn.
    """
    rng = random.Random(seed)
    site = _site(n_reflectors, n_prefixes)
    start = _after_now(site.network, start)
    parents = [
        prefix
        for family in site.feed_families
        for prefix in family.prefixes
    ]
    flood: list[Prefix] = []
    seen = set()
    while len(flood) < flood_count:
        parent = rng.choice(parents)
        length = rng.randint(25, 32)
        # A random subprefix of the parent at the chosen length,
        # aligned to its own length.
        extra_bits = length - parent.length
        subnet = rng.randrange(1 << extra_bits)
        network = parent.network | (subnet << (32 - length))
        candidate = Prefix(network, length)
        if candidate in seen:
            continue
        seen.add(candidate)
        flood.append(candidate)
    flood_access = 3 % n_reflectors
    attrs = PathAttributes(
        nexthop=site.access_address(flood_access),
        as_path=ASPath((TIER1_POOL[3], AS_FLOODER)),
    )
    when = start
    for prefix in flood:
        when += rng.uniform(0.05, 0.5)
        site.inject_from_access(
            flood_access, BGPUpdate.announce([prefix], attrs), at=when
        )
    site.inject_from_access(
        flood_access, BGPUpdate.withdraw(flood), at=when + hold
    )
    site.network.run()
    stream = _events_after(site.rex.events, start)
    lengths = sorted({p.length for p in flood})
    return LabeledIncident(
        name="hyper-specific-flood",
        incident_class=IncidentClass.HYPER_SPECIFIC,
        stream=stream,
        true_stems=((TIER1_POOL[3], AS_FLOODER),),
        affected_prefixes=frozenset(flood),
        window=TimeWindow(start, when + hold),
        details=ScenarioDetails(
            flooder_as=AS_FLOODER,
            flood_count=len(flood),
            lengths=tuple(lengths),
        ),
        seed=seed,
    )


def community_signal(
    seed: int = 0,
    *,
    n_reflectors: int = 4,
    n_prefixes: int = 120,
    cycles: int = 6,
    period: float = 30.0,
    start: float = 100.0,
) -> LabeledIncident:
    """An event signaled through community re-tagging.

    CommunityWatch (arXiv:1806.07476) reads large-scale events out of
    BGP community dynamics: the routes themselves stay up while a
    signal community (here 65535:666, blackhole-style) flips on and off
    across a neighbor's routes. One feed family — chosen by seed — is
    re-announced from its own access with and without the tag, *cycles*
    times; every retag is an attribute change the core must propagate,
    so REX sees the churn without a single prefix moving.
    """
    rng = random.Random(seed)
    site = _site(n_reflectors, n_prefixes)
    start = _after_now(site.network, start)
    family = site.feed_families[rng.randrange(len(site.feed_families))]
    neighbor_as = family.as_path.neighbor_as
    origin_as = family.as_path.origin_as
    nexthop = site.access_address(family.rr_index)
    when = start
    for _ in range(cycles):
        for tagged in (True, False):
            communities = (
                frozenset({SIGNAL_COMMUNITY}) if tagged else frozenset()
            )
            site.inject_from_access(
                family.rr_index,
                BGPUpdate.announce(
                    family.prefixes,
                    PathAttributes(
                        nexthop=nexthop,
                        as_path=family.as_path,
                        communities=communities,
                    ),
                ),
                at=when,
            )
            when += period / 2 + rng.uniform(-2.0, 2.0)
    site.network.run()
    stream = _events_after(site.rex.events, start)
    return LabeledIncident(
        name="community-signal",
        incident_class=IncidentClass.COMMUNITY_SIGNAL,
        stream=stream,
        true_stems=((neighbor_as, origin_as),),
        affected_prefixes=frozenset(family.prefixes),
        window=TimeWindow(start, when),
        details=ScenarioDetails(
            community=str(SIGNAL_COMMUNITY),
            family=family.name,
            cycles=cycles,
        ),
        seed=seed,
    )
