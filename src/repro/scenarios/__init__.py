"""The scenario library: labeled anomalies and the scoring harness.

``repro.scenarios`` is the promoted home of the Section IV injectors
(:mod:`repro.scenarios.paper`) plus the anomaly catalog drawn from the
related work (:mod:`repro.scenarios.catalog`), a registry that names
and seeds them (:mod:`repro.scenarios.registry`), and the
precision/recall scorer that turns labeled streams into the repo's
detection-quality regression gate (:mod:`repro.scenarios.score`).

The old ``repro.simulator.scenarios`` path remains a re-export shim, so
``from repro import scenarios; scenarios.route_leak(site)`` works
unchanged whether ``scenarios`` resolves to the shim or this package.
"""

from repro.scenarios.catalog import (
    burst_announcements,
    community_signal,
    hyper_specific_flood,
    interception_hijack,
    valley_route_leak,
)
from repro.scenarios.labels import (
    DetailValue,
    Incident,
    IncidentClass,
    LabeledIncident,
    ScenarioDetails,
    StemEdge,
    TimeWindow,
)
from repro.scenarios.paper import (
    MedOscillationLab,
    backdoor_routes,
    build_med_oscillation_lab,
    community_mistag,
    customer_flap,
    full_table_hijack,
    max_prefix_leak,
    med_oscillation,
    route_leak,
    session_reset,
)
from repro.scenarios.registry import (
    SCENARIOS,
    Scenario,
    generate,
    get,
    names,
)
from repro.scenarios.score import (
    IncidentScore,
    Scorecard,
    build_scorecard,
    compare_scorecards,
    score_incident,
    score_ranked,
)

__all__ = [
    "DetailValue",
    "Incident",
    "IncidentClass",
    "IncidentScore",
    "LabeledIncident",
    "MedOscillationLab",
    "SCENARIOS",
    "Scenario",
    "ScenarioDetails",
    "Scorecard",
    "StemEdge",
    "TimeWindow",
    "backdoor_routes",
    "build_med_oscillation_lab",
    "build_scorecard",
    "burst_announcements",
    "community_mistag",
    "community_signal",
    "compare_scorecards",
    "customer_flap",
    "full_table_hijack",
    "generate",
    "get",
    "hyper_specific_flood",
    "interception_hijack",
    "max_prefix_leak",
    "med_oscillation",
    "names",
    "route_leak",
    "score_incident",
    "score_ranked",
    "session_reset",
    "valley_route_leak",
]
