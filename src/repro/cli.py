"""Command-line interface.

The operator subcommands cover the workflows the paper describes:

* ``repro demo`` — build the simulated Berkeley site, inject a chosen
  incident, and print the diagnosis (a self-contained tour).
* ``repro diagnose EVENTS.jsonl`` — run event-rate + Stemming + TAMP
  over a recorded event stream.
* ``repro render EVENTS.jsonl -o out.svg`` — draw the TAMP picture of
  the routes announced in a stream.
* ``repro rate EVENTS.jsonl`` — print the Figure 8 style rate series.
* ``repro scenarios {list,describe,generate,score}`` — the labeled
  anomaly catalog (:mod:`repro.scenarios`): list/describe the
  registry, generate seeded streams with ground-truth labels, or run
  the precision/recall scorer (``--baseline`` turns it into the
  detection-quality regression gate; exit 1 on regression).
* ``repro monitor [EVENTS]`` — run the streaming pipeline
  (:mod:`repro.pipeline`) as a long-lived monitor: windowed Stemming
  + incremental TAMP over a replayed archive, synthetic feed
  (``--synthetic N``) or quarantine file (``--from-quarantine``),
  with checkpoints (``--checkpoint-dir``/``--resume``), wall-clock
  pacing (``--pace``) and live metrics (``--metrics-port``).
* ``repro serve [EVENTS]`` — the multi-tenant read path
  (:mod:`repro.serve`): the same pipeline sharded by peer
  (``--shards N``) behind an asyncio HTTP port serving the cached
  TAMP picture (``/picture.svg``, ETag/304), incident feeds
  (``/incidents`` JSON, ``/events`` SSE), and the metrics exposition
  — render once per window, serve thousands of times.

Two developer subcommands guard the codebase itself:

* ``repro lint [paths]`` — the determinism & parallel-safety static
  analyzer (:mod:`repro.devtools`). Exit 0 means clean, 1 means
  findings, 2 means a usage error (bad path, unknown rule).
  Incremental by default (``.repro-lint-cache/``; ``--no-cache`` /
  ``--cache-dir`` to steer), ``--changed`` lints only files differing
  from git HEAD, ``--fix`` applies the mechanical fixes findings
  carry, ``--fix-suppress RULE`` inserts justification-stub
  suppression comments, and ``--format sarif`` emits SARIF 2.1.0 for
  code-scanning UIs.
* ``repro faults IN -o OUT --fault NAME[:k=v,...] --seed N`` — corrupt
  an MRT archive with the :mod:`repro.testkit` fault injectors
  (``--list-faults`` for the catalog, ``--make-corpus DIR`` to
  regenerate the golden malformed-MRT corpus).

Event files are either the JSONL format of
:meth:`repro.collector.stream.EventStream.save` or MRT archives
(RouteViews-style ``.mrt``/``.bz2``-decompressed update files are
detected by extension and loaded through :mod:`repro.mrt`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.report import diagnose
from repro.collector.rates import bin_events
from repro.collector.stream import EventStream
from repro.perf import resolve_workers
from repro.stemming.stemmer import Stemmer
from repro.tamp.prune import prune_flat
from repro.tamp.render import render_ascii, render_svg

DEMO_SCENARIOS = ("route-leak", "backdoor", "session-reset", "med-oscillation",
                  "customer-flap")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if hasattr(args, "workers"):
            # Validate --workers / REPRO_WORKERS up front; the hot paths
            # resolve lazily and may never run on small inputs.
            resolve_workers(args.workers)
        if getattr(args, "profile", None) is not None:
            return _run_profiled(args)
        return args.handler(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_profiled(args: argparse.Namespace) -> int:
    """Run the subcommand under cProfile (the ``--profile PATH`` flag).

    Binary pstats go to PATH (for ``snakeviz``/``pstats`` digging) and
    a top-25-by-cumulative-time text summary to PATH.txt, so a perf
    regression report needs no extra tooling to read.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = args.handler(args)
    finally:
        profiler.disable()
        out: Path = args.profile
        profiler.dump_stats(out)
        summary = out.with_name(out.name + ".txt")
        with summary.open("w") as sink:
            stats = pstats.Stats(profiler, stream=sink)
            stats.sort_stats("cumulative").print_stats(25)
        print(
            f"profile written to {out} (summary: {summary})",
            file=sys.stderr,
        )
    return status


def _add_stream_options(parser: argparse.ArgumentParser) -> None:
    """The source/window/checkpoint flags `monitor` and `serve` share.

    Both subcommands drive the same pipeline over the same sources;
    keeping one flag set means a monitor invocation can be replayed
    under `serve` (and resumed from the same checkpoints) verbatim.
    """
    parser.add_argument(
        "events", type=Path, nargs="?", default=None,
        help="event archive to replay (JSONL or MRT by extension);"
             " omit when using --synthetic or --from-quarantine",
    )
    parser.add_argument(
        "--synthetic", type=int, default=None, metavar="N",
        help="monitor a deterministic synthetic feed of N events",
    )
    parser.add_argument(
        "--synthetic-timerange", type=float, default=3600.0,
        metavar="SECONDS",
        help="archive timespan of the synthetic feed (default 3600)",
    )
    parser.add_argument(
        "--synthetic-seed", type=int, default=31,
        help="seed for the synthetic feed (default 31)",
    )
    parser.add_argument(
        "--from-quarantine", action="store_true",
        help="treat EVENTS as a quarantine JSONL written by a previous"
             " ingest and replay the records that now decode",
    )
    parser.add_argument(
        "--window", type=float, default=300.0, metavar="SECONDS",
        help="analysis window length (default 300)",
    )
    parser.add_argument(
        "--slide", type=float, default=None, metavar="SECONDS",
        help="window slide; defaults to the window length (tumbling)",
    )
    parser.add_argument(
        "--pace", type=float, default=0.0, metavar="FACTOR",
        help="replay speed-up vs archive time: 1 = real time, 60 ="
             " a minute per second, 0 = as fast as possible (default)",
    )
    parser.add_argument(
        "--checkpoint-dir", type=Path, default=None, metavar="DIR",
        help="write periodic checkpoints and the incident log here",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="WINDOWS",
        help="windows between checkpoints (default 1)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64,
        help="bounded queue capacity per pipeline stage (default 64)",
    )
    parser.add_argument(
        "--queue-policy", choices=("block", "drop"), default="block",
        help="backpressure policy when a queue fills (default block)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=256,
        help="events per pipeline batch (default 256)",
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="hard-stop after this many events without flushing or"
             " checkpointing (simulates a kill; resume later)",
    )
    parser.add_argument(
        "--min-strength", type=int, default=2,
        help="minimum correlation strength for a component (default 2)",
    )
    parser.add_argument(
        "--components", type=int, default=16,
        help="maximum components per window (default 16)",
    )
    parser.add_argument(
        "--resolve-after", type=float, default=600.0, metavar="SECONDS",
        help="stream-seconds of quiet before an incident resolves"
             " (default 600)",
    )
    parser.add_argument(
        "--correlation-window", type=float, default=600.0,
        metavar="SECONDS",
        help="max stream-time gap for merging a new stem into a live"
             " incident by prefix overlap (default 600)",
    )
    parser.add_argument(
        "--reopen-window", type=float, default=900.0, metavar="SECONDS",
        help="a stem recurring within this many seconds of resolution"
             " reopens its incident instead of opening a new one"
             " (default 900)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAMP + Stemming BGP anomaly detection (DSN 2005 repro)",
    )
    sub = parser.add_subparsers(required=True)

    # Shared by the compute-heavy subcommands; forwarded to the
    # repro.perf worker pool (Stemming expansion, SVG edge rendering).
    workers_opt = argparse.ArgumentParser(add_help=False)
    workers_opt.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for parallel stages (default: the"
             " REPRO_WORKERS environment variable, else serial; capped"
             " at usable CPUs)",
    )

    # Shared by the subcommands worth profiling (the TAMP/Stemming
    # compute paths); handled centrally in main().
    profile_opt = argparse.ArgumentParser(add_help=False)
    profile_opt.add_argument(
        "--profile", type=Path, default=None, metavar="PATH",
        help="profile the run: binary cProfile stats to PATH, top-25"
             " cumulative summary to PATH.txt",
    )

    # Shared by every subcommand that loads an event file: the MRT
    # ingest strictness policy (JSONL loads ignore these).
    ingest_opt = argparse.ArgumentParser(add_help=False)
    ingest_opt.add_argument(
        "--strict-ingest", action="store_true",
        help="raise on the first undecodable MRT record instead of"
             " skipping with accounting",
    )
    ingest_opt.add_argument(
        "--max-error-rate", type=float, default=None, metavar="FRACTION",
        help="abort an MRT load once more than this fraction of records"
             " fails to decode (default: skip all, warn past 1%%)",
    )

    demo = sub.add_parser(
        "demo", parents=[workers_opt, profile_opt],
        help="simulate an incident and diagnose it",
    )
    demo.add_argument(
        "scenario",
        choices=DEMO_SCENARIOS,
        nargs="?",
        default="route-leak",
    )
    demo.add_argument(
        "--prefixes", type=int, default=800,
        help="Berkeley table size (default 800)",
    )
    demo.add_argument(
        "--save", type=Path, default=None,
        help="also save the incident's event stream as JSONL",
    )
    demo.set_defaults(handler=cmd_demo)

    diag = sub.add_parser(
        "diagnose", parents=[workers_opt, profile_opt, ingest_opt],
        help="diagnose a JSONL event stream",
    )
    diag.add_argument("events", type=Path)
    diag.add_argument(
        "--components", type=int, default=8,
        help="maximum components to extract (default 8)",
    )
    diag.set_defaults(handler=cmd_diagnose)

    render = sub.add_parser(
        "render", parents=[workers_opt, profile_opt, ingest_opt],
        help="TAMP picture of a stream",
    )
    render.add_argument("events", type=Path)
    render.add_argument("-o", "--output", type=Path, default=None,
                        help="write SVG here (default: ASCII to stdout)")
    render.add_argument("--threshold", type=float, default=0.05,
                        help="prune threshold (default 0.05)")
    render.set_defaults(handler=cmd_render)

    rate = sub.add_parser(
        "rate", parents=[ingest_opt],
        help="event-rate series of a stream",
    )
    rate.add_argument("events", type=Path)
    rate.add_argument("--bins", type=int, default=50)
    rate.set_defaults(handler=cmd_rate)

    animate = sub.add_parser(
        "animate", parents=[workers_opt, profile_opt, ingest_opt],
        help="SMIL-animated SVG of a stream (plays in a browser)",
    )
    animate.add_argument("events", type=Path)
    animate.add_argument("-o", "--output", type=Path, required=True)
    animate.add_argument(
        "--duration", type=float, default=30.0,
        help="play duration in seconds (default 30, per the paper)",
    )
    animate.add_argument(
        "--fps", type=int, default=25,
        help="frames per second (default 25, per the paper)",
    )
    animate.set_defaults(handler=cmd_animate)

    monitor = sub.add_parser(
        "monitor", parents=[workers_opt, profile_opt, ingest_opt],
        help="run the streaming pipeline as a long-lived monitor",
    )
    _add_stream_options(monitor)
    monitor.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (text) and /metrics.json on this port"
             " while running (0 picks a free port)",
    )
    monitor.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="write the final metrics snapshot as JSON",
    )
    monitor.set_defaults(handler=cmd_monitor)

    serve = sub.add_parser(
        "serve", parents=[workers_opt, profile_opt, ingest_opt],
        help="run sharded monitor pipelines behind an HTTP read path:"
             " cached TAMP picture, incident feeds (JSON + SSE), and"
             " metrics on one port",
    )
    _add_stream_options(serve)
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="pipeline shards, partitioned by peer (default 1); the"
             " merged picture is bit-identical to an unsharded run",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="HTTP port (default 8080; 0 picks a free port)",
    )
    serve.add_argument(
        "--threshold", type=float, default=0.05, metavar="FRACTION",
        help="picture prune threshold (default 0.05)",
    )
    serve.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep serving this long after the stream ends (default 0)",
    )
    serve.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="write the final metrics snapshot as JSON",
    )
    serve.set_defaults(handler=cmd_serve)

    incidents = sub.add_parser(
        "incidents",
        help="inspect the sqlite incident store written by monitor",
    )
    incidents.add_argument(
        "action",
        choices=("list", "show", "export", "compact"),
        help="list incidents; show one incident's full lifecycle;"
             " export the store as JSONL; or compact resolved rows",
    )
    incidents.add_argument(
        "store", type=Path,
        help="incident store: a monitor --checkpoint-dir or the"
             " incidents.sqlite file inside one",
    )
    incidents.add_argument(
        "--id", type=int, default=None, metavar="N",
        help="incident id (required for show)",
    )
    incidents.add_argument(
        "--status", choices=("open", "investigating", "resolved"),
        default=None, help="filter list output by lifecycle state",
    )
    incidents.add_argument(
        "-o", "--output", type=Path, default=None,
        help="JSONL destination for export (default stdout)",
    )
    incidents.add_argument(
        "--keep-resolved", type=int, default=0, metavar="N",
        help="resolved incidents to retain when compacting (default 0)",
    )
    incidents.set_defaults(handler=cmd_incidents)

    faults = sub.add_parser(
        "faults",
        help="corrupt an MRT archive with seeded fault injectors",
    )
    faults.add_argument(
        "input", type=Path, nargs="?", default=None,
        help="MRT archive to corrupt",
    )
    faults.add_argument(
        "-o", "--output", type=Path, default=None,
        help="where to write the corrupted archive",
    )
    faults.add_argument(
        "--fault", action="append", default=None, metavar="NAME[:k=v,...]",
        help="fault to apply (repeatable; applied in order, e.g."
             " flip-attrs:rate=0.3,flips=2)",
    )
    faults.add_argument(
        "--seed", type=int, default=None,
        help="master seed; required when corrupting (faults must be"
             " replayable)",
    )
    faults.add_argument(
        "--list-faults", action="store_true",
        help="print the fault catalog and exit",
    )
    faults.add_argument(
        "--make-corpus", type=Path, default=None, metavar="DIR",
        help="regenerate the golden malformed-MRT corpus into DIR and"
             " exit (seed defaults to the pinned golden seed)",
    )
    faults.set_defaults(handler=cmd_faults)

    scen = sub.add_parser(
        "scenarios", parents=[workers_opt],
        help="the labeled anomaly catalog: list, generate, score",
    )
    scen.add_argument(
        "action",
        choices=("list", "describe", "generate", "score"),
        help="list the registry; describe entries; generate labeled"
             " streams (events JSONL + labels JSON); or run the"
             " detection-quality scorer",
    )
    scen.add_argument(
        "names", nargs="*", default=[],
        help="scenario names (default: all for generate/score, required"
             " for describe)",
    )
    scen.add_argument(
        "--seed", type=int, default=0,
        help="generator seed (default 0 — the baseline configuration)",
    )
    scen.add_argument(
        "-o", "--output", type=Path, default=None,
        help="generate: directory for the stream/labels artifacts;"
             " score: path for the JSON scorecard",
    )
    scen.add_argument(
        "--baseline", type=Path, default=None, metavar="SCORECARD",
        help="score: compare against this scorecard and fail (exit 1)"
             " on any metric regression",
    )
    scen.add_argument(
        "--tolerance", type=float, default=None,
        help="score: absolute drop in a [0,1] metric that counts as a"
             " regression (default 0.05)",
    )
    scen.add_argument(
        "--min-strength", type=int, default=2,
        help="score: detector threshold (raise to demonstrate the gate"
             " tripping on a degraded detector)",
    )
    scen.set_defaults(handler=cmd_scenarios)

    lint = sub.add_parser(
        "lint",
        help="determinism & parallel-safety static analysis",
    )
    lint.add_argument(
        "paths", type=Path, nargs="*", default=[Path("src")],
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text; json is the CI artifact,"
             " sarif feeds code-scanning UIs)",
    )
    lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--output", type=Path, default=None,
        help="also write the report to this file",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only files that differ from git HEAD (falls back to"
             " a full lint outside a git repository)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the mechanical fixes findings carry (MUT001,"
             " DET002), atomically, then re-lint",
    )
    lint.add_argument(
        "--fix-suppress", default=None, metavar="RULE",
        help="insert a justification-stub '# repro: allow[RULE]'"
             " comment above each finding of RULE instead of fixing",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental lint cache for this run",
    )
    lint.add_argument(
        "--cache-dir", type=Path, default=None,
        help="incremental-cache directory (default .repro-lint-cache)",
    )
    lint.set_defaults(handler=cmd_lint)
    return parser


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.simulator import scenarios
    from repro.simulator.workloads import BerkeleySite

    if args.scenario in ("route-leak", "backdoor", "session-reset"):
        print(f"building Berkeley site ({args.prefixes} prefixes)...")
        site = BerkeleySite(n_prefixes=args.prefixes)
        incident = {
            "route-leak": lambda: scenarios.route_leak(site),
            "backdoor": lambda: scenarios.backdoor_routes(site),
            "session-reset": lambda: scenarios.session_reset(site),
        }[args.scenario]()
    elif args.scenario == "med-oscillation":
        print("building the Figure 3 MED-oscillation lab...")
        incident = scenarios.med_oscillation(flap_count=100)
    else:
        from repro.simulator.workloads import IspAnonSite

        print("building ISP-Anon core (8 reflectors)...")
        isp = IspAnonSite(n_reflectors=8, n_prefixes=400)
        incident = scenarios.customer_flap(isp, flap_count=10)
    print(f"incident '{incident.name}': {len(incident.stream)} events")
    print()
    report = diagnose(
        incident.stream, stemmer=Stemmer(workers=args.workers)
    )
    print(report.to_text())
    if args.save is not None:
        incident.stream.save(args.save)
        print(f"\nevent stream saved to {args.save}")
    return 0


def _load_stream(
    path: Path, args: argparse.Namespace | None = None
) -> EventStream:
    """Load events from JSONL or (by extension) an MRT updates file.

    MRT loads honor the ``--strict-ingest`` / ``--max-error-rate``
    policy flags and print the ingest report to stderr whenever the
    load was lossy — the operator should never act on a diagnosis of a
    partial feed without knowing it was partial.
    """
    if path.suffix.lower() in (".mrt", ".dump", ".bgp4mp"):
        from repro.mrt.ingest import IngestPolicy
        from repro.mrt.loader import load_updates

        policy = IngestPolicy(
            strict=bool(getattr(args, "strict_ingest", False)),
            max_error_rate=getattr(args, "max_error_rate", None),
        )
        stream = load_updates(path, policy=policy)
        report = stream.ingest_report
        if report is not None and report.suspicious:
            print(report.summary(), file=sys.stderr)
        return stream
    return EventStream.load(path)


def cmd_diagnose(args: argparse.Namespace) -> int:
    stream = _load_stream(args.events, args)
    report = diagnose(
        stream,
        stemmer=Stemmer(
            max_components=args.components, workers=args.workers
        ),
    )
    print(report.to_text())
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.tamp.picture import picture_from_events

    stream = _load_stream(args.events, args)
    # Batch path: replay the stream into a route table and build the
    # final picture directly — same graph as incremental maintenance
    # (a point-in-time render skips the intermediate mutations), and
    # it shards across --workers on big snapshots.
    graph = prune_flat(
        picture_from_events(stream, "stream", workers=args.workers),
        args.threshold,
    )
    if args.output is None:
        print(render_ascii(graph))
    else:
        args.output.write_text(
            render_svg(graph, title=str(args.events.name))
        )
        print(f"wrote {args.output}")
    return 0


def cmd_rate(args: argparse.Namespace) -> int:
    stream = _load_stream(args.events, args)
    if not len(stream):
        print("empty stream")
        return 0
    bin_seconds = max(1.0, stream.timerange / args.bins)
    series = bin_events(stream, bin_seconds)
    peak = max(series.counts) if series.counts else 1
    for index, count in enumerate(series.counts):
        bar = "#" * round(40 * count / max(peak, 1))
        print(f"{series.bin_start(index):>12.1f}s {count:>8} {bar}")
    print(
        f"peak {series.peak()[1]} at t={series.peak()[0]:.1f}s,"
        f" grass level {series.grass_level():.1f},"
        f" spikes at {series.spikes()}"
    )
    return 0


def cmd_animate(args: argparse.Namespace) -> int:
    from repro.tamp.animate import animate_stream
    from repro.tamp.svg_animation import render_svg_animation

    stream = _load_stream(args.events, args)
    animation = animate_stream(
        stream, play_duration=args.duration, fps=args.fps
    )
    args.output.write_text(
        render_svg_animation(
            animation, title=str(args.events.name), workers=args.workers
        )
    )
    changed = len(animation.frames_with_changes())
    print(
        f"wrote {args.output}: {animation.frame_count} frames"
        f" ({changed} with changes), timerange"
        f" {animation.timerange:.1f}s -> {args.duration:.0f}s play"
    )
    return 0


def _monitor_source(args: argparse.Namespace):
    from repro.mrt.ingest import IngestPolicy
    from repro.pipeline import FileSource, QuarantineSource, SyntheticSource

    picked = [
        args.synthetic is not None,
        args.from_quarantine,
        args.events is not None and not args.from_quarantine,
    ]
    if sum(picked) != 1:
        raise ValueError(
            "monitor needs exactly one source: EVENTS,"
            " --synthetic N, or EVENTS with --from-quarantine"
        )
    if args.synthetic is not None:
        return SyntheticSource(
            args.synthetic,
            args.synthetic_timerange,
            seed=args.synthetic_seed,
        )
    if args.from_quarantine:
        return QuarantineSource(args.events)
    return FileSource(
        args.events,
        policy=IngestPolicy(
            strict=args.strict_ingest,
            max_error_rate=args.max_error_rate,
        ),
    )


def cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from repro.pipeline import (
        MetricsRegistry,
        MetricsServer,
        run_monitor,
    )
    from repro.pipeline.windows import WindowReport

    source = _monitor_source(args)
    config = _monitor_config(args)
    registry = MetricsRegistry()
    server = None
    if args.metrics_port is not None:
        server = MetricsServer(registry, port=args.metrics_port)
        print(
            f"metrics on http://127.0.0.1:{server.port}/metrics",
            file=sys.stderr,
        )

    def print_report(report: WindowReport) -> None:
        stems = report.ranked_stems()
        head = (
            f"window {report.index} [{report.start:.0f}s,"
            f" {report.end:.0f}s): {report.event_count} events,"
            f" {len(stems)} incident(s)"
        )
        print(head)
        for stem in stems[:5]:
            print(
                f"  #{stem['rank']} {stem['stem']}"
                f" strength {stem['strength']}"
                f" ({stem['events']} events,"
                f" {stem['prefixes']} prefixes)"
            )

    try:
        result = run_monitor(
            source,
            config,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            registry=registry,
            on_report=print_report,
        )
    finally:
        if server is not None:
            server.close()
    report = source.ingest_report
    if report is not None and report.suspicious:
        print(report.summary(), file=sys.stderr)
    print(
        f"monitor stopped ({result.stopped}): {result.events} events,"
        f" {len(result.reports)} window(s),"
        f" {result.checkpoints_written} checkpoint(s),"
        f" offset {result.offset}"
    )
    manager = result.incidents
    counts = manager.counts_by_status()
    print(
        f"incidents: {manager.created_total} created —"
        f" {counts.get('open', 0)} open,"
        f" {counts.get('investigating', 0)} investigating,"
        f" {counts.get('resolved', 0)} resolved"
    )
    for record in manager.active()[:10]:
        print(f"  {record.describe()}")
    if args.checkpoint_dir is not None:
        print(
            f"incident store: {args.checkpoint_dir}/incidents.sqlite"
            " (inspect with `repro incidents`)"
        )
    if args.metrics_out is not None:
        args.metrics_out.write_text(
            json.dumps(registry.snapshot(), sort_keys=True, indent=1)
            + "\n"
        )
        print(f"metrics snapshot written to {args.metrics_out}")
    return 0


def _monitor_config(args: argparse.Namespace):
    from repro.pipeline import MonitorConfig

    return MonitorConfig(
        window=args.window,
        slide=args.slide,
        batch_size=args.batch_size,
        max_queue=args.max_queue,
        policy=args.queue_policy,
        min_strength=args.min_strength,
        max_components=args.components,
        workers=args.workers,
        pace=args.pace,
        checkpoint_every=args.checkpoint_every,
        resolve_after=args.resolve_after,
        correlation_window=args.correlation_window,
        reopen_window=args.reopen_window,
        max_events=args.max_events,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.pipeline import MetricsRegistry
    from repro.serve import ServeApp, run_serve

    if args.shards < 1:
        raise ValueError("--shards must be at least 1")
    source = _monitor_source(args)
    config = _monitor_config(args)
    registry = MetricsRegistry()

    def started(app: ServeApp) -> None:
        print(
            f"serving on http://{args.host}:{app.server.port}/ —"
            " picture.svg, incidents, events (SSE), metrics, status",
            file=sys.stderr,
            flush=True,
        )

    result = asyncio.run(
        run_serve(
            source,
            config,
            shards=args.shards,
            host=args.host,
            port=args.port,
            checkpoint_root=args.checkpoint_dir,
            resume=args.resume,
            threshold=args.threshold,
            registry=registry,
            linger=args.linger,
            on_started=started,
        )
    )
    print(
        f"serve stopped ({result.stopped}): {result.events} events,"
        f" {result.renders} render(s),"
        f" {result.published} transition event(s) published"
    )
    if args.metrics_out is not None:
        args.metrics_out.write_text(
            json.dumps(registry.snapshot(), sort_keys=True, indent=1)
            + "\n"
        )
        print(f"metrics snapshot written to {args.metrics_out}")
    return 0


def cmd_incidents(args: argparse.Namespace) -> int:
    import json

    from repro.incidents import INCIDENT_DB, IncidentStore

    path = args.store
    if path.is_dir():
        path = path / INCIDENT_DB
    if not path.exists():
        print(f"no incident store at {path}", file=sys.stderr)
        return 2

    with IncidentStore(path) as store:
        if args.action == "list":
            records = store.rows()
            if args.status is not None:
                records = [
                    r for r in records
                    if r.status.value == args.status
                ]
            for record in records:
                print(record.describe())
            counts = store.counts_by_status()
            summary = ", ".join(
                f"{count} {status}"
                for status, count in sorted(counts.items())
            )
            print(
                f"{len(records)} shown ({summary or 'empty'};"
                f" synced through report {store.reports_applied()})"
            )
            return 0
        if args.action == "show":
            if args.id is None:
                print("show requires --id", file=sys.stderr)
                return 2
            record = store.row(args.id)
            if record is None:
                print(f"no incident with id {args.id}", file=sys.stderr)
                return 2
            print(record.describe())
            print(json.dumps(record.to_dict(), indent=1, sort_keys=True))
            return 0
        if args.action == "export":
            if args.output is not None:
                count = store.export_jsonl(args.output)
                print(f"{count} incident(s) exported to {args.output}")
            else:
                for record in store.rows():
                    print(json.dumps(record.to_dict(), sort_keys=True))
            return 0
        # compact
        removed = store.compact(keep_resolved=args.keep_resolved)
        print(
            f"compacted: {removed} resolved incident(s) removed,"
            f" {store.count()} remain"
        )
        return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.testkit import (
        corrupt_file,
        fault_names,
        generate_corpus,
        parse_fault_spec,
    )
    from repro.testkit.corpus import GOLDEN_SEED
    from repro.testkit.faults import FAULTS

    if args.list_faults:
        for name in fault_names():
            fault = FAULTS[name]
            params = ", ".join(fault.params)
            suffix = f" ({params})" if params else ""
            print(f"{name:<18} [{fault.level:>6}] {fault.summary}{suffix}")
        return 0
    if args.make_corpus is not None:
        seed = GOLDEN_SEED if args.seed is None else args.seed
        paths = generate_corpus(args.make_corpus, seed=seed)
        for name in sorted(paths):
            print(f"wrote {paths[name]}")
        return 0
    if args.input is None or args.output is None:
        print(
            "error: faults needs INPUT and -o OUTPUT (or --list-faults /"
            " --make-corpus)",
            file=sys.stderr,
        )
        return 2
    if not args.fault:
        print("error: at least one --fault is required", file=sys.stderr)
        return 2
    if args.seed is None:
        print(
            "error: --seed is required when corrupting (faults must be"
            " replayable)",
            file=sys.stderr,
        )
        return 2
    plan = [parse_fault_spec(spec) for spec in args.fault]
    stats = corrupt_file(args.input, args.output, plan, seed=args.seed)
    print(
        f"wrote {args.output}: {stats['bytes_in']} -> "
        f"{stats['bytes_out']} bytes"
        f" ({len(plan)} fault(s), seed {args.seed})"
    )
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import registry
    from repro.scenarios.score import (
        DEFAULT_TOLERANCE,
        Scorecard,
        build_scorecard,
        compare_scorecards,
        format_comparison,
    )

    for name in args.names:
        if name not in registry.SCENARIOS:
            known = ", ".join(registry.names())
            print(
                f"error: unknown scenario {name!r}; registered: {known}",
                file=sys.stderr,
            )
            return 2

    if args.action == "list":
        for scenario in registry.iter_scenarios():
            scored = "" if scenario.scored else "  (not scored)"
            print(
                f"{scenario.name:<22} {scenario.incident_class.value:<18}"
                f" {scenario.reference}{scored}"
            )
        return 0

    if args.action == "describe":
        names = args.names or registry.names()
        for index, name in enumerate(names):
            if index:
                print()
            print(registry.get(name).describe())
        return 0

    if args.action == "generate":
        out_dir = args.output or Path("scenario_streams")
        out_dir.mkdir(parents=True, exist_ok=True)
        names = args.names or registry.names()
        for name in names:
            incident = registry.generate(name, seed=args.seed)
            events_path = out_dir / f"{name}.events.jsonl"
            labels_path = out_dir / f"{name}.labels.json"
            incident.stream.save(events_path)
            labels_path.write_text(
                incident.labels_json() + "\n", encoding="utf-8"
            )
            print(
                f"{name}: {len(incident.stream)} events, seed"
                f" {args.seed} -> {events_path} + {labels_path.name}"
            )
        return 0

    # score
    names = args.names or None
    card = build_scorecard(
        names, seed=args.seed,
        min_strength=args.min_strength, workers=args.workers,
    )
    for name in sorted(card.scores):
        row = card.scores[name]
        rank = "-" if row.best_rank is None else str(row.best_rank)
        latency = (
            "-"
            if row.detection_latency is None
            else f"{row.detection_latency:.0f}s"
        )
        ttr = (
            "-"
            if row.time_to_resolve is None
            else f"{row.time_to_resolve:.0f}s"
        )
        print(
            f"{name:<22} P={row.precision:.3f} R={row.recall:.3f}"
            f" F1={row.f1:.3f} rank={rank} top1={row.top1_rate:.2f}"
            f" inc={row.incidents} latency={latency} ttr={ttr}"
            f" detected={row.detected}"
        )
    if args.output is not None:
        card.save(args.output)
        print(f"scorecard written to {args.output}")
    if args.baseline is None:
        return 0
    if not args.baseline.exists():
        print(
            f"error: baseline {args.baseline} not found", file=sys.stderr
        )
        return 2
    baseline = Scorecard.load(args.baseline)
    tolerance = (
        DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    regressions, checks = compare_scorecards(
        card, baseline, tolerance=tolerance
    )
    print(
        f"detection-quality gate: {checks} checks against"
        f" {args.baseline} (tolerance {tolerance})"
    )
    print(format_comparison(card, baseline, regressions))
    if regressions:
        print(f"{len(regressions)} regression(s)", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import (
        LintCache,
        analyze_project,
        changed_paths,
        fix_paths,
        render_json,
        render_sarif,
        render_text,
        rule_catalog,
    )

    if args.list_rules:
        for rule in rule_catalog():
            print(f"{rule.id:<9} {rule.summary}")
        return 0
    if args.fix and args.fix_suppress is not None:
        print(
            "error: --fix and --fix-suppress are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    rules = None
    if args.rules is not None:
        rules = {part.strip() for part in args.rules.split(",") if part.strip()}

    paths = list(args.paths)
    if args.changed:
        changed = changed_paths(paths)
        if changed is None:
            print(
                "lint: not a git repository; running a full lint",
                file=sys.stderr,
            )
        elif not changed:
            print("clean: no changed Python files")
            return 0
        else:
            paths = changed

    try:
        if args.fix or args.fix_suppress is not None:
            fix_report = fix_paths(
                paths, rules=rules, suppress_rule=args.fix_suppress
            )
            print(fix_report.summary(), file=sys.stderr)
            findings = fix_report.remaining
            cache_stats = None
        else:
            cache = None
            if not args.no_cache:
                cache_dir = args.cache_dir or Path(".repro-lint-cache")
                cache = LintCache(cache_dir)
            project_report = analyze_project(paths, rules=rules, cache=cache)
            findings = project_report.findings
            cache_stats = project_report.cache_stats
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderers = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }
    report = renderers[args.format](findings)
    if args.output is not None:
        args.output.write_text(report + "\n")
        print(f"wrote {args.output} ({len(findings)} finding(s))")
    else:
        print(report)
    if cache_stats is not None:
        print(cache_stats, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
