"""Staged pipeline runtime: bounded queues, explicit drop accounting.

The monitor is a chain of stages (ingest → window → annotate → sink)
connected by bounded queues. The runtime is deliberately cooperative
and single-threaded: :meth:`Pipeline.feed` enqueues into the first
stage and :meth:`Pipeline.pump` drains stages *downstream-first* until
quiescent. That ordering means an item admitted into the pipeline is
fully processed before the next one is admitted, so a run's output is
a pure function of its input order — the property the checkpoint layer
leans on for bit-identical resume. Concurrency lives *inside* stages
(the windowed stemmer shards counter work through ``repro.perf``), not
between them.

Backpressure is explicit rather than implicit: every queue has a
capacity, and when a stage's input queue is full the pipeline either
refuses new work (``policy="block"``, the default — the source must
retry, which in a paced replay simply means the replay falls behind)
or drops the newest item and charges it to that stage's drop counter
(``policy="drop"``). Nothing is ever silently lost: every admitted,
emitted, and dropped item is visible in :meth:`Pipeline.stats`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.collector.events import BGPEvent

#: Backpressure policies for a full input queue.
POLICIES = ("block", "drop")


@dataclass(frozen=True)
class Batch:
    """A contiguous run of events plus its position in the source.

    ``start_offset``/``end_offset`` are event indices into the source
    stream (end exclusive). The offsets ride along with the events so
    any stage — and most importantly the checkpoint layer — knows
    exactly how far into the source the pipeline has progressed
    without counting events itself.
    """

    events: tuple[BGPEvent, ...]
    start_offset: int
    end_offset: int

    def __post_init__(self) -> None:
        if self.end_offset - self.start_offset != len(self.events):
            raise ValueError(
                "batch offsets span "
                f"{self.end_offset - self.start_offset} events, "
                f"got {len(self.events)}"
            )

    def __len__(self) -> int:
        return len(self.events)


class Stage:
    """One processing step in the pipeline.

    Subclasses override :meth:`process`, returning an iterable of
    items for the next stage (or ``None`` to emit nothing — stages
    are free to buffer across calls). :meth:`flush` runs once at
    end-of-stream to surrender any buffered state downstream.

    Stages must keep all mutable state on ``self`` — never in module
    globals. A stage is checkpointed and rebuilt on resume; state that
    lives outside the instance silently survives the rebuild and
    breaks bit-identical replay. The PIPE001 lint rule enforces this.
    """

    #: Display name; defaults to the class name.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    def process(self, item: object) -> Optional[Iterable[object]]:
        raise NotImplementedError

    def flush(self) -> Optional[Iterable[object]]:
        return None


class FunctionStage(Stage):
    """Adapts a plain callable (item → iterable | None) to a Stage."""

    def __init__(
        self,
        func: Callable[[object], Optional[Iterable[object]]],
        name: str = "",
    ) -> None:
        self.name = name or getattr(func, "__name__", "function")
        super().__init__()
        self._func = func

    def process(self, item: object) -> Optional[Iterable[object]]:
        return self._func(item)


@dataclass
class StageStats:
    """Per-stage accounting, all monotonic within one run."""

    admitted: int = 0
    emitted: int = 0
    dropped: int = 0
    peak_depth: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "peak_depth": self.peak_depth,
        }

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "StageStats":
        return cls(
            admitted=int(data.get("admitted", 0)),
            emitted=int(data.get("emitted", 0)),
            dropped=int(data.get("dropped", 0)),
            peak_depth=int(data.get("peak_depth", 0)),
        )


@dataclass
class _Slot:
    stage: Stage
    queue: deque = field(default_factory=deque)
    stats: StageStats = field(default_factory=StageStats)


class Pipeline:
    """A chain of stages with bounded inter-stage queues.

    ``max_queue`` bounds each stage's input queue. The bound applies
    to *admission*: a stage emitting several items downstream may
    transiently overshoot the next queue's bound (dropping
    mid-pipeline items would violate the no-silent-loss contract);
    the overshoot is visible as ``peak_depth`` in the stats.

    Outputs of the final stage are collected into :attr:`outputs`;
    the caller (the monitor loop) drains them with :meth:`take`.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        *,
        max_queue: int = 64,
        policy: str = "block",
    ) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        self.max_queue = max_queue
        self.policy = policy
        self._slots = [_Slot(stage) for stage in stages]
        self.outputs: deque = deque()

    @property
    def stages(self) -> tuple[Stage, ...]:
        return tuple(slot.stage for slot in self._slots)

    def offer(self, item: object) -> bool:
        """Try to admit *item* into the first stage's queue.

        Returns ``False`` when the queue is full under the ``block``
        policy (caller should pump and retry). Under ``drop``, a full
        queue discards the *new* item, charges the first stage's drop
        counter, and returns ``True`` — the item is accounted for,
        just not processed.
        """
        slot = self._slots[0]
        if len(slot.queue) >= self.max_queue:
            if self.policy == "drop":
                slot.stats.dropped += 1
                return True
            return False
        self._enqueue(slot, item)
        return True

    def feed(self, item: object) -> None:
        """Admit *item*, pumping as needed under backpressure."""
        while not self.offer(item):
            if not self.pump_once():
                raise RuntimeError(
                    "pipeline stalled: queue full but no stage can run"
                )
        self.pump()

    def pump_once(self) -> bool:
        """Process one item from the most-downstream non-empty queue.

        Draining downstream-first keeps total queued work bounded and
        makes progress deterministic. Returns ``False`` when every
        queue is empty.
        """
        for index in range(len(self._slots) - 1, -1, -1):
            slot = self._slots[index]
            if slot.queue:
                item = slot.queue.popleft()
                produced = slot.stage.process(item)
                self._route(index, produced)
                return True
        return False

    def pump(self) -> int:
        """Drain every queue; returns the number of items processed."""
        processed = 0
        while self.pump_once():
            processed += 1
        return processed

    def flush(self) -> None:
        """Signal end-of-stream: drain, then flush each stage in order.

        Each stage's flush output flows through the stages below it
        before the next stage is flushed, so ordering matches what a
        continued stream would have produced.
        """
        self.pump()
        for index, slot in enumerate(self._slots):
            self._route(index, slot.stage.flush())
            self.pump()

    def take(self) -> list[object]:
        """Remove and return all collected final-stage outputs."""
        items = list(self.outputs)
        self.outputs.clear()
        return items

    def depth(self, stage_name: str) -> int:
        for slot in self._slots:
            if slot.stage.name == stage_name:
                return len(slot.queue)
        raise KeyError(stage_name)

    def depths(self) -> dict[str, int]:
        return {
            slot.stage.name: len(slot.queue) for slot in self._slots
        }

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            slot.stage.name: slot.stats.to_dict()
            for slot in self._slots
        }

    def restore_stats(self, stats: dict[str, dict[str, int]]) -> None:
        """Reload per-stage accounting from a checkpoint."""
        for slot in self._slots:
            if slot.stage.name in stats:
                slot.stats = StageStats.from_dict(
                    stats[slot.stage.name]
                )

    def _route(
        self, index: int, produced: Optional[Iterable[object]]
    ) -> None:
        if produced is None:
            return
        slot = self._slots[index]
        if index + 1 < len(self._slots):
            target = self._slots[index + 1]
            for item in produced:
                slot.stats.emitted += 1
                self._enqueue(target, item)
        else:
            for item in produced:
                slot.stats.emitted += 1
                self.outputs.append(item)

    def _enqueue(self, slot: _Slot, item: object) -> None:
        slot.queue.append(item)
        slot.stats.admitted += 1
        if len(slot.queue) > slot.stats.peak_depth:
            slot.stats.peak_depth = len(slot.queue)


def iter_batches(
    events: Iterable[BGPEvent],
    *,
    batch_size: int,
    start_offset: int = 0,
) -> Iterator[Batch]:
    """Chunk an event iterable into :class:`Batch` objects.

    Offsets continue from *start_offset* so a resumed source produces
    batches whose offsets line up with the original stream.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    buffer: list[BGPEvent] = []
    offset = start_offset
    for event in events:
        buffer.append(event)
        if len(buffer) >= batch_size:
            yield Batch(tuple(buffer), offset, offset + len(buffer))
            offset += len(buffer)
            buffer = []
    if buffer:
        yield Batch(tuple(buffer), offset, offset + len(buffer))
