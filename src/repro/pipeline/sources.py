"""Event sources for the streaming monitor.

A :class:`Source` abstracts where events come from so the pipeline
never cares: an in-memory stream, an MRT/JSONL archive replayed from
disk, a simulator-driven synthetic feed, or a quarantine file written
by a previous ingest. Every source supports ``events(start_offset)``
— the resume hook: after a crash the monitor re-opens the same source
and skips straight to the first unprocessed event. For that to yield
bit-identical replay a source must be *deterministic*: the same
construction parameters must produce the same event sequence, which
is why :meth:`Source.describe` exists — the checkpoint layer stores
it and refuses to resume against a source that describes differently.

Pacing is a property of replay, not of the source: :class:`Pacer`
turns event timestamps into wall-clock delays (``pace=1`` replays in
real time, ``pace=60`` at 60x speed, ``pace=0`` as fast as possible).
This module may touch the wall clock — it is replay plumbing, not
algorithm code, and sits outside the DET001-scoped packages.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.collector.events import BGPEvent
from repro.collector.rex import RouteExplorer
from repro.collector.stream import EventStream
from repro.mrt.bgp_codec import decode_update
from repro.mrt.ingest import IngestPolicy, IngestReport, read_quarantine
from repro.mrt.loader import load_updates
from repro.mrt.records import MRTError, decode_bgp4mp
from repro.simulator.synthetic import (
    BERKELEY_PROFILE,
    ISP_ANON_PROFILE,
    populate_view,
    sized_event_stream,
)

#: File suffixes routed through the MRT decoder (mirrors the CLI).
MRT_SUFFIXES = (".mrt", ".dump", ".bgp4mp")

PROFILES = {
    BERKELEY_PROFILE.name: BERKELEY_PROFILE,
    ISP_ANON_PROFILE.name: ISP_ANON_PROFILE,
}


class Source:
    """Base class: a deterministic, resumable feed of BGP events."""

    #: Ingest accounting, populated by sources that decode raw bytes.
    ingest_report: Optional[IngestReport] = None

    def events(self, start_offset: int = 0) -> Iterator[BGPEvent]:
        """Yield events in stream order, skipping *start_offset*."""
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        """JSON-stable identity, persisted into every checkpoint.

        Two sources that describe identically must yield identical
        event sequences; resume refuses anything else.
        """
        raise NotImplementedError


class StreamSource(Source):
    """Replay an in-memory :class:`EventStream` (tests, composition)."""

    def __init__(self, stream: EventStream, label: str = "stream") -> None:
        self._stream = stream
        self._label = label
        self.ingest_report = getattr(stream, "ingest_report", None)

    def events(self, start_offset: int = 0) -> Iterator[BGPEvent]:
        for index in range(start_offset, len(self._stream)):
            yield self._stream[index]

    def describe(self) -> dict[str, object]:
        return {
            "type": "stream",
            "label": self._label,
            "events": len(self._stream),
            "fingerprint": self._stream.fingerprint(),
        }


class FileSource(Source):
    """Replay an archive from disk: MRT by suffix, else JSONL.

    The archive is decoded once on first use and replayed from
    memory; MRT decode goes through :func:`repro.mrt.loader
    .load_updates` so the usual ingest policy/quarantine machinery
    applies and the report lands on :attr:`ingest_report`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        policy: Optional[IngestPolicy] = None,
    ) -> None:
        self.path = Path(path)
        self._policy = policy
        self._stream: Optional[EventStream] = None

    def _load(self) -> EventStream:
        if self._stream is None:
            if self.path.suffix.lower() in MRT_SUFFIXES:
                self._stream = load_updates(
                    self.path, policy=self._policy
                )
                self.ingest_report = self._stream.ingest_report
            else:
                self._stream = EventStream.load(self.path)
        return self._stream

    def events(self, start_offset: int = 0) -> Iterator[BGPEvent]:
        stream = self._load()
        for index in range(start_offset, len(stream)):
            yield stream[index]

    def describe(self) -> dict[str, object]:
        return {"type": "file", "path": str(self.path)}


class SyntheticSource(Source):
    """Simulator-driven feed: a populated view plus sized churn.

    Fully determined by ``(profile, n_routes, count, timerange,
    seed)`` — the same tuple always yields the same events, which is
    what lets the CI smoke job kill and resume a synthetic monitor
    and still demand bit-identical output.
    """

    def __init__(
        self,
        count: int,
        timerange: float,
        *,
        profile: str = ISP_ANON_PROFILE.name,
        n_routes: int = 2000,
        start: float = 0.0,
        seed: int = 31,
    ) -> None:
        if profile not in PROFILES:
            raise ValueError(
                f"unknown profile {profile!r};"
                f" expected one of {sorted(PROFILES)}"
            )
        self.count = count
        self.timerange = timerange
        self.profile = profile
        self.n_routes = n_routes
        self.start = start
        self.seed = seed
        self._stream: Optional[EventStream] = None

    def _load(self) -> EventStream:
        if self._stream is None:
            rex = RouteExplorer("synthetic")
            populate_view(
                rex,
                self.n_routes,
                PROFILES[self.profile],
                seed=self.seed,
            )
            self._stream = sized_event_stream(
                rex,
                self.count,
                self.timerange,
                start=self.start,
                seed=self.seed,
            )
        return self._stream

    def events(self, start_offset: int = 0) -> Iterator[BGPEvent]:
        stream = self._load()
        for index in range(start_offset, len(stream)):
            yield stream[index]

    def describe(self) -> dict[str, object]:
        return {
            "type": "synthetic",
            "profile": self.profile,
            "n_routes": self.n_routes,
            "count": self.count,
            "timerange": self.timerange,
            "start": self.start,
            "seed": self.seed,
        }


class QuarantineSource(Source):
    """Replay records quarantined by a previous ingest.

    Records land in quarantine because they failed to decode; after a
    codec fix (or with a laxer policy) they may now parse. Each
    record is re-decoded and replayed through a fresh collector so
    withdrawal augmentation applies; records that still fail are
    counted and skipped, never raised — a replay source must not die
    on the exact bytes that were already deemed suspect once.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._stream: Optional[EventStream] = None
        self.replayed_records = 0
        self.failed_records = 0

    def _load(self) -> EventStream:
        if self._stream is None:
            rex = RouteExplorer("quarantine")
            for record in read_quarantine(self.path):
                try:
                    envelope = decode_bgp4mp(record.payload)
                    decoded = decode_update(envelope.bgp_message)
                except (MRTError, ValueError):
                    self.failed_records += 1
                    continue
                rex.observe(
                    envelope.peer_address,
                    decoded.update,
                    record.timestamp,
                )
                self.replayed_records += 1
            self._stream = rex.events
        return self._stream

    def events(self, start_offset: int = 0) -> Iterator[BGPEvent]:
        stream = self._load()
        for index in range(start_offset, len(stream)):
            yield stream[index]

    def describe(self) -> dict[str, object]:
        return {"type": "quarantine", "path": str(self.path)}


def shard_for_peer(peer: int, shards: int) -> int:
    """The shard index owning *peer*'s routes.

    Pure modulo on the packed peer address: stable across runs and
    processes, which is what makes the fan-in merge bit-identical —
    every (peer, prefix) route lives on exactly one shard, so the
    merged per-edge refcounts equal an unsharded run's.
    """
    return peer % shards


class ShardView(Source):
    """One shard's slice of a parent source, partitioned by peer.

    Wraps any deterministic :class:`Source` and yields only the events
    whose peer hashes to this shard (:func:`shard_for_peer`). Offsets
    are *shard-local*: ``events(start_offset)`` skips the first
    *start_offset* events **of the filtered stream**, so each shard
    checkpoints and resumes independently with its own offset space.
    """

    def __init__(self, parent: Source, shard: int, shards: int) -> None:
        if not 0 <= shard < shards:
            raise ValueError(
                f"shard {shard} out of range for {shards} shard(s)"
            )
        self.parent = parent
        self.shard = shard
        self.shards = shards

    def events(self, start_offset: int = 0) -> Iterator[BGPEvent]:
        skipped = 0
        shard, shards = self.shard, self.shards
        for event in self.parent.events():
            if event.peer % shards != shard:
                continue
            if skipped < start_offset:
                skipped += 1
                continue
            yield event

    def describe(self) -> dict[str, object]:
        return {
            "type": "shard",
            "shard": self.shard,
            "of": self.shards,
            "parent": self.parent.describe(),
        }


class Pacer:
    """Map event timestamps onto wall-clock replay delays.

    ``pace`` is the speed-up factor: 1 replays at the archive's own
    rate, 60 compresses each minute of archive time into a second,
    0 (or negative) disables pacing entirely. The first timestamp
    seen anchors the schedule; late arrival never accumulates — if
    processing falls behind, the pacer simply stops sleeping until
    the schedule catches up (that growing gap is the monitor's
    ``window_lag`` signal).

    *clock*/*sleep* are injectable so tests never touch real time.
    """

    def __init__(
        self,
        pace: float,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.pace = pace
        self._clock = clock
        self._sleep = sleep
        self._anchor_ts: Optional[float] = None
        self._anchor_clock = 0.0

    def wait_for(self, timestamp: float) -> float:
        """Sleep until *timestamp* is due; returns the delay slept."""
        if self.pace <= 0:
            return 0.0
        if self._anchor_ts is None:
            self._anchor_ts = timestamp
            self._anchor_clock = self._clock()
            return 0.0
        due = (
            self._anchor_clock
            + (timestamp - self._anchor_ts) / self.pace
        )
        delay = due - self._clock()
        if delay > 0:
            self._sleep(delay)
            return delay
        return 0.0

    def lag(self, timestamp: float) -> float:
        """Seconds (archive time) the replay is behind schedule."""
        if self.pace <= 0 or self._anchor_ts is None:
            return 0.0
        elapsed = (self._clock() - self._anchor_clock) * self.pace
        behind = elapsed - (timestamp - self._anchor_ts)
        return max(0.0, behind)
